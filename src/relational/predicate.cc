#include "relational/predicate.h"

namespace iqs {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kLike:
      return "LIKE";
  }
  return "?";
}

namespace {

// Bytes occupied by the UTF-8 code point starting at text[t]: the lead
// byte plus however many of its declared continuation bytes are actually
// present. A stray continuation byte or truncated sequence counts as a
// single one-byte character.
size_t Utf8CharLen(const std::string& text, size_t t) {
  unsigned char lead = static_cast<unsigned char>(text[t]);
  size_t want = 1;
  if ((lead & 0xE0) == 0xC0) {
    want = 2;
  } else if ((lead & 0xF0) == 0xE0) {
    want = 3;
  } else if ((lead & 0xF8) == 0xF0) {
    want = 4;
  }
  size_t len = 1;
  while (len < want && t + len < text.size() &&
         (static_cast<unsigned char>(text[t + len]) & 0xC0) == 0x80) {
    ++len;
  }
  return len;
}

}  // namespace

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative greedy matcher with backtracking over the last '%': the
  // classic O(n*m) wildcard algorithm, sufficient for catalog queries.
  // '_' consumes one UTF-8 code point of the text, not one byte.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      t += pattern[p] == '_' ? Utf8CharLen(text, t) : 1;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<bool> ApplyCompare(CompareOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return false;
  if (op == CompareOp::kLike) {
    // LIKE matches over the rendered string forms, so integer-typed
    // catalog columns still answer `value LIKE '1%'`.
    return LikeMatch(lhs.ToString(), rhs.ToString());
  }
  if (!lhs.ComparableWith(rhs)) {
    return Status::TypeError(std::string("cannot compare ") +
                             ValueTypeName(lhs.type()) + " with " +
                             ValueTypeName(rhs.type()));
  }
  int c = lhs.Compare(rhs);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
    case CompareOp::kLike:
      break;  // handled above
  }
  return Status::Internal("unreachable compare op");
}

std::string ConstantExpr::ToString(const Schema*) const {
  if (value_.type() == ValueType::kString) {
    return "'" + value_.ToString() + "'";
  }
  return value_.ToString();
}

Result<Value> ColumnExpr::Eval(const Tuple& tuple) const {
  if (index_ >= tuple.size()) {
    return Status::Internal("column index " + std::to_string(index_) +
                            " out of range for tuple of arity " +
                            std::to_string(tuple.size()));
  }
  return tuple.at(index_);
}

std::string ColumnExpr::ToString(const Schema* schema) const {
  if (schema != nullptr && index_ < schema->size()) {
    return schema->attribute(index_).name;
  }
  return "$" + std::to_string(index_);
}

Result<bool> ComparePredicate::Eval(const Tuple& tuple) const {
  IQS_ASSIGN_OR_RETURN(Value l, lhs_->Eval(tuple));
  IQS_ASSIGN_OR_RETURN(Value r, rhs_->Eval(tuple));
  return ApplyCompare(op_, l, r);
}

std::string ComparePredicate::ToString(const Schema* schema) const {
  return lhs_->ToString(schema) + " " + CompareOpSymbol(op_) + " " +
         rhs_->ToString(schema);
}

Result<bool> AndPredicate::Eval(const Tuple& tuple) const {
  IQS_ASSIGN_OR_RETURN(bool l, lhs_->Eval(tuple));
  if (!l) return false;
  return rhs_->Eval(tuple);
}

std::string AndPredicate::ToString(const Schema* schema) const {
  return "(" + lhs_->ToString(schema) + " AND " + rhs_->ToString(schema) + ")";
}

Result<bool> OrPredicate::Eval(const Tuple& tuple) const {
  IQS_ASSIGN_OR_RETURN(bool l, lhs_->Eval(tuple));
  if (l) return true;
  return rhs_->Eval(tuple);
}

std::string OrPredicate::ToString(const Schema* schema) const {
  return "(" + lhs_->ToString(schema) + " OR " + rhs_->ToString(schema) + ")";
}

Result<bool> NotPredicate::Eval(const Tuple& tuple) const {
  IQS_ASSIGN_OR_RETURN(bool v, inner_->Eval(tuple));
  return !v;
}

std::string NotPredicate::ToString(const Schema* schema) const {
  return "NOT " + inner_->ToString(schema);
}

ExprPtr MakeConstant(Value value) {
  return std::make_shared<ConstantExpr>(std::move(value));
}
ExprPtr MakeColumn(size_t index) { return std::make_shared<ColumnExpr>(index); }
PredicatePtr MakeTrue() { return std::make_shared<TruePredicate>(); }
PredicatePtr MakeCompare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<ComparePredicate>(op, std::move(lhs),
                                            std::move(rhs));
}
PredicatePtr MakeAnd(PredicatePtr lhs, PredicatePtr rhs) {
  return std::make_shared<AndPredicate>(std::move(lhs), std::move(rhs));
}
PredicatePtr MakeOr(PredicatePtr lhs, PredicatePtr rhs) {
  return std::make_shared<OrPredicate>(std::move(lhs), std::move(rhs));
}
PredicatePtr MakeNot(PredicatePtr inner) {
  return std::make_shared<NotPredicate>(std::move(inner));
}

Result<PredicatePtr> MakeColumnCompare(const Schema& schema,
                                       const std::string& column,
                                       CompareOp op, Value constant) {
  IQS_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(column));
  return MakeCompare(op, MakeColumn(idx), MakeConstant(std::move(constant)));
}

}  // namespace iqs
