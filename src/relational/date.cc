#include "relational/date.h"

#include <cstdio>

namespace iqs {

bool Date::IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int Date::DaysInMonth(int year, int month) {
  static constexpr int kDays[12] = {31, 28, 31, 30, 31, 30,
                                    31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return 0;
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

Result<Date> Date::Create(int year, int month, int day) {
  if (year == 0) {
    return Status::InvalidArgument("year 0 does not exist");
  }
  if (month < 1 || month > 12) {
    return Status::InvalidArgument("month out of range: " +
                                   std::to_string(month));
  }
  if (day < 1 || day > DaysInMonth(year, month)) {
    return Status::InvalidArgument("day out of range: " + std::to_string(day));
  }
  return Date(year, month, day);
}

Result<Date> Date::FromString(const std::string& text) {
  int y = 0, m = 0, d = 0;
  char tail = '\0';
  int matched = std::sscanf(text.c_str(), "%d-%d-%d%c", &y, &m, &d, &tail);
  if (matched != 3) {
    return Status::ParseError("expected YYYY-MM-DD, got '" + text + "'");
  }
  return Create(y, m, d);
}

namespace {
// Days from 0000-03-01 to year/month/day using the civil-from-days
// algorithm (Howard Hinnant's chrono paper); shift so 1970-01-01 == 0.
int64_t CivilToDays(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}
}  // namespace

int64_t Date::ToEpochDays() const { return CivilToDays(year_, month_, day_); }

Date Date::FromEpochDays(int64_t z) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  return Date(static_cast<int>(y + (m <= 2)), static_cast<int>(m),
              static_cast<int>(d));
}

std::string Date::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year_, month_, day_);
  return buf;
}

}  // namespace iqs
