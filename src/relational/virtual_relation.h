#ifndef IQS_RELATIONAL_VIRTUAL_RELATION_H_
#define IQS_RELATIONAL_VIRTUAL_RELATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/relation.h"

namespace iqs {

// A provider of read-only virtual relations, materialized on every scan
// from live state (the `sys.*` introspection catalog, DESIGN.md §11).
// Providers are registered on a Database; the SQL/QUEL executors consult
// the registry whenever a FROM/range name is not a stored relation.
//
// Contract:
//  - RelationNames() lists the full dotted names this provider serves
//    (e.g. "sys.metrics"). Names are matched case-insensitively.
//  - Materialize(name) builds a fresh Relation snapshot of the current
//    state. The returned relation's name must equal the requested name
//    (case preserved as registered) so qualification works unchanged.
//  - Materialize must be safe to call concurrently from query threads.
class VirtualRelationProvider {
 public:
  virtual ~VirtualRelationProvider() = default;

  virtual std::vector<std::string> RelationNames() const = 0;
  virtual Result<Relation> Materialize(const std::string& name) const = 0;
};

// The schema prefix reserved for virtual catalog relations. Stored
// relations may not be created under it (Database enforces this), which
// keeps `sys.*` names unambiguous forever.
inline constexpr char kSysSchemaPrefix[] = "sys.";

// True when `name` starts with the reserved prefix (case-insensitive).
bool IsSysRelationName(const std::string& name);

}  // namespace iqs

#endif  // IQS_RELATIONAL_VIRTUAL_RELATION_H_
