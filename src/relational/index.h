#ifndef IQS_RELATIONAL_INDEX_H_
#define IQS_RELATIONAL_INDEX_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/relation.h"

namespace iqs {

// A sorted secondary index over one attribute of a Relation. It stores
// (value, row id) pairs ordered by value and answers point and inclusive
// range lookups by binary search. The inference engine uses range lookups
// to count rule support and to verify intensional answers against the EDB;
// it corresponds to the ISAM access paths INGRES would provide.
//
// The index is a snapshot: mutations to the base relation after Build are
// not reflected.
class SortedIndex {
 public:
  // Builds an index over `attribute` of `relation`. Null values are not
  // indexed.
  static Result<SortedIndex> Build(const Relation& relation,
                                   const std::string& attribute);

  const std::string& attribute() const { return attribute_; }
  size_t size() const { return entries_.size(); }

  // Row ids with value == v, in ascending row order.
  std::vector<size_t> Lookup(const Value& v) const;

  // Row ids with lo <= value <= hi (inclusive both ends).
  std::vector<size_t> Range(const Value& lo, const Value& hi) const;

  // Number of rows with lo <= value <= hi, without materializing ids.
  size_t CountRange(const Value& lo, const Value& hi) const;

  // Distinct values present in the index, ascending.
  std::vector<Value> DistinctValues() const;

  // Smallest / largest indexed value; NotFound when empty.
  Result<Value> Min() const;
  Result<Value> Max() const;

 private:
  struct Entry {
    Value value;
    size_t row;
  };

  SortedIndex(std::string attribute, std::vector<Entry> entries)
      : attribute_(std::move(attribute)), entries_(std::move(entries)) {}

  // Index of first entry with value >= v.
  size_t LowerBound(const Value& v) const;
  // Index of first entry with value > v.
  size_t UpperBound(const Value& v) const;

  std::string attribute_;
  std::vector<Entry> entries_;
};

}  // namespace iqs

#endif  // IQS_RELATIONAL_INDEX_H_
