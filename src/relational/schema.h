#ifndef IQS_RELATIONAL_SCHEMA_H_
#define IQS_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/value.h"

namespace iqs {

// One attribute of a relation schema.
struct AttributeDef {
  std::string name;
  ValueType type = ValueType::kString;
  bool is_key = false;  // member of the primary key

  friend bool operator==(const AttributeDef&, const AttributeDef&) = default;
};

// An ordered list of uniquely named attributes. Attribute name lookup is
// case-insensitive (SQL convention); the stored spelling is preserved for
// display.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<AttributeDef> attributes);

  // Returns an error on duplicate attribute names (case-insensitive).
  static Result<Schema> Create(std::vector<AttributeDef> attributes);

  size_t size() const { return attributes_.size(); }
  bool empty() const { return attributes_.empty(); }
  const AttributeDef& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }

  // Index of the attribute named `name`, or NotFound.
  Result<size_t> IndexOf(const std::string& name) const;
  bool Contains(const std::string& name) const;

  // Indices of attributes with is_key set.
  std::vector<size_t> KeyIndices() const;

  // "(Id:string key, Name:string, Displacement:integer)".
  std::string ToString() const;

  friend bool operator==(const Schema&, const Schema&) = default;

 private:
  std::vector<AttributeDef> attributes_;
};

}  // namespace iqs

#endif  // IQS_RELATIONAL_SCHEMA_H_
