#include "relational/column_store.h"

#include <atomic>
#include <utility>

#include "exec/exec_context.h"
#include "exec/parallel.h"

namespace iqs {

namespace {

std::atomic<bool> g_columnar_enabled{true};

int Sign3(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }

Column::Storage StorageFor(ValueType type) {
  switch (type) {
    case ValueType::kInt:
      return Column::Storage::kInt;
    case ValueType::kReal:
      return Column::Storage::kReal;
    case ValueType::kString:
      return Column::Storage::kString;
    case ValueType::kDate:
      return Column::Storage::kDate;
    case ValueType::kNull:
      break;
  }
  return Column::Storage::kMixed;
}

}  // namespace

bool ColumnarEnabled() {
  return g_columnar_enabled.load(std::memory_order_relaxed);
}

void SetColumnarEnabled(bool enabled) {
  g_columnar_enabled.store(enabled, std::memory_order_relaxed);
}

Value Column::Get(size_t row) const {
  switch (storage_) {
    case Storage::kInt:
      return nulls_[row] ? Value::Null() : Value::Int(ints_[row]);
    case Storage::kReal:
      return nulls_[row] ? Value::Null() : Value::Real(reals_[row]);
    case Storage::kString:
      return nulls_[row] ? Value::Null() : Value::String(strings_[row]);
    case Storage::kDate:
      return nulls_[row] ? Value::Null() : Value::OfDate(dates_[row]);
    case Storage::kMixed:
      return mixed_[row];
  }
  return Value::Null();
}

int Column::CompareRows(size_t a, size_t b) const {
  if (storage_ != Storage::kMixed) {
    bool an = nulls_[a] != 0, bn = nulls_[b] != 0;
    if (an || bn) return (an ? 0 : 1) - (bn ? 0 : 1);  // null sorts first
  }
  switch (storage_) {
    case Storage::kInt: {
      int64_t x = ints_[a], y = ints_[b];
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case Storage::kReal:
      return Sign3(reals_[a] - reals_[b]);
    case Storage::kString: {
      int c = strings_[a].compare(strings_[b]);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case Storage::kDate: {
      int64_t x = dates_[a].ToEpochDays(), y = dates_[b].ToEpochDays();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case Storage::kMixed:
      return mixed_[a].Compare(mixed_[b]);
  }
  return 0;
}

Status ColumnarRelation::BuildColumn(const Relation& rel, size_t c) {
  IQS_GOV_CHECKPOINT("columnar.transpose");
  Column& col = columns_[c];
  col.declared_ = schema_.attribute(c).type;

  // First pass: does any value disagree with its declared type? Checked
  // base relations never do; derived relations built via AppendUnchecked
  // may, and such a column demotes to exact-Value kMixed storage.
  bool mixed = StorageFor(col.declared_) == Column::Storage::kMixed;
  if (!mixed) {
    for (const Tuple& t : rel.rows()) {
      const Value& v = t.at(c);
      if (!v.is_null() && v.type() != col.declared_) {
        mixed = true;
        break;
      }
    }
  }
  col.storage_ = mixed ? Column::Storage::kMixed : StorageFor(col.declared_);

  size_t n = rel.size();
  // One estimated charge for this column's array before filling it.
  IQS_RETURN_IF_ERROR(exec::ChargeRows("columnar.transpose", n, 1));
  if (col.storage_ == Column::Storage::kMixed) {
    col.mixed_.reserve(n);
    for (const Tuple& t : rel.rows()) col.mixed_.push_back(t.at(c));
  } else {
    col.nulls_.assign(n, 0);
    switch (col.storage_) {
      case Column::Storage::kInt:
        col.ints_.assign(n, 0);
        break;
      case Column::Storage::kReal:
        col.reals_.assign(n, 0.0);
        break;
      case Column::Storage::kString:
        col.strings_.assign(n, std::string());
        break;
      case Column::Storage::kDate:
        col.dates_.assign(n, Date());
        break;
      case Column::Storage::kMixed:
        break;
    }
    for (size_t r = 0; r < n; ++r) {
      if ((r & 8191) == 0) IQS_GOV_CHECKPOINT("columnar.transpose");
      const Value& v = rel.row(r).at(c);
      if (v.is_null()) {
        col.nulls_[r] = 1;
        continue;
      }
      switch (col.storage_) {
        case Column::Storage::kInt:
          col.ints_[r] = v.AsInt();
          break;
        case Column::Storage::kReal:
          col.reals_[r] = v.AsReal();
          break;
        case Column::Storage::kString:
          col.strings_[r] = v.AsString();
          break;
        case Column::Storage::kDate:
          col.dates_[r] = v.AsDate();
          break;
        case Column::Storage::kMixed:
          break;
      }
    }
  }

  // Zone maps: per (column, block) min/max over non-null entries, with
  // the first-seen representative kept among Compare-equal values (the
  // strict-< scan Relation::ActiveDomain performs).
  size_t blocks = block_count();
  for (size_t b = 0; b < blocks; ++b) {
    if ((b & 63) == 0) IQS_GOV_CHECKPOINT("columnar.transpose");
    auto [first, last] = BlockRange(b);
    BlockStats& st = stats_[c * blocks + b];
    size_t min_row = 0, max_row = 0;
    bool seen = false;
    for (size_t r = first; r < last; ++r) {
      if (col.IsNull(r)) continue;
      ++st.non_null;
      if (!seen) {
        min_row = max_row = r;
        seen = true;
        continue;
      }
      if (col.CompareRows(r, min_row) < 0) min_row = r;
      if (col.CompareRows(r, max_row) > 0) max_row = r;
    }
    if (seen) {
      st.min = col.Get(min_row);
      st.max = col.Get(max_row);
    }
  }
  return Status::Ok();
}

Result<ColumnarRelation> ColumnarRelation::Transpose(const Relation& rel) {
  ColumnarRelation out;
  out.name_ = rel.name();
  out.schema_ = rel.schema();
  out.row_count_ = rel.size();
  size_t width = rel.schema().size();
  out.columns_.resize(width);
  out.stats_.resize(width * out.block_count());
  // Columns are independent slots, so the per-column build parallelizes
  // with no merge beyond first-error-wins; the serial column order is
  // immaterial to the bytes produced.
  Status built = exec::ParallelReduce<Status>(
      "exec.transpose", width, 1, Status::Ok(),
      [&out, &rel](size_t begin, size_t end) {
        for (size_t c = begin; c < end; ++c) {
          IQS_RETURN_IF_ERROR(out.BuildColumn(rel, c));
        }
        return Status::Ok();
      },
      [](Status* acc, Status&& part) {
        if (acc->ok() && !part.ok()) *acc = std::move(part);
      });
  IQS_RETURN_IF_ERROR(std::move(built));
  return out;
}

ColumnarRelation ColumnarRelation::FromRelation(const Relation& rel) {
  // Mask any installed governance context: this entry point is the
  // infallible one tests and benches rely on, and a transpose it runs is
  // not work the surrounding query asked for.
  exec::ScopedExecContext ungoverned(nullptr);
  Result<ColumnarRelation> out = Transpose(rel);
  return std::move(*out);
}

Tuple ColumnarRelation::MaterializeRow(size_t row) const {
  Tuple out;
  for (const Column& col : columns_) out.Append(col.Get(row));
  return out;
}

Relation ColumnarRelation::ToRelation() const {
  Relation out(name_, schema_);
  for (size_t r = 0; r < row_count_; ++r) {
    out.AppendUnchecked(MaterializeRow(r));
  }
  return out;
}

Result<std::pair<Value, Value>> ColumnarRelation::ColumnMinMax(
    size_t i) const {
  size_t blocks = block_count();
  Value lo, hi;
  bool seen = false;
  for (size_t b = 0; b < blocks; ++b) {
    const BlockStats& st = stats_[i * blocks + b];
    if (st.non_null == 0) continue;
    if (!seen) {
      lo = st.min;
      hi = st.max;
      seen = true;
      continue;
    }
    if (st.min < lo) lo = st.min;
    if (st.max > hi) hi = st.max;
  }
  if (!seen) {
    return Status::NotFound("column '" + schema_.attribute(i).name + "' of " +
                            name_ + " has no non-null values");
  }
  return std::make_pair(lo, hi);
}

}  // namespace iqs
