#include "relational/value.h"

#include <cerrno>
#include <cstdlib>
#include <ostream>

#include "common/string_util.h"

namespace iqs {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "integer";
    case ValueType::kReal:
      return "real";
    case ValueType::kString:
      return "string";
    case ValueType::kDate:
      return "date";
  }
  return "unknown";
}

Result<ValueType> ValueTypeFromName(const std::string& name) {
  std::string lower = ToLower(StripWhitespace(name));
  // KER's CHAR[n] domains map to string; the length bound is tracked at the
  // KER domain layer, not here.
  if (lower == "integer" || lower == "int") return ValueType::kInt;
  if (lower == "real" || lower == "float" || lower == "double") {
    return ValueType::kReal;
  }
  if (lower == "string" || StartsWith(lower, "char")) {
    return ValueType::kString;
  }
  if (lower == "date") return ValueType::kDate;
  return Status::InvalidArgument("unknown value type name '" + name + "'");
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt;
    case 2:
      return ValueType::kReal;
    case 3:
      return ValueType::kString;
    case 4:
      return ValueType::kDate;
  }
  return ValueType::kNull;
}

Result<double> Value::AsNumeric() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(AsInt());
    case ValueType::kReal:
      return AsReal();
    default:
      return Status::TypeError(std::string("value of type ") +
                               ValueTypeName(type()) + " is not numeric");
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kReal:
      return FormatDouble(AsReal());
    case ValueType::kString:
      return AsString();
    case ValueType::kDate:
      return AsDate().ToString();
  }
  return "";
}

Result<Value> Value::FromText(ValueType type, const std::string& text) {
  if (text.empty() && type != ValueType::kString) return Value::Null();
  switch (type) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno != 0 || end == text.c_str() || *end != '\0') {
        return Status::ParseError("'" + text + "' is not an integer");
      }
      return Value::Int(v);
    }
    case ValueType::kReal: {
      errno = 0;
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (errno != 0 || end == text.c_str() || *end != '\0') {
        return Status::ParseError("'" + text + "' is not a real");
      }
      return Value::Real(v);
    }
    case ValueType::kString:
      return Value::String(text);
    case ValueType::kDate: {
      IQS_ASSIGN_OR_RETURN(Date d, Date::FromString(text));
      return Value::OfDate(d);
    }
  }
  return Status::Internal("unreachable value type");
}

namespace {
int Sign(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }
}  // namespace

bool Value::ComparableWith(const Value& other) const {
  ValueType a = type();
  ValueType b = other.type();
  if (a == ValueType::kNull || b == ValueType::kNull) return true;
  if (a == b) return true;
  bool a_num = a == ValueType::kInt || a == ValueType::kReal;
  bool b_num = b == ValueType::kInt || b == ValueType::kReal;
  return a_num && b_num;
}

int Value::Compare(const Value& other) const {
  ValueType a = type();
  ValueType b = other.type();
  // Null sorts first.
  if (a == ValueType::kNull || b == ValueType::kNull) {
    return (a == ValueType::kNull ? 0 : 1) - (b == ValueType::kNull ? 0 : 1);
  }
  bool a_num = a == ValueType::kInt || a == ValueType::kReal;
  bool b_num = b == ValueType::kInt || b == ValueType::kReal;
  if (a_num && b_num) {
    if (a == ValueType::kInt && b == ValueType::kInt) {
      int64_t x = AsInt(), y = other.AsInt();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = a == ValueType::kInt ? static_cast<double>(AsInt()) : AsReal();
    double y = b == ValueType::kInt ? static_cast<double>(other.AsInt())
                                    : other.AsReal();
    return Sign(x - y);
  }
  if (a != b) {
    return static_cast<int>(a) < static_cast<int>(b) ? -1 : 1;
  }
  switch (a) {
    case ValueType::kString: {
      int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueType::kDate: {
      int64_t x = AsDate().ToEpochDays(), y = other.AsDate().ToEpochDays();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    default:
      return 0;
  }
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace iqs
