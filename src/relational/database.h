#ifndef IQS_RELATIONAL_DATABASE_H_
#define IQS_RELATIONAL_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/column_store.h"
#include "relational/index.h"
#include "relational/relation.h"
#include "relational/virtual_relation.h"

namespace iqs {

// The extensional database (EDB, paper §4): a catalog of named relations.
// Relation names are case-insensitive; the creation spelling is preserved.
class Database {
 public:
  Database() = default;

  // Databases own their relations and are not copyable. Moves carry the
  // epoch along (spelled out because std::atomic has no move ops).
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&& other) noexcept
      : relations_(std::move(other.relations_)),
        creation_order_(std::move(other.creation_order_)),
        indexes_(std::move(other.indexes_)),
        virtual_relations_(std::move(other.virtual_relations_)),
        virtual_order_(std::move(other.virtual_order_)),
        columnar_(std::move(other.columnar_)),
        epoch_(other.epoch_.load(std::memory_order_relaxed)) {}
  Database& operator=(Database&& other) noexcept {
    relations_ = std::move(other.relations_);
    creation_order_ = std::move(other.creation_order_);
    indexes_ = std::move(other.indexes_);
    virtual_relations_ = std::move(other.virtual_relations_);
    virtual_order_ = std::move(other.virtual_order_);
    columnar_ = std::move(other.columnar_);
    epoch_.store(other.epoch_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  // Creates an empty relation; AlreadyExists if the name is taken.
  Result<Relation*> CreateRelation(const std::string& name, Schema schema);

  // Adds a fully built relation under its own name.
  Status AddRelation(Relation relation);

  Result<const Relation*> Get(const std::string& name) const;
  Result<Relation*> GetMutable(const std::string& name);
  bool Contains(const std::string& name) const;

  Status Drop(const std::string& name);

  // Names in creation order.
  std::vector<std::string> RelationNames() const;

  size_t size() const { return relations_.size(); }

  // Data epoch: bumped on every mutation entry point (CreateRelation,
  // AddRelation, GetMutable, Drop). Versioned caches embed it in their
  // keys, so any write — even one that ends up a no-op — retires every
  // cached answer derived from the old contents (paper-correct, if
  // conservative). Monotone; never reset.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

  // ---- secondary indexes ---------------------------------------------

  // Builds (or rebuilds) a sorted index over `attribute` of `relation`.
  // The SQL executor uses registered indexes to replace full scans for
  // single-table point/range restrictions.
  Status CreateIndex(const std::string& relation,
                     const std::string& attribute);

  // The index for (relation, attribute), or null when none is
  // registered. Indexes are snapshots: GetMutable and Drop invalidate
  // every index of the touched relation (conservative but safe).
  const SortedIndex* GetIndex(const std::string& relation,
                              const std::string& attribute) const;

  // Names of indexed attributes of `relation`.
  std::vector<std::string> IndexedAttributes(
      const std::string& relation) const;

  // ---- columnar snapshots --------------------------------------------

  // The columnar snapshot of the named base relation (DESIGN.md §14),
  // built on first use and cached keyed by the data epoch — any
  // mutation retires it the same way it retires cached answers. The
  // returned shared_ptr stays valid across later mutations (it is a
  // snapshot, not a view). NotFound for unknown (including virtual)
  // names; virtual relations are materialized fresh per statement and
  // never reach this cache.
  Result<std::shared_ptr<const ColumnarRelation>> ColumnarSnapshot(
      const std::string& name) const;

  // ---- virtual relations (sys.* catalog) -----------------------------

  // Registers a provider of read-only virtual relations. The provider
  // must outlive the database (IqsSystem owns both). Later registrations
  // win on name collisions, though providers are expected to serve
  // disjoint names.
  void RegisterVirtualProvider(const VirtualRelationProvider* provider);

  // True when `name` is served by a registered virtual provider.
  bool IsVirtual(const std::string& name) const;

  // Materializes a fresh snapshot of the named virtual relation;
  // NotFound when no provider serves it. Virtual relations are never
  // stored: every call rebuilds from live state.
  Result<Relation> MaterializeVirtual(const std::string& name) const;

  // Dotted names of all registered virtual relations, in registration
  // order (providers first, then their declared order).
  std::vector<std::string> VirtualRelationNames() const;

 private:
  void InvalidateIndexes(const std::string& lower_name);

  // Keyed by lower-cased name.
  std::map<std::string, std::unique_ptr<Relation>> relations_;
  std::vector<std::string> creation_order_;
  // Keyed by (lower relation, lower attribute).
  std::map<std::pair<std::string, std::string>, SortedIndex> indexes_;
  // Lower-cased virtual name -> (provider, registered spelling).
  std::map<std::string,
           std::pair<const VirtualRelationProvider*, std::string>>
      virtual_relations_;
  std::vector<std::string> virtual_order_;
  // Lower-cased name -> columnar snapshot and the epoch it was built
  // at. Lazily filled by ColumnarSnapshot (hence mutable); the mutex
  // only guards the map, never the build.
  struct ColumnarEntry {
    uint64_t epoch = 0;
    std::shared_ptr<const ColumnarRelation> snapshot;
  };
  mutable std::mutex columnar_mu_;
  mutable std::map<std::string, ColumnarEntry> columnar_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace iqs

#endif  // IQS_RELATIONAL_DATABASE_H_
