#ifndef IQS_RELATIONAL_ALGEBRA_H_
#define IQS_RELATIONAL_ALGEBRA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/column_store.h"
#include "relational/predicate.h"
#include "relational/relation.h"

namespace iqs {

// Relational-algebra operators over in-memory Relations. These are the
// operations the paper's ILS issues as QUEL statements (§5.2.1): sorted
// unique projection, anti-join to find inconsistent pairs, deletion — plus
// the joins and selections needed by the SQL executor.
//
// Result relations carry no key constraints (they are derived bags/sets).

// sigma_pred(input). The result keeps input's schema and name "+sel".
Result<Relation> Select(const Relation& input, const Predicate& pred);

// pi_attrs(input); with `distinct`, duplicate rows are collapsed
// (preserving first occurrence order).
Result<Relation> Project(const Relation& input,
                         const std::vector<std::string>& attribute_names,
                         bool distinct);

// The ILS step-1 primitive: `retrieve into S unique (r.Y, r.X) sort by r.Y`
// generalized — distinct projection sorted by the given sort attributes.
Result<Relation> SortedUniqueProject(
    const Relation& input, const std::vector<std::string>& attribute_names,
    const std::vector<std::string>& sort_by);

// Removes duplicate rows, preserving first-occurrence order.
Relation Distinct(const Relation& input);

// Cartesian product. Attribute names in the result are qualified as
// "<relation>.<attr>" (unless already qualified) so self-collisions like
// SUBMARINE.Class vs CLASS.Class stay distinguishable.
Result<Relation> CrossProduct(const Relation& left, const Relation& right);

// Hash equi-join on left.left_attr == right.right_attr, with the same
// qualified-name convention as CrossProduct.
Result<Relation> EquiJoin(const Relation& left, const std::string& left_attr,
                          const Relation& right,
                          const std::string& right_attr);

// Set union / difference / intersection. Schemas must have identical
// attribute types (names may differ; the left schema is kept). Results are
// duplicate-free.
Result<Relation> Union(const Relation& left, const Relation& right);
Result<Relation> Difference(const Relation& left, const Relation& right);
Result<Relation> Intersect(const Relation& left, const Relation& right);

// Simple aggregates over one column (nulls ignored).
Result<Value> AggregateMin(const Relation& input, const std::string& attr);
Result<Value> AggregateMax(const Relation& input, const std::string& attr);
// Count of non-null values in `attr`; Count of rows when attr == "*".
Result<int64_t> AggregateCount(const Relation& input, const std::string& attr);

// Group `input` by `group_attr` and count rows per group. The result has
// schema (group_attr, count:int) sorted by group value.
Result<Relation> GroupCount(const Relation& input,
                            const std::string& group_attr);

// Returns a copy of `input` whose attribute names are qualified as
// "<relation>.<attr>" (idempotent for already-qualified names).
Relation QualifyAttributes(const Relation& input);

// ---- Batch (columnar) execution -------------------------------------
//
// The vectorized counterpart of Select: conjuncts of the shape
// `column <op> constant` run as typed tight loops over the column
// arrays, with zone-map block pruning in front, and everything else
// falls back to the row predicate over materialized survivors. The
// contract is byte-identity with the serial row scan — same rows, same
// order, and the same first error.

// One extracted WHERE conjunct, oriented column-first. `constant_first`
// records that the source predicate had the literal on the left
// (`5 > x`): comparison *results* are mirror-symmetric, but TypeError
// text is not, so generic evaluation re-applies the original
// orientation.
struct ColumnCondition {
  size_t column = 0;
  CompareOp op = CompareOp::kEq;  // column <op> constant
  Value constant;
  bool constant_first = false;
};

// Result of splitting a bound predicate for ColumnarScan: the maximal
// extractable *prefix* of AND-ed column-vs-constant compares in
// evaluation order, plus a residual predicate holding every remaining
// leaf (null when fully extracted). Only a prefix is sound: a conjunct
// may not be evaluated ahead of an earlier non-extractable leaf, or a
// row that leaf would have errored on could be rejected first instead.
// Columns demoted to kMixed storage are never extracted — the
// error-order argument in ColumnarScan needs single-typed columns.
struct ExtractedConjuncts {
  std::vector<ColumnCondition> conditions;
  PredicatePtr residual;
};
ExtractedConjuncts ExtractColumnConditions(const PredicatePtr& pred,
                                           const ColumnarRelation& rel);

struct ColumnarScanStats {
  size_t blocks_total = 0;
  size_t blocks_pruned = 0;  // skipped whole via zone-map min/max
};

// Filters `rel` by `conditions` (in order) AND `residual` (may be
// null), returning admitted row ids in base order. Parallel over
// blocks; merge is block-ordered, so output order and the first error
// reported match the serial row-at-a-time scan exactly.
Result<std::vector<uint32_t>> ColumnarScan(
    const ColumnarRelation& rel,
    const std::vector<ColumnCondition>& conditions, const Predicate* residual,
    ColumnarScanStats* stats);

}  // namespace iqs

#endif  // IQS_RELATIONAL_ALGEBRA_H_
