#ifndef IQS_RELATIONAL_ALGEBRA_H_
#define IQS_RELATIONAL_ALGEBRA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/predicate.h"
#include "relational/relation.h"

namespace iqs {

// Relational-algebra operators over in-memory Relations. These are the
// operations the paper's ILS issues as QUEL statements (§5.2.1): sorted
// unique projection, anti-join to find inconsistent pairs, deletion — plus
// the joins and selections needed by the SQL executor.
//
// Result relations carry no key constraints (they are derived bags/sets).

// sigma_pred(input). The result keeps input's schema and name "+sel".
Result<Relation> Select(const Relation& input, const Predicate& pred);

// pi_attrs(input); with `distinct`, duplicate rows are collapsed
// (preserving first occurrence order).
Result<Relation> Project(const Relation& input,
                         const std::vector<std::string>& attribute_names,
                         bool distinct);

// The ILS step-1 primitive: `retrieve into S unique (r.Y, r.X) sort by r.Y`
// generalized — distinct projection sorted by the given sort attributes.
Result<Relation> SortedUniqueProject(
    const Relation& input, const std::vector<std::string>& attribute_names,
    const std::vector<std::string>& sort_by);

// Removes duplicate rows, preserving first-occurrence order.
Relation Distinct(const Relation& input);

// Cartesian product. Attribute names in the result are qualified as
// "<relation>.<attr>" (unless already qualified) so self-collisions like
// SUBMARINE.Class vs CLASS.Class stay distinguishable.
Result<Relation> CrossProduct(const Relation& left, const Relation& right);

// Hash equi-join on left.left_attr == right.right_attr, with the same
// qualified-name convention as CrossProduct.
Result<Relation> EquiJoin(const Relation& left, const std::string& left_attr,
                          const Relation& right,
                          const std::string& right_attr);

// Set union / difference / intersection. Schemas must have identical
// attribute types (names may differ; the left schema is kept). Results are
// duplicate-free.
Result<Relation> Union(const Relation& left, const Relation& right);
Result<Relation> Difference(const Relation& left, const Relation& right);
Result<Relation> Intersect(const Relation& left, const Relation& right);

// Simple aggregates over one column (nulls ignored).
Result<Value> AggregateMin(const Relation& input, const std::string& attr);
Result<Value> AggregateMax(const Relation& input, const std::string& attr);
// Count of non-null values in `attr`; Count of rows when attr == "*".
Result<int64_t> AggregateCount(const Relation& input, const std::string& attr);

// Group `input` by `group_attr` and count rows per group. The result has
// schema (group_attr, count:int) sorted by group value.
Result<Relation> GroupCount(const Relation& input,
                            const std::string& group_attr);

// Returns a copy of `input` whose attribute names are qualified as
// "<relation>.<attr>" (idempotent for already-qualified names).
Relation QualifyAttributes(const Relation& input);

}  // namespace iqs

#endif  // IQS_RELATIONAL_ALGEBRA_H_
