#ifndef IQS_RELATIONAL_PREDICATE_H_
#define IQS_RELATIONAL_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace iqs {

// Comparison operators available in WHERE clauses and rule conditions.
// kLike is SQL pattern matching ('%' any sequence, '_' any single
// character, case-sensitive) over the string forms of both operands; it
// never describes an interval, so induction/inference skip it.
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kLike,
};

const char* CompareOpSymbol(CompareOp op);

// SQL LIKE semantics: does `text` match `pattern`? Text is treated as
// UTF-8: '_' consumes one code point, not one byte (a malformed byte
// counts as one character).
bool LikeMatch(const std::string& text, const std::string& pattern);

// Applies `op` to two values. Comparisons involving null are false (a
// simplification of SQL's three-valued logic; the library never relies on
// NOT over null comparisons). Returns TypeError for incomparable domains.
Result<bool> ApplyCompare(CompareOp op, const Value& lhs, const Value& rhs);

// A scalar expression evaluated against a tuple: either a constant or a
// column reference already resolved to an attribute index.
class Expr {
 public:
  virtual ~Expr() = default;
  virtual Result<Value> Eval(const Tuple& tuple) const = 0;
  virtual std::string ToString(const Schema* schema) const = 0;
};

class ConstantExpr : public Expr {
 public:
  explicit ConstantExpr(Value value) : value_(std::move(value)) {}
  Result<Value> Eval(const Tuple&) const override { return value_; }
  std::string ToString(const Schema*) const override;
  const Value& value() const { return value_; }

 private:
  Value value_;
};

class ColumnExpr : public Expr {
 public:
  explicit ColumnExpr(size_t index) : index_(index) {}
  Result<Value> Eval(const Tuple& tuple) const override;
  std::string ToString(const Schema* schema) const override;
  size_t index() const { return index_; }

 private:
  size_t index_;
};

// A boolean condition over a tuple.
class Predicate {
 public:
  virtual ~Predicate() = default;
  virtual Result<bool> Eval(const Tuple& tuple) const = 0;
  virtual std::string ToString(const Schema* schema) const = 0;
};

using PredicatePtr = std::shared_ptr<const Predicate>;
using ExprPtr = std::shared_ptr<const Expr>;

class TruePredicate : public Predicate {
 public:
  Result<bool> Eval(const Tuple&) const override { return true; }
  std::string ToString(const Schema*) const override { return "true"; }
};

class ComparePredicate : public Predicate {
 public:
  ComparePredicate(CompareOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  Result<bool> Eval(const Tuple& tuple) const override;
  std::string ToString(const Schema* schema) const override;

  CompareOp op() const { return op_; }
  const Expr& lhs() const { return *lhs_; }
  const Expr& rhs() const { return *rhs_; }

 private:
  CompareOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class AndPredicate : public Predicate {
 public:
  AndPredicate(PredicatePtr lhs, PredicatePtr rhs)
      : lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  Result<bool> Eval(const Tuple& tuple) const override;
  std::string ToString(const Schema* schema) const override;

  const PredicatePtr& lhs() const { return lhs_; }
  const PredicatePtr& rhs() const { return rhs_; }

 private:
  PredicatePtr lhs_;
  PredicatePtr rhs_;
};

class OrPredicate : public Predicate {
 public:
  OrPredicate(PredicatePtr lhs, PredicatePtr rhs)
      : lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  Result<bool> Eval(const Tuple& tuple) const override;
  std::string ToString(const Schema* schema) const override;

 private:
  PredicatePtr lhs_;
  PredicatePtr rhs_;
};

class NotPredicate : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr inner) : inner_(std::move(inner)) {}
  Result<bool> Eval(const Tuple& tuple) const override;
  std::string ToString(const Schema* schema) const override;

 private:
  PredicatePtr inner_;
};

// Convenience builders.
ExprPtr MakeConstant(Value value);
ExprPtr MakeColumn(size_t index);
PredicatePtr MakeTrue();
PredicatePtr MakeCompare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
PredicatePtr MakeAnd(PredicatePtr lhs, PredicatePtr rhs);
PredicatePtr MakeOr(PredicatePtr lhs, PredicatePtr rhs);
PredicatePtr MakeNot(PredicatePtr inner);

// Column-vs-constant comparison against a named attribute of `schema`.
Result<PredicatePtr> MakeColumnCompare(const Schema& schema,
                                       const std::string& column,
                                       CompareOp op, Value constant);

}  // namespace iqs

#endif  // IQS_RELATIONAL_PREDICATE_H_
