#ifndef IQS_RELATIONAL_VALUE_H_
#define IQS_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "relational/date.h"

namespace iqs {

// The basic domains the KER model provides (paper §2): integer, real,
// string, and date, plus null for absent values.
enum class ValueType {
  kNull = 0,
  kInt,
  kReal,
  kString,
  kDate,
};

const char* ValueTypeName(ValueType type);

// Parses "integer" / "real" / "string" / "date" (case-insensitive,
// "int"/"char" accepted as aliases).
Result<ValueType> ValueTypeFromName(const std::string& name);

// A dynamically typed database value with a total order.
//
// Ordering rules:
//  * null sorts before everything (and equals only null);
//  * int and real compare numerically with each other;
//  * strings compare lexicographically by bytes — this is what makes the
//    paper's string interval rules (e.g. "SSN623 <= Id <= SSN635") work;
//  * dates compare chronologically;
//  * otherwise values order by type rank (comparisons across unrelated
//    types are usually rejected earlier by the type checker).
class Value {
 public:
  // Constructs null.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Real(double v) { return Value(Repr(v)); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }
  static Value OfDate(Date v) { return Value(Repr(v)); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  // Typed accessors; calling the wrong one is a programming error.
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsReal() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  const Date& AsDate() const { return std::get<Date>(data_); }

  // Numeric view: int or real as double. Error for other types.
  Result<double> AsNumeric() const;

  // Lossless round trip with FromText for every type; null renders as "".
  std::string ToString() const;

  // Parses `text` as a value of `type`. Empty text parses to null.
  static Result<Value> FromText(ValueType type, const std::string& text);

  // Three-way comparison implementing the total order above:
  // negative / zero / positive.
  int Compare(const Value& other) const;

  // True when this value and `other` belong to comparable domains
  // (same type, or int/real mix).
  bool ComparableWith(const Value& other) const;

 private:
  using Repr = std::variant<std::monostate, int64_t, double, std::string, Date>;
  explicit Value(Repr data) : data_(std::move(data)) {}

  Repr data_;
};

inline bool operator==(const Value& a, const Value& b) {
  return a.Compare(b) == 0;
}
inline bool operator!=(const Value& a, const Value& b) {
  return a.Compare(b) != 0;
}
inline bool operator<(const Value& a, const Value& b) {
  return a.Compare(b) < 0;
}
inline bool operator<=(const Value& a, const Value& b) {
  return a.Compare(b) <= 0;
}
inline bool operator>(const Value& a, const Value& b) {
  return a.Compare(b) > 0;
}
inline bool operator>=(const Value& a, const Value& b) {
  return a.Compare(b) >= 0;
}

std::ostream& operator<<(std::ostream& os, const Value& value);

}  // namespace iqs

#endif  // IQS_RELATIONAL_VALUE_H_
