#include "relational/relation.h"

#include <algorithm>

#include "common/string_util.h"

namespace iqs {

Status Relation::Insert(Tuple tuple) {
  if (tuple.size() != schema_.size()) {
    return Status::InvalidArgument(
        "arity mismatch inserting into " + name_ + ": got " +
        std::to_string(tuple.size()) + " values, schema has " +
        std::to_string(schema_.size()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    const Value& v = tuple.at(i);
    if (v.is_null()) continue;
    ValueType expected = schema_.attribute(i).type;
    if (v.type() != expected) {
      // Allow int into real columns (widening); everything else is an error.
      if (expected == ValueType::kReal && v.type() == ValueType::kInt) {
        tuple.at(i) = Value::Real(static_cast<double>(v.AsInt()));
        continue;
      }
      return Status::TypeError("attribute '" + schema_.attribute(i).name +
                               "' of " + name_ + " expects " +
                               ValueTypeName(expected) + ", got " +
                               ValueTypeName(v.type()));
    }
  }
  std::vector<size_t> key = schema_.KeyIndices();
  if (!key.empty()) {
    for (const Tuple& existing : rows_) {
      bool same = true;
      for (size_t k : key) {
        if (existing.at(k) != tuple.at(k)) {
          same = false;
          break;
        }
      }
      if (same) {
        return Status::AlreadyExists("duplicate key inserting into " + name_ +
                                     ": " + tuple.ToString());
      }
    }
  }
  rows_.push_back(std::move(tuple));
  return Status::Ok();
}

Status Relation::InsertText(const std::vector<std::string>& fields) {
  if (fields.size() != schema_.size()) {
    return Status::InvalidArgument(
        "arity mismatch inserting into " + name_ + ": got " +
        std::to_string(fields.size()) + " fields, schema has " +
        std::to_string(schema_.size()));
  }
  Tuple tuple;
  for (size_t i = 0; i < fields.size(); ++i) {
    IQS_ASSIGN_OR_RETURN(Value v,
                         Value::FromText(schema_.attribute(i).type, fields[i]));
    tuple.Append(std::move(v));
  }
  return Insert(std::move(tuple));
}

size_t Relation::DeleteWhere(const std::function<bool(const Tuple&)>& pred) {
  size_t before = rows_.size();
  rows_.erase(std::remove_if(rows_.begin(), rows_.end(), pred), rows_.end());
  return before - rows_.size();
}

Result<Value> Relation::GetValue(size_t i, const std::string& name) const {
  if (i >= rows_.size()) {
    return Status::InvalidArgument("row index out of range");
  }
  IQS_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(name));
  return rows_[i].at(idx);
}

Result<std::vector<Value>> Relation::Column(const std::string& name) const {
  IQS_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(name));
  std::vector<Value> out;
  out.reserve(rows_.size());
  for (const Tuple& t : rows_) out.push_back(t.at(idx));
  return out;
}

Result<std::pair<Value, Value>> Relation::ActiveDomain(
    const std::string& name) const {
  IQS_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(name));
  bool seen = false;
  Value lo, hi;
  for (const Tuple& t : rows_) {
    const Value& v = t.at(idx);
    if (v.is_null()) continue;
    if (!seen) {
      lo = hi = v;
      seen = true;
    } else {
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
  }
  if (!seen) {
    return Status::NotFound("column '" + name + "' of " + name_ +
                            " has no non-null values");
  }
  return std::make_pair(lo, hi);
}

Status Relation::SortBy(const std::vector<std::string>& attribute_names) {
  std::vector<size_t> idx;
  idx.reserve(attribute_names.size());
  for (const std::string& a : attribute_names) {
    IQS_ASSIGN_OR_RETURN(size_t i, schema_.IndexOf(a));
    idx.push_back(i);
  }
  std::stable_sort(rows_.begin(), rows_.end(),
                   [&idx](const Tuple& a, const Tuple& b) {
                     for (size_t i : idx) {
                       int c = a.at(i).Compare(b.at(i));
                       if (c != 0) return c < 0;
                     }
                     return false;
                   });
  return Status::Ok();
}

std::string Relation::ToTable() const {
  std::vector<size_t> widths(schema_.size());
  for (size_t i = 0; i < schema_.size(); ++i) {
    widths[i] = schema_.attribute(i).name.size();
  }
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const Tuple& t : rows_) {
    std::vector<std::string> row;
    row.reserve(t.size());
    for (size_t i = 0; i < t.size(); ++i) {
      row.push_back(t.at(i).ToString());
      widths[i] = std::max(widths[i], row.back().size());
    }
    cells.push_back(std::move(row));
  }
  std::string out;
  auto add_rule = [&] {
    out += "+";
    for (size_t w : widths) {
      out.append(w + 2, '-');
      out += "+";
    }
    out += "\n";
  };
  add_rule();
  out += "|";
  for (size_t i = 0; i < schema_.size(); ++i) {
    out += " " + PadRight(schema_.attribute(i).name, widths[i]) + " |";
  }
  out += "\n";
  add_rule();
  for (const auto& row : cells) {
    out += "|";
    for (size_t i = 0; i < row.size(); ++i) {
      out += " " + PadRight(row[i], widths[i]) + " |";
    }
    out += "\n";
  }
  add_rule();
  return out;
}

}  // namespace iqs
