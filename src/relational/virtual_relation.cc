#include "relational/virtual_relation.h"

#include <cctype>

namespace iqs {

bool IsSysRelationName(const std::string& name) {
  const std::string prefix = kSysSchemaPrefix;
  if (name.size() < prefix.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(name[i])) != prefix[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace iqs
