#ifndef IQS_RELATIONAL_DATE_H_
#define IQS_RELATIONAL_DATE_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace iqs {

// A Gregorian calendar date. KER provides `date` as one of the basic
// domains (paper §2); we implement it as a validated y/m/d triple with a
// total order so date attributes participate in interval rules like any
// other ordered attribute.
class Date {
 public:
  // Constructs 1970-01-01.
  Date() : year_(1970), month_(1), day_(1) {}

  // Returns an error when the triple is not a real calendar date
  // (month out of 1..12, day out of range for the month, year 0).
  static Result<Date> Create(int year, int month, int day);

  // Parses "YYYY-MM-DD".
  static Result<Date> FromString(const std::string& text);

  int year() const { return year_; }
  int month() const { return month_; }
  int day() const { return day_; }

  // Days since 1970-01-01 (negative before). Used as the ordering key and
  // for distance computations in run construction.
  int64_t ToEpochDays() const;
  static Date FromEpochDays(int64_t days);

  // "YYYY-MM-DD".
  std::string ToString() const;

  static bool IsLeapYear(int year);
  static int DaysInMonth(int year, int month);

 private:
  Date(int year, int month, int day)
      : year_(year), month_(month), day_(day) {}

  int year_;
  int month_;
  int day_;
};

inline bool operator==(const Date& a, const Date& b) {
  return a.year() == b.year() && a.month() == b.month() && a.day() == b.day();
}
inline bool operator!=(const Date& a, const Date& b) { return !(a == b); }
inline bool operator<(const Date& a, const Date& b) {
  return a.ToEpochDays() < b.ToEpochDays();
}
inline bool operator<=(const Date& a, const Date& b) {
  return a.ToEpochDays() <= b.ToEpochDays();
}
inline bool operator>(const Date& a, const Date& b) { return b < a; }
inline bool operator>=(const Date& a, const Date& b) { return b <= a; }

}  // namespace iqs

#endif  // IQS_RELATIONAL_DATE_H_
