#ifndef IQS_RELATIONAL_RELATION_H_
#define IQS_RELATIONAL_RELATION_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace iqs {

// A named in-memory table: a Schema plus a bag of tuples. This is the EDB
// building block (paper §4). Primary-key uniqueness is enforced on insert
// when the schema declares key attributes.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const Tuple& row(size_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }

  // Inserts after checking arity, per-attribute type conformance (null is
  // accepted for any type), and key uniqueness.
  Status Insert(Tuple tuple);

  // Convenience: builds the tuple from per-attribute text using
  // Value::FromText with the schema types.
  Status InsertText(const std::vector<std::string>& fields);

  // Unchecked append for operators that construct known-conformant rows.
  void AppendUnchecked(Tuple tuple) { rows_.push_back(std::move(tuple)); }

  // Removes all rows matching `pred`; returns how many were removed.
  size_t DeleteWhere(const std::function<bool(const Tuple&)>& pred);

  void Clear() { rows_.clear(); }

  // Value of attribute `name` in row `i`.
  Result<Value> GetValue(size_t i, const std::string& name) const;

  // All values of one attribute, in row order.
  Result<std::vector<Value>> Column(const std::string& name) const;

  // Observed [min, max] of a column, ignoring nulls; NotFound when the
  // column is empty or all-null. This is the "active domain" used for
  // clipping query conditions during forward inference (DESIGN.md §4).
  Result<std::pair<Value, Value>> ActiveDomain(const std::string& name) const;

  // Sorts rows in place lexicographically by the given attribute names.
  Status SortBy(const std::vector<std::string>& attribute_names);

  // ASCII table rendering with a header, for examples and bench output.
  std::string ToTable() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace iqs

#endif  // IQS_RELATIONAL_RELATION_H_
