#include "relational/algebra.h"

#include <map>
#include <set>

#include "common/string_util.h"
#include "exec/exec_context.h"
#include "exec/parallel.h"

namespace iqs {

namespace {

// True when `name` already contains a qualifier dot.
bool IsQualified(const std::string& name) {
  return name.find('.') != std::string::npos;
}

Status CheckUnionCompatible(const Relation& left, const Relation& right) {
  if (left.schema().size() != right.schema().size()) {
    return Status::TypeError("schemas have different arity: " +
                             left.name() + " vs " + right.name());
  }
  for (size_t i = 0; i < left.schema().size(); ++i) {
    if (left.schema().attribute(i).type != right.schema().attribute(i).type) {
      return Status::TypeError(
          "attribute " + std::to_string(i) + " type mismatch: " +
          std::string(ValueTypeName(left.schema().attribute(i).type)) +
          " vs " + ValueTypeName(right.schema().attribute(i).type));
    }
  }
  return Status::Ok();
}

Schema StripKeys(const Schema& schema) {
  std::vector<AttributeDef> attrs = schema.attributes();
  for (AttributeDef& a : attrs) a.is_key = false;
  return Schema(std::move(attrs));
}

}  // namespace

Relation QualifyAttributes(const Relation& input) {
  std::vector<AttributeDef> attrs = input.schema().attributes();
  for (AttributeDef& a : attrs) {
    if (!IsQualified(a.name)) a.name = input.name() + "." + a.name;
    a.is_key = false;
  }
  Relation out(input.name(), Schema(std::move(attrs)));
  for (const Tuple& t : input.rows()) out.AppendUnchecked(t);
  return out;
}

Result<Relation> Select(const Relation& input, const Predicate& pred) {
  // Partitioned scan: chunks evaluate the predicate independently into
  // local row vectors, concatenated in chunk order — the output row order
  // (and the first error reported) matches the serial scan exactly.
  const std::vector<Tuple>& rows = input.rows();
  using Part = Result<std::vector<Tuple>>;
  Part kept = exec::ParallelReduce<Part>(
      "exec.scan", rows.size(), 256, std::vector<Tuple>{},
      [&rows, &pred](size_t begin, size_t end) -> Part {
        std::vector<Tuple> local;
        for (size_t i = begin; i < end; ++i) {
          if (((i - begin) & 1023) == 0) IQS_GOV_CHECKPOINT("sql.scan");
          IQS_ASSIGN_OR_RETURN(bool keep, pred.Eval(rows[i]));
          if (keep) local.push_back(rows[i]);
        }
        return local;
      },
      [](Part* acc, Part&& part) {
        if (!acc->ok()) return;
        if (!part.ok()) {
          *acc = std::move(part);
          return;
        }
        std::vector<Tuple>& dst = **acc;
        for (Tuple& t : *part) dst.push_back(std::move(t));
      });
  if (!kept.ok()) return kept.status();
  Relation out(input.name() + "+sel", StripKeys(input.schema()));
  for (Tuple& t : *kept) out.AppendUnchecked(std::move(t));
  return out;
}

Result<Relation> Project(const Relation& input,
                         const std::vector<std::string>& attribute_names,
                         bool distinct) {
  std::vector<size_t> indices;
  std::vector<AttributeDef> attrs;
  indices.reserve(attribute_names.size());
  for (const std::string& name : attribute_names) {
    IQS_ASSIGN_OR_RETURN(size_t idx, input.schema().IndexOf(name));
    indices.push_back(idx);
    AttributeDef def = input.schema().attribute(idx);
    def.is_key = false;
    attrs.push_back(def);
  }
  IQS_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));
  Relation out(input.name() + "+proj", std::move(schema));
  std::set<Tuple> seen;
  for (const Tuple& t : input.rows()) {
    Tuple projected;
    for (size_t idx : indices) projected.Append(t.at(idx));
    if (distinct) {
      if (!seen.insert(projected).second) continue;
    }
    out.AppendUnchecked(std::move(projected));
  }
  return out;
}

Result<Relation> SortedUniqueProject(
    const Relation& input, const std::vector<std::string>& attribute_names,
    const std::vector<std::string>& sort_by) {
  IQS_ASSIGN_OR_RETURN(Relation out,
                       Project(input, attribute_names, /*distinct=*/true));
  IQS_RETURN_IF_ERROR(out.SortBy(sort_by));
  return out;
}

Relation Distinct(const Relation& input) {
  Relation out(input.name() + "+distinct", StripKeys(input.schema()));
  std::set<Tuple> seen;
  for (const Tuple& t : input.rows()) {
    if (seen.insert(t).second) out.AppendUnchecked(t);
  }
  return out;
}

Result<Relation> CrossProduct(const Relation& left, const Relation& right) {
  Relation ql = QualifyAttributes(left);
  Relation qr = QualifyAttributes(right);
  std::vector<AttributeDef> attrs = ql.schema().attributes();
  attrs.insert(attrs.end(), qr.schema().attributes().begin(),
               qr.schema().attributes().end());
  IQS_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));
  Relation out(left.name() + "x" + right.name(), std::move(schema));
  for (const Tuple& lt : ql.rows()) {
    for (const Tuple& rt : qr.rows()) {
      out.AppendUnchecked(Tuple::Concat(lt, rt));
    }
  }
  return out;
}

Result<Relation> EquiJoin(const Relation& left, const std::string& left_attr,
                          const Relation& right,
                          const std::string& right_attr) {
  IQS_ASSIGN_OR_RETURN(size_t li, left.schema().IndexOf(left_attr));
  IQS_ASSIGN_OR_RETURN(size_t ri, right.schema().IndexOf(right_attr));
  Relation ql = QualifyAttributes(left);
  Relation qr = QualifyAttributes(right);
  std::vector<AttributeDef> attrs = ql.schema().attributes();
  attrs.insert(attrs.end(), qr.schema().attributes().begin(),
               qr.schema().attributes().end());
  IQS_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));
  Relation out(left.name() + "*" + right.name(), std::move(schema));

  // Hash the smaller side; Value has no std::hash, so key on the canonical
  // text rendering per type (distinct values render distinctly).
  std::multimap<std::string, size_t> index;
  for (size_t r = 0; r < qr.size(); ++r) {
    const Value& v = qr.row(r).at(ri);
    if (v.is_null()) continue;
    index.emplace(v.ToString(), r);
  }
  for (const Tuple& lt : ql.rows()) {
    const Value& v = lt.at(li);
    if (v.is_null()) continue;
    auto [begin, end] = index.equal_range(v.ToString());
    for (auto it = begin; it != end; ++it) {
      // Guard against the rare text-rendering collision across numeric
      // types by re-checking equality on Values.
      if (qr.row(it->second).at(ri) != v) continue;
      out.AppendUnchecked(Tuple::Concat(lt, qr.row(it->second)));
    }
  }
  return out;
}

Result<Relation> Union(const Relation& left, const Relation& right) {
  IQS_RETURN_IF_ERROR(CheckUnionCompatible(left, right));
  Relation out(left.name() + "+union", StripKeys(left.schema()));
  std::set<Tuple> seen;
  for (const Relation* rel : {&left, &right}) {
    for (const Tuple& t : rel->rows()) {
      if (seen.insert(t).second) out.AppendUnchecked(t);
    }
  }
  return out;
}

Result<Relation> Difference(const Relation& left, const Relation& right) {
  IQS_RETURN_IF_ERROR(CheckUnionCompatible(left, right));
  std::set<Tuple> remove(right.rows().begin(), right.rows().end());
  Relation out(left.name() + "+diff", StripKeys(left.schema()));
  std::set<Tuple> seen;
  for (const Tuple& t : left.rows()) {
    if (remove.count(t) > 0) continue;
    if (seen.insert(t).second) out.AppendUnchecked(t);
  }
  return out;
}

Result<Relation> Intersect(const Relation& left, const Relation& right) {
  IQS_RETURN_IF_ERROR(CheckUnionCompatible(left, right));
  std::set<Tuple> keep(right.rows().begin(), right.rows().end());
  Relation out(left.name() + "+intersect", StripKeys(left.schema()));
  std::set<Tuple> seen;
  for (const Tuple& t : left.rows()) {
    if (keep.count(t) == 0) continue;
    if (seen.insert(t).second) out.AppendUnchecked(t);
  }
  return out;
}

Result<Value> AggregateMin(const Relation& input, const std::string& attr) {
  IQS_ASSIGN_OR_RETURN(auto domain, input.ActiveDomain(attr));
  return domain.first;
}

Result<Value> AggregateMax(const Relation& input, const std::string& attr) {
  IQS_ASSIGN_OR_RETURN(auto domain, input.ActiveDomain(attr));
  return domain.second;
}

Result<int64_t> AggregateCount(const Relation& input,
                               const std::string& attr) {
  if (attr == "*") return static_cast<int64_t>(input.size());
  IQS_ASSIGN_OR_RETURN(std::vector<Value> column, input.Column(attr));
  int64_t count = 0;
  for (const Value& v : column) {
    if (!v.is_null()) ++count;
  }
  return count;
}

Result<Relation> GroupCount(const Relation& input,
                            const std::string& group_attr) {
  IQS_ASSIGN_OR_RETURN(size_t idx, input.schema().IndexOf(group_attr));
  // Per-partition count maps merged by integer addition: associative and
  // lands in an ordered map, so the result is independent of partitioning.
  const std::vector<Tuple>& rows = input.rows();
  std::map<Value, int64_t> counts = exec::ParallelReduce<
      std::map<Value, int64_t>>(
      "exec.aggregate", rows.size(), 512, {},
      [&rows, idx](size_t begin, size_t end) {
        std::map<Value, int64_t> local;
        for (size_t i = begin; i < end; ++i) local[rows[i].at(idx)] += 1;
        return local;
      },
      [](std::map<Value, int64_t>* acc, std::map<Value, int64_t>&& part) {
        for (auto& [value, count] : part) (*acc)[value] += count;
      });
  AttributeDef group_def = input.schema().attribute(idx);
  group_def.is_key = false;
  IQS_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Create({group_def, {"count", ValueType::kInt, false}}));
  Relation out(input.name() + "+groupcount", std::move(schema));
  for (const auto& [value, count] : counts) {
    out.AppendUnchecked(Tuple({value, Value::Int(count)}));
  }
  return out;
}

// ---- Batch (columnar) execution -------------------------------------

namespace {

CompareOp MirrorOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;  // kEq/kNe are symmetric; kLike is never mirrored
  }
}

// In-order AND flattening; matches AndPredicate::Eval's left-to-right,
// short-circuiting leaf evaluation order.
void FlattenAnd(const PredicatePtr& pred, std::vector<PredicatePtr>* leaves) {
  if (const auto* a = dynamic_cast<const AndPredicate*>(pred.get())) {
    FlattenAnd(a->lhs(), leaves);
    FlattenAnd(a->rhs(), leaves);
    return;
  }
  leaves->push_back(pred);
}

bool ExtractLeaf(const Predicate& leaf, const ColumnarRelation& rel,
                 ColumnCondition* out) {
  const auto* cmp = dynamic_cast<const ComparePredicate*>(&leaf);
  if (cmp == nullptr) return false;
  const auto* lcol = dynamic_cast<const ColumnExpr*>(&cmp->lhs());
  const auto* rconst = dynamic_cast<const ConstantExpr*>(&cmp->rhs());
  const auto* lconst = dynamic_cast<const ConstantExpr*>(&cmp->lhs());
  const auto* rcol = dynamic_cast<const ColumnExpr*>(&cmp->rhs());
  size_t column = 0;
  if (lcol != nullptr && rconst != nullptr) {
    column = lcol->index();
    out->op = cmp->op();
    out->constant = rconst->value();
    out->constant_first = false;
  } else if (lconst != nullptr && rcol != nullptr) {
    column = rcol->index();
    out->op = MirrorOp(cmp->op());
    out->constant = lconst->value();
    out->constant_first = true;
  } else {
    return false;
  }
  if (column >= rel.schema().size()) return false;
  if (rel.column(column).storage() == Column::Storage::kMixed) return false;
  out->column = column;
  return true;
}

// Type-level comparability between a typed column and a non-null
// constant; kMixed is conservatively incomparable (per-row types are
// unknown up front).
bool StorageComparableWith(Column::Storage s, ValueType t) {
  switch (s) {
    case Column::Storage::kInt:
    case Column::Storage::kReal:
      return t == ValueType::kInt || t == ValueType::kReal;
    case Column::Storage::kString:
      return t == ValueType::kString;
    case Column::Storage::kDate:
      return t == ValueType::kDate;
    case Column::Storage::kMixed:
      return false;
  }
  return false;
}

// Could this condition surface a TypeError on some row? True exactly
// when every non-null entry errors (types are uniform per typed
// column), which is what makes conjunct-major evaluation reproduce the
// row-major first error.
bool ConditionMayError(const Column& col, const ColumnCondition& cond) {
  if (cond.constant.is_null()) return false;      // null compares are false
  if (cond.op == CompareOp::kLike) return false;  // LIKE never errors
  return !StorageComparableWith(col.storage(), cond.constant.type());
}

bool OpHolds(CompareOp op, int c) {
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
    case CompareOp::kLike:
      break;  // never reaches the three-way path
  }
  return false;
}

// Can block `b` contribute no rows to `cond`? Only consulted for
// conditions that cannot error (an error must be produced, never
// zone-skipped).
bool BlockPrunable(const ColumnarRelation& rel, const ColumnCondition& cond,
                   size_t b) {
  const BlockStats& st = rel.stats(cond.column, b);
  if (st.non_null == 0) return true;  // all-null: every compare is false
  if (cond.constant.is_null()) return true;
  if (cond.op == CompareOp::kLike) return false;
  const Value& c = cond.constant;
  switch (cond.op) {
    case CompareOp::kEq:
      return c.Compare(st.min) < 0 || c.Compare(st.max) > 0;
    case CompareOp::kNe:
      return st.min.Compare(c) == 0 && st.max.Compare(c) == 0;
    case CompareOp::kLt:
      return st.min.Compare(c) >= 0;
    case CompareOp::kLe:
      return st.min.Compare(c) > 0;
    case CompareOp::kGt:
      return st.max.Compare(c) <= 0;
    case CompareOp::kGe:
      return st.max.Compare(c) < 0;
    case CompareOp::kLike:
      break;
  }
  return false;
}

int Sign3(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }

// Keeps rows passing `test`: appends [first, last) survivors when
// building the selection, compacts `sel` in place when refining it.
template <typename Test>
void Sieve(bool build, size_t first, size_t last, Test&& test,
           std::vector<uint32_t>* sel) {
  if (build) {
    for (size_t r = first; r < last; ++r) {
      if (test(r)) sel->push_back(static_cast<uint32_t>(r));
    }
    return;
  }
  size_t w = 0;
  for (uint32_t r : *sel) {
    if (test(r)) (*sel)[w++] = r;
  }
  sel->resize(w);
}

// Typed three-way compare loops; `cmp(r)` must reproduce
// Value::Compare(column[r], constant) exactly.
template <typename Cmp>
void SieveTyped(CompareOp op, const std::vector<uint8_t>& nulls, Cmp cmp,
                bool build, size_t first, size_t last,
                std::vector<uint32_t>* sel) {
  Sieve(
      build, first, last,
      [&](size_t r) { return nulls[r] == 0 && OpHolds(op, cmp(r)); }, sel);
}

// Applies one condition over block rows [first, last): typed tight loop
// when the storage and constant types allow, generic ApplyCompare
// (with the original operand orientation) otherwise.
Status ApplyCondition(const ColumnarRelation& rel, const ColumnCondition& cond,
                      bool build, size_t first, size_t last,
                      std::vector<uint32_t>* sel) {
  const Column& col = rel.column(cond.column);
  const Value& cv = cond.constant;
  if (cv.is_null()) {
    // ApplyCompare against null is false for every row.
    sel->clear();
    return Status::Ok();
  }
  const std::vector<uint8_t>& nulls = col.null_mask();
  if (cond.op != CompareOp::kLike &&
      StorageComparableWith(col.storage(), cv.type())) {
    switch (col.storage()) {
      case Column::Storage::kInt: {
        const std::vector<int64_t>& v = col.ints();
        if (cv.type() == ValueType::kInt) {
          int64_t c = cv.AsInt();
          SieveTyped(
              cond.op, nulls,
              [&](size_t r) { return v[r] < c ? -1 : (v[r] > c ? 1 : 0); },
              build, first, last, sel);
        } else {
          double c = cv.AsReal();
          SieveTyped(
              cond.op, nulls,
              [&](size_t r) { return Sign3(static_cast<double>(v[r]) - c); },
              build, first, last, sel);
        }
        return Status::Ok();
      }
      case Column::Storage::kReal: {
        const std::vector<double>& v = col.reals();
        double c = cv.type() == ValueType::kInt
                       ? static_cast<double>(cv.AsInt())
                       : cv.AsReal();
        SieveTyped(
            cond.op, nulls, [&](size_t r) { return Sign3(v[r] - c); }, build,
            first, last, sel);
        return Status::Ok();
      }
      case Column::Storage::kString: {
        const std::vector<std::string>& v = col.strings();
        const std::string& c = cv.AsString();
        SieveTyped(
            cond.op, nulls,
            [&](size_t r) {
              int d = v[r].compare(c);
              return d < 0 ? -1 : (d > 0 ? 1 : 0);
            },
            build, first, last, sel);
        return Status::Ok();
      }
      case Column::Storage::kDate: {
        const std::vector<Date>& v = col.dates();
        int64_t c = cv.AsDate().ToEpochDays();
        SieveTyped(
            cond.op, nulls,
            [&](size_t r) {
              int64_t d = v[r].ToEpochDays();
              return d < c ? -1 : (d > c ? 1 : 0);
            },
            build, first, last, sel);
        return Status::Ok();
      }
      case Column::Storage::kMixed:
        break;  // unreachable: StorageComparableWith rejects kMixed
    }
  }
  // Generic path: kLike, incomparable types (which error on non-null
  // rows), and kMixed storage. Re-applies the source orientation so
  // TypeError text matches the row scan.
  CompareOp orig = cond.constant_first ? MirrorOp(cond.op) : cond.op;
  Status status = Status::Ok();
  Sieve(
      build, first, last,
      [&](size_t r) {
        if (!status.ok()) return false;
        Value v = col.Get(r);
        Result<bool> keep = cond.constant_first ? ApplyCompare(orig, cv, v)
                                                : ApplyCompare(orig, v, cv);
        if (!keep.ok()) {
          status = keep.status();
          return false;
        }
        return *keep;
      },
      sel);
  return status;
}

Result<std::vector<uint32_t>> EvalColumnarBlock(
    const ColumnarRelation& rel, const std::vector<ColumnCondition>& conds,
    const Predicate* residual, size_t first, size_t last) {
  std::vector<uint32_t> sel;
  bool built = false;
  for (const ColumnCondition& cond : conds) {
    IQS_RETURN_IF_ERROR(ApplyCondition(rel, cond, !built, first, last, &sel));
    built = true;
    // Every remaining row was rejected; later conjuncts (and the
    // residual) never see them in the row scan either.
    if (sel.empty()) return sel;
  }
  if (!built) {
    sel.reserve(last - first);
    for (size_t r = first; r < last; ++r) {
      sel.push_back(static_cast<uint32_t>(r));
    }
  }
  if (residual != nullptr && !sel.empty()) {
    size_t w = 0;
    for (uint32_t r : sel) {
      IQS_ASSIGN_OR_RETURN(bool keep, residual->Eval(rel.MaterializeRow(r)));
      if (keep) sel[w++] = r;
    }
    sel.resize(w);
  }
  return sel;
}

}  // namespace

ExtractedConjuncts ExtractColumnConditions(const PredicatePtr& pred,
                                           const ColumnarRelation& rel) {
  ExtractedConjuncts out;
  if (pred == nullptr) return out;
  std::vector<PredicatePtr> leaves;
  FlattenAnd(pred, &leaves);
  size_t i = 0;
  for (; i < leaves.size(); ++i) {
    ColumnCondition cond;
    if (!ExtractLeaf(*leaves[i], rel, &cond)) break;
    out.conditions.push_back(std::move(cond));
  }
  // Re-fold the remaining leaves left-associatively; AND leaf order (and
  // so evaluation order) is invariant under re-association.
  for (; i < leaves.size(); ++i) {
    out.residual = out.residual == nullptr
                       ? leaves[i]
                       : MakeAnd(std::move(out.residual), leaves[i]);
  }
  return out;
}

Result<std::vector<uint32_t>> ColumnarScan(
    const ColumnarRelation& rel,
    const std::vector<ColumnCondition>& conditions, const Predicate* residual,
    ColumnarScanStats* stats) {
  size_t blocks = rel.block_count();

  // Zone pruning may consult conjuncts only up to the first one that
  // could surface an error: that error must be produced, not skipped.
  size_t prunable_prefix = 0;
  for (const ColumnCondition& c : conditions) {
    if (ConditionMayError(rel.column(c.column), c)) break;
    ++prunable_prefix;
  }

  struct Acc {
    std::vector<uint32_t> rows;
    size_t pruned = 0;
  };
  using Part = Result<Acc>;
  Part merged = exec::ParallelReduce<Part>(
      "exec.scan.columnar", blocks, 1, Acc{},
      [&](size_t bfirst, size_t bend) -> Part {
        Acc local;
        for (size_t b = bfirst; b < bend; ++b) {
          // One governance check per 1024-row block — pruned or scanned,
          // the deadline is observed at block cadence.
          IQS_GOV_CHECKPOINT("columnar.scan");
          bool pruned = false;
          for (size_t i = 0; i < prunable_prefix && !pruned; ++i) {
            pruned = BlockPrunable(rel, conditions[i], b);
          }
          if (pruned) {
            ++local.pruned;
            continue;
          }
          auto [first, last] = rel.BlockRange(b);
          IQS_ASSIGN_OR_RETURN(
              std::vector<uint32_t> kept,
              EvalColumnarBlock(rel, conditions, residual, first, last));
          local.rows.insert(local.rows.end(), kept.begin(), kept.end());
        }
        return local;
      },
      [](Part* acc, Part&& part) {
        if (!acc->ok()) return;
        if (!part.ok()) {
          *acc = std::move(part);
          return;
        }
        Acc& dst = **acc;
        dst.rows.insert(dst.rows.end(), part->rows.begin(), part->rows.end());
        dst.pruned += part->pruned;
      });
  if (!merged.ok()) return merged.status();
  if (stats != nullptr) {
    stats->blocks_total = blocks;
    stats->blocks_pruned = merged->pruned;
  }
  return std::move(merged->rows);
}

}  // namespace iqs
