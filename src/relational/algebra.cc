#include "relational/algebra.h"

#include <map>
#include <set>

#include "common/string_util.h"
#include "exec/parallel.h"

namespace iqs {

namespace {

// True when `name` already contains a qualifier dot.
bool IsQualified(const std::string& name) {
  return name.find('.') != std::string::npos;
}

Status CheckUnionCompatible(const Relation& left, const Relation& right) {
  if (left.schema().size() != right.schema().size()) {
    return Status::TypeError("schemas have different arity: " +
                             left.name() + " vs " + right.name());
  }
  for (size_t i = 0; i < left.schema().size(); ++i) {
    if (left.schema().attribute(i).type != right.schema().attribute(i).type) {
      return Status::TypeError(
          "attribute " + std::to_string(i) + " type mismatch: " +
          std::string(ValueTypeName(left.schema().attribute(i).type)) +
          " vs " + ValueTypeName(right.schema().attribute(i).type));
    }
  }
  return Status::Ok();
}

Schema StripKeys(const Schema& schema) {
  std::vector<AttributeDef> attrs = schema.attributes();
  for (AttributeDef& a : attrs) a.is_key = false;
  return Schema(std::move(attrs));
}

}  // namespace

Relation QualifyAttributes(const Relation& input) {
  std::vector<AttributeDef> attrs = input.schema().attributes();
  for (AttributeDef& a : attrs) {
    if (!IsQualified(a.name)) a.name = input.name() + "." + a.name;
    a.is_key = false;
  }
  Relation out(input.name(), Schema(std::move(attrs)));
  for (const Tuple& t : input.rows()) out.AppendUnchecked(t);
  return out;
}

Result<Relation> Select(const Relation& input, const Predicate& pred) {
  // Partitioned scan: chunks evaluate the predicate independently into
  // local row vectors, concatenated in chunk order — the output row order
  // (and the first error reported) matches the serial scan exactly.
  const std::vector<Tuple>& rows = input.rows();
  using Part = Result<std::vector<Tuple>>;
  Part kept = exec::ParallelReduce<Part>(
      "exec.scan", rows.size(), 256, std::vector<Tuple>{},
      [&rows, &pred](size_t begin, size_t end) -> Part {
        std::vector<Tuple> local;
        for (size_t i = begin; i < end; ++i) {
          IQS_ASSIGN_OR_RETURN(bool keep, pred.Eval(rows[i]));
          if (keep) local.push_back(rows[i]);
        }
        return local;
      },
      [](Part* acc, Part&& part) {
        if (!acc->ok()) return;
        if (!part.ok()) {
          *acc = std::move(part);
          return;
        }
        std::vector<Tuple>& dst = **acc;
        for (Tuple& t : *part) dst.push_back(std::move(t));
      });
  if (!kept.ok()) return kept.status();
  Relation out(input.name() + "+sel", StripKeys(input.schema()));
  for (Tuple& t : *kept) out.AppendUnchecked(std::move(t));
  return out;
}

Result<Relation> Project(const Relation& input,
                         const std::vector<std::string>& attribute_names,
                         bool distinct) {
  std::vector<size_t> indices;
  std::vector<AttributeDef> attrs;
  indices.reserve(attribute_names.size());
  for (const std::string& name : attribute_names) {
    IQS_ASSIGN_OR_RETURN(size_t idx, input.schema().IndexOf(name));
    indices.push_back(idx);
    AttributeDef def = input.schema().attribute(idx);
    def.is_key = false;
    attrs.push_back(def);
  }
  IQS_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));
  Relation out(input.name() + "+proj", std::move(schema));
  std::set<Tuple> seen;
  for (const Tuple& t : input.rows()) {
    Tuple projected;
    for (size_t idx : indices) projected.Append(t.at(idx));
    if (distinct) {
      if (!seen.insert(projected).second) continue;
    }
    out.AppendUnchecked(std::move(projected));
  }
  return out;
}

Result<Relation> SortedUniqueProject(
    const Relation& input, const std::vector<std::string>& attribute_names,
    const std::vector<std::string>& sort_by) {
  IQS_ASSIGN_OR_RETURN(Relation out,
                       Project(input, attribute_names, /*distinct=*/true));
  IQS_RETURN_IF_ERROR(out.SortBy(sort_by));
  return out;
}

Relation Distinct(const Relation& input) {
  Relation out(input.name() + "+distinct", StripKeys(input.schema()));
  std::set<Tuple> seen;
  for (const Tuple& t : input.rows()) {
    if (seen.insert(t).second) out.AppendUnchecked(t);
  }
  return out;
}

Result<Relation> CrossProduct(const Relation& left, const Relation& right) {
  Relation ql = QualifyAttributes(left);
  Relation qr = QualifyAttributes(right);
  std::vector<AttributeDef> attrs = ql.schema().attributes();
  attrs.insert(attrs.end(), qr.schema().attributes().begin(),
               qr.schema().attributes().end());
  IQS_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));
  Relation out(left.name() + "x" + right.name(), std::move(schema));
  for (const Tuple& lt : ql.rows()) {
    for (const Tuple& rt : qr.rows()) {
      out.AppendUnchecked(Tuple::Concat(lt, rt));
    }
  }
  return out;
}

Result<Relation> EquiJoin(const Relation& left, const std::string& left_attr,
                          const Relation& right,
                          const std::string& right_attr) {
  IQS_ASSIGN_OR_RETURN(size_t li, left.schema().IndexOf(left_attr));
  IQS_ASSIGN_OR_RETURN(size_t ri, right.schema().IndexOf(right_attr));
  Relation ql = QualifyAttributes(left);
  Relation qr = QualifyAttributes(right);
  std::vector<AttributeDef> attrs = ql.schema().attributes();
  attrs.insert(attrs.end(), qr.schema().attributes().begin(),
               qr.schema().attributes().end());
  IQS_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));
  Relation out(left.name() + "*" + right.name(), std::move(schema));

  // Hash the smaller side; Value has no std::hash, so key on the canonical
  // text rendering per type (distinct values render distinctly).
  std::multimap<std::string, size_t> index;
  for (size_t r = 0; r < qr.size(); ++r) {
    const Value& v = qr.row(r).at(ri);
    if (v.is_null()) continue;
    index.emplace(v.ToString(), r);
  }
  for (const Tuple& lt : ql.rows()) {
    const Value& v = lt.at(li);
    if (v.is_null()) continue;
    auto [begin, end] = index.equal_range(v.ToString());
    for (auto it = begin; it != end; ++it) {
      // Guard against the rare text-rendering collision across numeric
      // types by re-checking equality on Values.
      if (qr.row(it->second).at(ri) != v) continue;
      out.AppendUnchecked(Tuple::Concat(lt, qr.row(it->second)));
    }
  }
  return out;
}

Result<Relation> Union(const Relation& left, const Relation& right) {
  IQS_RETURN_IF_ERROR(CheckUnionCompatible(left, right));
  Relation out(left.name() + "+union", StripKeys(left.schema()));
  std::set<Tuple> seen;
  for (const Relation* rel : {&left, &right}) {
    for (const Tuple& t : rel->rows()) {
      if (seen.insert(t).second) out.AppendUnchecked(t);
    }
  }
  return out;
}

Result<Relation> Difference(const Relation& left, const Relation& right) {
  IQS_RETURN_IF_ERROR(CheckUnionCompatible(left, right));
  std::set<Tuple> remove(right.rows().begin(), right.rows().end());
  Relation out(left.name() + "+diff", StripKeys(left.schema()));
  std::set<Tuple> seen;
  for (const Tuple& t : left.rows()) {
    if (remove.count(t) > 0) continue;
    if (seen.insert(t).second) out.AppendUnchecked(t);
  }
  return out;
}

Result<Relation> Intersect(const Relation& left, const Relation& right) {
  IQS_RETURN_IF_ERROR(CheckUnionCompatible(left, right));
  std::set<Tuple> keep(right.rows().begin(), right.rows().end());
  Relation out(left.name() + "+intersect", StripKeys(left.schema()));
  std::set<Tuple> seen;
  for (const Tuple& t : left.rows()) {
    if (keep.count(t) == 0) continue;
    if (seen.insert(t).second) out.AppendUnchecked(t);
  }
  return out;
}

Result<Value> AggregateMin(const Relation& input, const std::string& attr) {
  IQS_ASSIGN_OR_RETURN(auto domain, input.ActiveDomain(attr));
  return domain.first;
}

Result<Value> AggregateMax(const Relation& input, const std::string& attr) {
  IQS_ASSIGN_OR_RETURN(auto domain, input.ActiveDomain(attr));
  return domain.second;
}

Result<int64_t> AggregateCount(const Relation& input,
                               const std::string& attr) {
  if (attr == "*") return static_cast<int64_t>(input.size());
  IQS_ASSIGN_OR_RETURN(std::vector<Value> column, input.Column(attr));
  int64_t count = 0;
  for (const Value& v : column) {
    if (!v.is_null()) ++count;
  }
  return count;
}

Result<Relation> GroupCount(const Relation& input,
                            const std::string& group_attr) {
  IQS_ASSIGN_OR_RETURN(size_t idx, input.schema().IndexOf(group_attr));
  // Per-partition count maps merged by integer addition: associative and
  // lands in an ordered map, so the result is independent of partitioning.
  const std::vector<Tuple>& rows = input.rows();
  std::map<Value, int64_t> counts = exec::ParallelReduce<
      std::map<Value, int64_t>>(
      "exec.aggregate", rows.size(), 512, {},
      [&rows, idx](size_t begin, size_t end) {
        std::map<Value, int64_t> local;
        for (size_t i = begin; i < end; ++i) local[rows[i].at(idx)] += 1;
        return local;
      },
      [](std::map<Value, int64_t>* acc, std::map<Value, int64_t>&& part) {
        for (auto& [value, count] : part) (*acc)[value] += count;
      });
  AttributeDef group_def = input.schema().attribute(idx);
  group_def.is_key = false;
  IQS_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Create({group_def, {"count", ValueType::kInt, false}}));
  Relation out(input.name() + "+groupcount", std::move(schema));
  for (const auto& [value, count] : counts) {
    out.AppendUnchecked(Tuple({value, Value::Int(count)}));
  }
  return out;
}

}  // namespace iqs
