#include "relational/database.h"

#include <algorithm>

#include "common/string_util.h"

namespace iqs {

Result<Relation*> Database::CreateRelation(const std::string& name,
                                           Schema schema) {
  if (IsSysRelationName(name)) {
    return Status::InvalidArgument(
        "cannot create '" + name +
        "': the sys. schema is reserved for virtual catalog relations");
  }
  std::string key = ToLower(name);
  if (relations_.count(key) > 0) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  auto relation = std::make_unique<Relation>(name, std::move(schema));
  Relation* ptr = relation.get();
  relations_[key] = std::move(relation);
  creation_order_.push_back(name);
  BumpEpoch();
  return ptr;
}

Status Database::AddRelation(Relation relation) {
  if (IsSysRelationName(relation.name())) {
    return Status::InvalidArgument(
        "cannot add '" + relation.name() +
        "': the sys. schema is reserved for virtual catalog relations");
  }
  std::string key = ToLower(relation.name());
  if (relations_.count(key) > 0) {
    return Status::AlreadyExists("relation '" + relation.name() +
                                 "' already exists");
  }
  creation_order_.push_back(relation.name());
  relations_[key] = std::make_unique<Relation>(std::move(relation));
  BumpEpoch();
  return Status::Ok();
}

Result<const Relation*> Database::Get(const std::string& name) const {
  auto it = relations_.find(ToLower(name));
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return const_cast<const Relation*>(it->second.get());
}

Result<Relation*> Database::GetMutable(const std::string& name) {
  auto it = relations_.find(ToLower(name));
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  // Handing out mutable access may change rows underneath any snapshot
  // index or cached answer; drop the indexes and retire the epoch.
  InvalidateIndexes(it->first);
  BumpEpoch();
  return it->second.get();
}

bool Database::Contains(const std::string& name) const {
  return relations_.count(ToLower(name)) > 0;
}

Status Database::Drop(const std::string& name) {
  auto it = relations_.find(ToLower(name));
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  std::string stored_name = it->second->name();
  InvalidateIndexes(it->first);
  relations_.erase(it);
  creation_order_.erase(
      std::remove_if(creation_order_.begin(), creation_order_.end(),
                     [&](const std::string& n) {
                       return EqualsIgnoreCase(n, stored_name);
                     }),
      creation_order_.end());
  BumpEpoch();
  return Status::Ok();
}

std::vector<std::string> Database::RelationNames() const {
  return creation_order_;
}

void Database::InvalidateIndexes(const std::string& lower_name) {
  auto it = indexes_.lower_bound({lower_name, ""});
  while (it != indexes_.end() && it->first.first == lower_name) {
    it = indexes_.erase(it);
  }
}

Status Database::CreateIndex(const std::string& relation,
                             const std::string& attribute) {
  auto it = relations_.find(ToLower(relation));
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + relation + "'");
  }
  IQS_ASSIGN_OR_RETURN(SortedIndex index,
                       SortedIndex::Build(*it->second, attribute));
  indexes_.insert_or_assign({it->first, ToLower(attribute)},
                            std::move(index));
  return Status::Ok();
}

const SortedIndex* Database::GetIndex(const std::string& relation,
                                      const std::string& attribute) const {
  auto it = indexes_.find({ToLower(relation), ToLower(attribute)});
  return it == indexes_.end() ? nullptr : &it->second;
}

std::vector<std::string> Database::IndexedAttributes(
    const std::string& relation) const {
  std::vector<std::string> out;
  std::string key = ToLower(relation);
  for (const auto& [pair, index] : indexes_) {
    if (pair.first == key) out.push_back(index.attribute());
  }
  return out;
}

Result<std::shared_ptr<const ColumnarRelation>> Database::ColumnarSnapshot(
    const std::string& name) const {
  IQS_ASSIGN_OR_RETURN(const Relation* rel, Get(name));
  // Read the epoch before transposing: if a mutation lands mid-build it
  // bumps the epoch, so the entry cached under `at_epoch` is retired at
  // the next lookup rather than served for the new contents.
  uint64_t at_epoch = epoch();
  std::string key = ToLower(name);
  {
    std::lock_guard<std::mutex> lock(columnar_mu_);
    auto it = columnar_.find(key);
    if (it != columnar_.end() && it->second.epoch == at_epoch) {
      return it->second.snapshot;
    }
  }
  IQS_ASSIGN_OR_RETURN(ColumnarRelation transposed,
                       ColumnarRelation::Transpose(*rel));
  auto snapshot =
      std::make_shared<const ColumnarRelation>(std::move(transposed));
  std::lock_guard<std::mutex> lock(columnar_mu_);
  ColumnarEntry& entry = columnar_[key];
  if (entry.snapshot == nullptr || entry.epoch != at_epoch) {
    entry.epoch = at_epoch;
    entry.snapshot = std::move(snapshot);
  }
  return entry.snapshot;
}

void Database::RegisterVirtualProvider(
    const VirtualRelationProvider* provider) {
  for (const std::string& name : provider->RelationNames()) {
    std::string key = ToLower(name);
    if (virtual_relations_.count(key) == 0) virtual_order_.push_back(name);
    virtual_relations_[key] = {provider, name};
  }
}

bool Database::IsVirtual(const std::string& name) const {
  return virtual_relations_.count(ToLower(name)) > 0;
}

Result<Relation> Database::MaterializeVirtual(const std::string& name) const {
  auto it = virtual_relations_.find(ToLower(name));
  if (it == virtual_relations_.end()) {
    return Status::NotFound("no virtual relation named '" + name + "'");
  }
  return it->second.first->Materialize(it->second.second);
}

std::vector<std::string> Database::VirtualRelationNames() const {
  return virtual_order_;
}

}  // namespace iqs
