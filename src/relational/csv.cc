#include "relational/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace iqs {

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string RelationToCsv(const Relation& relation) {
  std::string out;
  const Schema& schema = relation.schema();
  for (size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) out += ",";
    out += QuoteField(schema.attribute(i).name);
  }
  out += "\n";
  for (const Tuple& t : relation.rows()) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out += ",";
      out += QuoteField(t.at(i).ToString());
    }
    out += "\n";
  }
  return out;
}

Result<std::vector<std::vector<std::string>>> ParseCsvText(
    const std::string& csv) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;
  auto end_field = [&] {
    row.push_back(field);
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(row);
    row.clear();
  };
  while (i < csv.size()) {
    char c = csv[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < csv.size() && csv[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    switch (c) {
      case '"':
        if (field.empty() && !field_started) {
          in_quotes = true;
          field_started = true;
        } else {
          return Status::ParseError("unexpected quote mid-field at offset " +
                                    std::to_string(i));
        }
        ++i;
        break;
      case ',':
        end_field();
        ++i;
        break;
      case '\r':
        ++i;
        break;
      case '\n':
        end_row();
        ++i;
        break;
      default:
        field += c;
        field_started = true;
        ++i;
        break;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted field");
  }
  if (field_started || !row.empty() || !field.empty()) {
    end_row();
  }
  return rows;
}

Result<Relation> RelationFromCsv(const std::string& name, const Schema& schema,
                                 const std::string& csv) {
  IQS_ASSIGN_OR_RETURN(auto rows, ParseCsvText(csv));
  if (rows.empty()) {
    return Status::ParseError("CSV is empty; expected a header row");
  }
  const std::vector<std::string>& header = rows[0];
  if (header.size() != schema.size()) {
    return Status::ParseError(
        "CSV header arity " + std::to_string(header.size()) +
        " does not match schema arity " + std::to_string(schema.size()));
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (!EqualsIgnoreCase(header[i], schema.attribute(i).name)) {
      return Status::ParseError("CSV header column " + std::to_string(i) +
                                " is '" + header[i] + "', expected '" +
                                schema.attribute(i).name + "'");
    }
  }
  Relation out(name, schema);
  for (size_t r = 1; r < rows.size(); ++r) {
    IQS_RETURN_IF_ERROR(out.InsertText(rows[r]));
  }
  return out;
}

Status WriteCsvFile(const Relation& relation, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  file << RelationToCsv(relation);
  if (!file) {
    return Status::Internal("write to '" + path + "' failed");
  }
  return Status::Ok();
}

Result<Relation> ReadCsvFile(const std::string& name, const Schema& schema,
                             const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  Result<Relation> parsed = RelationFromCsv(name, schema, buffer.str());
  if (!parsed.ok()) {
    // Parse errors name the file: "row 3 ..." alone is useless when a
    // whole system directory of CSVs is being loaded.
    return Status(parsed.status().code(),
                  parsed.status().message() + " (file '" + path + "')");
  }
  return parsed;
}

}  // namespace iqs
