#ifndef IQS_RELATIONAL_TUPLE_H_
#define IQS_RELATIONAL_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "relational/value.h"

namespace iqs {

// A row of values. Tuples are plain data; conformance to a Schema is
// checked where tuples enter a Relation.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  // Concatenation of two tuples, used by joins.
  static Tuple Concat(const Tuple& left, const Tuple& right);

  // Pipe-separated rendering: "SSBN730|Rhode Island|0101".
  std::string ToString() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }

  // Lexicographic order by the value total order; usable in std::sort/map.
  friend bool operator<(const Tuple& a, const Tuple& b);

 private:
  std::vector<Value> values_;
};

}  // namespace iqs

#endif  // IQS_RELATIONAL_TUPLE_H_
