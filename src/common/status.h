#ifndef IQS_COMMON_STATUS_H_
#define IQS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace iqs {

// Error categories used throughout the library. The set is deliberately
// small; most call sites only distinguish Ok from not-Ok and surface the
// message to the user.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // named relation / attribute / type does not exist
  kAlreadyExists,     // duplicate definition
  kParseError,        // SQL or KER DDL text did not parse
  kTypeError,         // value/domain mismatch
  kConstraintViolation,  // a with-constraint rejected a tuple
  kInternal,          // invariant breach inside the library
  kUnavailable,       // transient fault; safe to retry (see fault/degrade.h)
  kCorruption,        // persisted bytes failed an integrity check; not
                      // retryable — recovery picks another snapshot
  kOverloaded,        // admission control shed the request; retry later
                      // against a less-loaded server (see src/net/)
  kDeadlineExceeded,  // the query overran its deadline and was
                      // cooperatively unwound (see src/exec/exec_context.h)
  kCancelled,         // an explicit cancel (wire verb, session teardown,
                      // or watchdog) unwound the query
  kResourceExhausted, // the query's memory budget was exceeded; the
                      // partial work was discarded and the arena freed
};

// Returns a short stable name such as "NotFound" for diagnostics.
const char* StatusCodeName(StatusCode code);

// Status carries the outcome of an operation that can fail. The library
// does not use exceptions (see DESIGN.md); every fallible API returns a
// Status or a Result<T>. [[nodiscard]] so a dropped error is a compile
// warning — call sites that genuinely don't care must say so with (void).
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status);

// Propagates a non-OK status to the caller. Usable in any function that
// returns Status or Result<T> (Result is constructible from Status).
#define IQS_RETURN_IF_ERROR(expr)                    \
  do {                                               \
    ::iqs::Status iqs_status_ = (expr);              \
    if (!iqs_status_.ok()) return iqs_status_;       \
  } while (0)

}  // namespace iqs

#endif  // IQS_COMMON_STATUS_H_
