#ifndef IQS_COMMON_CRC32C_H_
#define IQS_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace iqs {

// CRC32C (Castagnoli polynomial, the checksum used by iSCSI, ext4 and
// LevelDB-style manifests) over arbitrary bytes. Snapshot footers store
// one per persisted file so LoadSystem can verify every byte it is
// about to parse (DESIGN.md §10). Software table-driven implementation;
// deterministic across platforms.

// Extends a running checksum (`crc` from a previous call, or 0 for a
// fresh run) with `n` more bytes.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

inline uint32_t Crc32c(const std::string& bytes) {
  return Crc32c(bytes.data(), bytes.size());
}

}  // namespace iqs

#endif  // IQS_COMMON_CRC32C_H_
