#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace iqs {

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string PadRight(std::string_view s, size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string FormatDouble(double d) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", d);
  return buf;
}

}  // namespace iqs
