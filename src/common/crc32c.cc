#include "common/crc32c.h"

namespace iqs {

namespace {

// Reflected CRC32C polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (kPoly ^ (crc >> 1)) : (crc >> 1);
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  static const Crc32cTable table;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table.entries[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace iqs
