#ifndef IQS_COMMON_RESULT_H_
#define IQS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace iqs {

// Result<T> holds either a value of type T or a non-OK Status, in the style
// of absl::StatusOr / arrow::Result. Accessing the value of an errored
// Result is a programming error and asserts.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value or from an error Status keeps call
  // sites terse: `return value;` / `return Status::NotFound(...)`.
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value
};

// Evaluates `expr` (a Result<T>), propagating its error or assigning the
// unwrapped value to `lhs`. `lhs` may declare a variable:
//   IQS_ASSIGN_OR_RETURN(auto rel, db.Get("SUBMARINE"));
#define IQS_ASSIGN_OR_RETURN(lhs, expr)                          \
  IQS_ASSIGN_OR_RETURN_IMPL_(IQS_CONCAT_(iqs_result_, __LINE__), \
                             lhs, expr)

#define IQS_CONCAT_INNER_(a, b) a##b
#define IQS_CONCAT_(a, b) IQS_CONCAT_INNER_(a, b)
#define IQS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

}  // namespace iqs

#endif  // IQS_COMMON_RESULT_H_
