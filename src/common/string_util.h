#ifndef IQS_COMMON_STRING_UTIL_H_
#define IQS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace iqs {

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// Splits `s` on `sep`, keeping empty fields. Split("a,,b", ',') ->
// {"a", "", "b"}. Split("", ',') -> {""}.
std::vector<std::string> Split(std::string_view s, char sep);

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// ASCII-only case conversions (locale independent).
std::string ToUpper(std::string_view s);
std::string ToLower(std::string_view s);

// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Left-pads (or truncates nothing) `s` with spaces to `width`.
std::string PadRight(std::string_view s, size_t width);

// Renders a double without trailing zeros ("3.5", "42").
std::string FormatDouble(double d);

}  // namespace iqs

#endif  // IQS_COMMON_STRING_UTIL_H_
