#include "rules/rule_relation.h"

#include <map>
#include <set>

#include "common/string_util.h"

namespace iqs {

namespace {

constexpr double kNegInfCode = -1.0;
constexpr double kPosInfCode = -2.0;

struct AttrKey {
  std::string name;   // qualified attribute name as written in clauses
  ValueType type = ValueType::kString;

  bool operator<(const AttrKey& other) const {
    if (name != other.name) return name < other.name;
    return static_cast<int>(type) < static_cast<int>(other.type);
  }
};

ValueType ClauseValueType(const Clause& clause) {
  if (clause.interval().lo().has_value()) {
    return clause.interval().lo()->type();
  }
  if (clause.interval().hi().has_value()) {
    return clause.interval().hi()->type();
  }
  return ValueType::kString;
}

}  // namespace

Schema RuleRelSchema() {
  return Schema({{"RuleNo", ValueType::kInt, false},
                 {"Role", ValueType::kString, false},
                 {"Lvalue", ValueType::kReal, false},
                 {"Att_no", ValueType::kInt, false},
                 {"Uvalue", ValueType::kReal, false}});
}

Schema AttrMapSchema() {
  return Schema({{"Att_no", ValueType::kInt, false},
                 {"Value", ValueType::kReal, false},
                 {"RealValue", ValueType::kString, false}});
}

Schema AttrTableSchema() {
  return Schema({{"Att_no", ValueType::kInt, false},
                 {"AttName", ValueType::kString, false},
                 {"AttType", ValueType::kString, false}});
}

Schema RuleMetaSchema() {
  return Schema({{"RuleNo", ValueType::kInt, false},
                 {"Scheme", ValueType::kString, false},
                 {"SourceRel", ValueType::kString, false},
                 {"Support", ValueType::kInt, false},
                 {"IsaType", ValueType::kString, false},
                 {"IsaVar", ValueType::kString, false},
                 {"Complete", ValueType::kInt, false}});
}

Result<RuleRelations> EncodeRules(const RuleSet& rules) {
  // Pass 1: collect, per attribute, the set of bound values used anywhere.
  std::map<AttrKey, std::set<Value>> values_by_attr;
  auto collect = [&](const Clause& clause) {
    AttrKey key{clause.attribute(), ClauseValueType(clause)};
    auto& bucket = values_by_attr[key];  // ensure attribute registers even
                                         // for fully unbounded clauses
    if (clause.interval().lo().has_value()) {
      bucket.insert(*clause.interval().lo());
    }
    if (clause.interval().hi().has_value()) {
      bucket.insert(*clause.interval().hi());
    }
  };
  for (const Rule& rule : rules.rules()) {
    for (const Clause& c : rule.lhs) collect(c);
    collect(rule.rhs.clause);
  }

  // Assign attribute numbers in name order and value codes in ascending
  // value order (1.00, 2.00, ... as in the paper's example).
  std::map<AttrKey, int64_t> attr_no;
  std::map<AttrKey, std::map<Value, double>> code_of;
  int64_t next_attr = 0;
  RuleRelations out{Relation(kRuleRelName, RuleRelSchema()),
                    Relation(kAttrMapName, AttrMapSchema()),
                    Relation(kAttrTableName, AttrTableSchema()),
                    Relation(kRuleMetaName, RuleMetaSchema())};
  for (const auto& [key, values] : values_by_attr) {
    attr_no[key] = next_attr;
    out.attr_table.AppendUnchecked(Tuple({Value::Int(next_attr),
                                          Value::String(key.name),
                                          Value::String(ValueTypeName(key.type))}));
    double code = 1.0;
    for (const Value& v : values) {
      code_of[key][v] = code;
      out.attr_map.AppendUnchecked(Tuple({Value::Int(next_attr),
                                          Value::Real(code),
                                          Value::String(v.ToString())}));
      code += 1.0;
    }
    ++next_attr;
  }

  // Pass 2: emit one RULE_REL row per clause plus one RULE_META row per
  // rule.
  auto emit_clause = [&](int64_t rule_no, const char* role,
                         const Clause& clause) -> Status {
    AttrKey key{clause.attribute(), ClauseValueType(clause)};
    auto it = attr_no.find(key);
    if (it == attr_no.end()) {
      return Status::Internal("attribute '" + clause.attribute() +
                              "' missing from encoding tables");
    }
    if (clause.interval().lo_open() || clause.interval().hi_open()) {
      return Status::InvalidArgument(
          "rule relations encode closed intervals only; clause " +
          clause.ToConditionString() + " has an open bound");
    }
    double lo_code = kNegInfCode;
    double hi_code = kPosInfCode;
    if (clause.interval().lo().has_value()) {
      lo_code = code_of[key][*clause.interval().lo()];
    }
    if (clause.interval().hi().has_value()) {
      hi_code = code_of[key][*clause.interval().hi()];
    }
    out.rule_rel.AppendUnchecked(Tuple({Value::Int(rule_no),
                                        Value::String(role),
                                        Value::Real(lo_code),
                                        Value::Int(it->second),
                                        Value::Real(hi_code)}));
    return Status::Ok();
  };

  for (const Rule& rule : rules.rules()) {
    for (const Clause& c : rule.lhs) {
      IQS_RETURN_IF_ERROR(emit_clause(rule.id, "L", c));
    }
    IQS_RETURN_IF_ERROR(emit_clause(rule.id, "R", rule.rhs.clause));
    out.rule_meta.AppendUnchecked(
        Tuple({Value::Int(rule.id), Value::String(rule.scheme),
               Value::String(rule.source_relation), Value::Int(rule.support),
               Value::String(rule.rhs.isa_type),
               Value::String(rule.rhs.isa_variable),
               Value::Int(rule.family_complete ? 1 : 0)}));
  }
  return out;
}

Result<RuleSet> DecodeRules(const RuleRelations& relations) {
  // Attribute tables.
  struct AttrInfo {
    std::string name;
    ValueType type = ValueType::kString;
    std::map<double, std::string> value_of_code;
  };
  std::map<int64_t, AttrInfo> attrs;
  for (const Tuple& t : relations.attr_table.rows()) {
    AttrInfo info;
    info.name = t.at(1).AsString();
    IQS_ASSIGN_OR_RETURN(info.type, ValueTypeFromName(t.at(2).AsString()));
    attrs[t.at(0).AsInt()] = std::move(info);
  }
  for (const Tuple& t : relations.attr_map.rows()) {
    auto it = attrs.find(t.at(0).AsInt());
    if (it == attrs.end()) {
      return Status::InvalidArgument("ATTR_MAP references unknown Att_no " +
                                     t.at(0).ToString());
    }
    it->second.value_of_code[t.at(1).AsReal()] = t.at(2).AsString();
  }

  auto decode_clause = [&](const Tuple& t) -> Result<Clause> {
    auto it = attrs.find(t.at(3).AsInt());
    if (it == attrs.end()) {
      return Status::InvalidArgument("RULE_REL references unknown Att_no " +
                                     t.at(3).ToString());
    }
    const AttrInfo& info = it->second;
    auto decode_bound = [&](double code) -> Result<std::optional<Value>> {
      if (code == kNegInfCode || code == kPosInfCode) {
        return std::optional<Value>();
      }
      auto vit = info.value_of_code.find(code);
      if (vit == info.value_of_code.end()) {
        return Status::InvalidArgument("no ATTR_MAP entry for code " +
                                       FormatDouble(code) + " of attribute " +
                                       info.name);
      }
      IQS_ASSIGN_OR_RETURN(Value v, Value::FromText(info.type, vit->second));
      return std::optional<Value>(std::move(v));
    };
    IQS_ASSIGN_OR_RETURN(std::optional<Value> lo,
                         decode_bound(t.at(2).AsReal()));
    IQS_ASSIGN_OR_RETURN(std::optional<Value> hi,
                         decode_bound(t.at(4).AsReal()));
    if (lo.has_value() && hi.has_value()) {
      IQS_ASSIGN_OR_RETURN(Interval iv, Interval::Closed(*lo, *hi));
      return Clause(info.name, std::move(iv));
    }
    if (lo.has_value()) return Clause(info.name, Interval::AtLeast(*lo));
    if (hi.has_value()) return Clause(info.name, Interval::AtMost(*hi));
    return Clause(info.name, Interval::All());
  };

  // Group clauses by rule number.
  std::map<int64_t, Rule> by_no;
  for (const Tuple& t : relations.rule_rel.rows()) {
    int64_t no = t.at(0).AsInt();
    const std::string& role = t.at(1).AsString();
    IQS_ASSIGN_OR_RETURN(Clause clause, decode_clause(t));
    Rule& rule = by_no[no];
    rule.id = static_cast<int>(no);
    if (EqualsIgnoreCase(role, "L")) {
      rule.lhs.push_back(std::move(clause));
    } else if (EqualsIgnoreCase(role, "R")) {
      rule.rhs.clause = std::move(clause);
    } else {
      return Status::InvalidArgument("RULE_REL row has unknown Role '" +
                                     role + "'");
    }
  }
  for (const Tuple& t : relations.rule_meta.rows()) {
    auto it = by_no.find(t.at(0).AsInt());
    if (it == by_no.end()) {
      return Status::InvalidArgument("RULE_META references unknown RuleNo " +
                                     t.at(0).ToString());
    }
    it->second.scheme = t.at(1).AsString();
    it->second.source_relation = t.at(2).AsString();
    it->second.support = t.at(3).AsInt();
    it->second.rhs.isa_type = t.at(4).AsString();
    it->second.rhs.isa_variable = t.at(5).AsString();
    it->second.family_complete = !t.at(6).is_null() && t.at(6).AsInt() != 0;
  }

  RuleSet out;
  for (auto& [no, rule] : by_no) {
    out.Add(std::move(rule));
  }
  return out;
}

Status StoreRuleRelations(const RuleRelations& relations, Database* db) {
  for (const Relation* rel : {&relations.rule_rel, &relations.attr_map,
                              &relations.attr_table, &relations.rule_meta}) {
    if (db->Contains(rel->name())) {
      IQS_RETURN_IF_ERROR(db->Drop(rel->name()));
    }
    IQS_RETURN_IF_ERROR(db->AddRelation(*rel));
  }
  return Status::Ok();
}

Result<RuleRelations> LoadRuleRelations(const Database& db) {
  IQS_ASSIGN_OR_RETURN(const Relation* rule_rel, db.Get(kRuleRelName));
  IQS_ASSIGN_OR_RETURN(const Relation* attr_map, db.Get(kAttrMapName));
  IQS_ASSIGN_OR_RETURN(const Relation* attr_table, db.Get(kAttrTableName));
  IQS_ASSIGN_OR_RETURN(const Relation* rule_meta, db.Get(kRuleMetaName));
  return RuleRelations{*rule_rel, *attr_map, *attr_table, *rule_meta};
}

}  // namespace iqs
