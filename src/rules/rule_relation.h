#ifndef IQS_RULES_RULE_RELATION_H_
#define IQS_RULES_RULE_RELATION_H_

#include "relational/database.h"
#include "relational/relation.h"
#include "rules/rule.h"

namespace iqs {

// Rule relations (paper §5.2.2): induced rules are stored *in the
// database* as meta-relations so that "a database and its associated rule
// relations can be relocated together".
//
// The paper's representation is reproduced exactly:
//   RULE_REL  = (RuleNo, Role, Lvalue, Att_no, Uvalue)
//     one row per clause; Role is "L" (premise) or "R" (consequence);
//     Lvalue/Uvalue are real-number codes into the value map.
//   ATTR_MAP  = (Att_no, Value, RealValue)
//     maps each attribute's codes (1.00, 2.00, ... assigned in ascending
//     value order, so codes preserve the attribute order) back to the
//     real value's text.
// The paper relies on an INGRES system table to map Att_no to attribute
// names/types; our substitute is an explicit third relation:
//   ATTR_TABLE = (Att_no, AttName, AttType)
// And one extension relation carries per-rule metadata the inference
// engine uses (scheme, support, the isa reading):
//   RULE_META = (RuleNo, Scheme, SourceRel, Support, IsaType, IsaVar)
struct RuleRelations {
  Relation rule_rel;
  Relation attr_map;
  Relation attr_table;
  Relation rule_meta;
};

// Conventional relation names used when storing into a Database.
inline constexpr const char kRuleRelName[] = "RULE_REL";
inline constexpr const char kAttrMapName[] = "ATTR_MAP";
inline constexpr const char kAttrTableName[] = "ATTR_TABLE";
inline constexpr const char kRuleMetaName[] = "RULE_META";

// Schemas of the four meta-relations.
Schema RuleRelSchema();
Schema AttrMapSchema();
Schema AttrTableSchema();
Schema RuleMetaSchema();

// Encodes `rules` into the meta-relation representation. Unbounded clause
// ends (possible for hand-written rules; induced rules are always closed)
// are encoded with the sentinel codes -1.0 (-inf) and -2.0 (+inf).
Result<RuleRelations> EncodeRules(const RuleSet& rules);

// Decodes the meta-relations back into a RuleSet. Rules come back in
// RuleNo order with identical clauses, scheme, support and isa reading:
// Decode(Encode(s)) == s.
Result<RuleSet> DecodeRules(const RuleRelations& relations);

// Stores the four meta-relations into `db` under the conventional names
// (dropping any previous versions), or loads them back.
Status StoreRuleRelations(const RuleRelations& relations, Database* db);
Result<RuleRelations> LoadRuleRelations(const Database& db);

}  // namespace iqs

#endif  // IQS_RULES_RULE_RELATION_H_
