#include "rules/interval.h"

namespace iqs {

Result<Interval> Interval::Closed(Value lo, Value hi) {
  if (!lo.ComparableWith(hi)) {
    return Status::TypeError("interval bounds are not comparable");
  }
  if (lo > hi) {
    return Status::InvalidArgument("interval lower bound " + lo.ToString() +
                                   " exceeds upper bound " + hi.ToString());
  }
  return Interval(std::move(lo), false, std::move(hi), false);
}

Interval Interval::Point(Value v) {
  Value copy = v;
  return Interval(std::move(copy), false, std::move(v), false);
}

Interval Interval::AtLeast(Value lo, bool open) {
  return Interval(std::move(lo), open, std::nullopt, false);
}

Interval Interval::AtMost(Value hi, bool open) {
  return Interval(std::nullopt, false, std::move(hi), open);
}

Result<Interval> Interval::FromCompare(CompareOp op, Value constant) {
  switch (op) {
    case CompareOp::kEq:
      return Point(std::move(constant));
    case CompareOp::kLt:
      return AtMost(std::move(constant), /*open=*/true);
    case CompareOp::kLe:
      return AtMost(std::move(constant), /*open=*/false);
    case CompareOp::kGt:
      return AtLeast(std::move(constant), /*open=*/true);
    case CompareOp::kGe:
      return AtLeast(std::move(constant), /*open=*/false);
    case CompareOp::kNe:
      return Status::InvalidArgument(
          "'!=' does not describe a single interval");
    case CompareOp::kLike:
      return Status::InvalidArgument(
          "LIKE does not describe a single interval");
  }
  return Status::Internal("unreachable compare op");
}

bool Interval::IsPoint() const {
  return lo_.has_value() && hi_.has_value() && *lo_ == *hi_ && !lo_open_ &&
         !hi_open_;
}

bool Interval::IsEmpty() const {
  if (!lo_.has_value() || !hi_.has_value()) return false;
  int c = lo_->Compare(*hi_);
  if (c > 0) return true;
  if (c == 0) return lo_open_ || hi_open_;
  return false;
}

bool Interval::Contains(const Value& v) const {
  if (v.is_null()) return false;
  if (lo_.has_value()) {
    int c = v.Compare(*lo_);
    if (c < 0 || (c == 0 && lo_open_)) return false;
  }
  if (hi_.has_value()) {
    int c = v.Compare(*hi_);
    if (c > 0 || (c == 0 && hi_open_)) return false;
  }
  return true;
}

namespace {

// Compares two lower bounds: negative when `a` admits strictly more values
// (is further left) than `b`. nullopt = -inf.
int CompareLowerBounds(const std::optional<Value>& a, bool a_open,
                       const std::optional<Value>& b, bool b_open) {
  if (!a.has_value() && !b.has_value()) return 0;
  if (!a.has_value()) return -1;
  if (!b.has_value()) return 1;
  int c = a->Compare(*b);
  if (c != 0) return c;
  if (a_open == b_open) return 0;
  return a_open ? 1 : -1;  // closed bound admits the endpoint => further left
}

// Symmetric for upper bounds: positive when `a` admits more values (is
// further right) than `b`. nullopt = +inf.
int CompareUpperBounds(const std::optional<Value>& a, bool a_open,
                       const std::optional<Value>& b, bool b_open) {
  if (!a.has_value() && !b.has_value()) return 0;
  if (!a.has_value()) return 1;
  if (!b.has_value()) return -1;
  int c = a->Compare(*b);
  if (c != 0) return c;
  if (a_open == b_open) return 0;
  return a_open ? -1 : 1;  // closed bound admits the endpoint => further right
}

}  // namespace

bool Interval::ContainsInterval(const Interval& other) const {
  if (other.IsEmpty()) return true;
  if (IsEmpty()) return false;
  // this.lo must be <= other.lo and this.hi >= other.hi in the bound order.
  if (CompareLowerBounds(lo_, lo_open_, other.lo_, other.lo_open_) > 0) {
    return false;
  }
  if (CompareUpperBounds(hi_, hi_open_, other.hi_, other.hi_open_) < 0) {
    return false;
  }
  return true;
}

Interval Interval::Intersection(const Interval& other) const {
  std::optional<Value> lo = lo_;
  bool lo_open = lo_open_;
  if (CompareLowerBounds(other.lo_, other.lo_open_, lo_, lo_open_) > 0) {
    lo = other.lo_;
    lo_open = other.lo_open_;
  }
  std::optional<Value> hi = hi_;
  bool hi_open = hi_open_;
  if (CompareUpperBounds(other.hi_, other.hi_open_, hi_, hi_open_) < 0) {
    hi = other.hi_;
    hi_open = other.hi_open_;
  }
  return Interval(std::move(lo), lo_open, std::move(hi), hi_open);
}

bool Interval::Intersects(const Interval& other) const {
  return !Intersection(other).IsEmpty();
}

Interval Interval::ClipTo(const Value& domain_lo,
                          const Value& domain_hi) const {
  Interval domain(domain_lo, false, domain_hi, false);
  return Intersection(domain);
}

std::string Interval::ToString() const {
  if (IsPoint()) return "= " + lo_->ToString();
  std::string out;
  out += (lo_open_ || !lo_.has_value()) ? "(" : "[";
  out += lo_.has_value() ? lo_->ToString() : "-inf";
  out += ", ";
  out += hi_.has_value() ? hi_->ToString() : "+inf";
  out += (hi_open_ || !hi_.has_value()) ? ")" : "]";
  return out;
}

bool operator==(const Interval& a, const Interval& b) {
  return a.lo_ == b.lo_ && a.hi_ == b.hi_ && a.lo_open_ == b.lo_open_ &&
         a.hi_open_ == b.hi_open_;
}

}  // namespace iqs
