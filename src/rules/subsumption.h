#ifndef IQS_RULES_SUBSUMPTION_H_
#define IQS_RULES_SUBSUMPTION_H_

#include <optional>
#include <string>
#include <vector>

#include "rules/clause.h"
#include "rules/rule.h"

namespace iqs {

// Subsumption tests used by type inference (paper §4).
//
// Forward inference applies a rule when its LHS *subsumes* the query
// condition: every database instance satisfying the condition also
// satisfies the LHS, hence the RHS holds of every answer. The paper's
// Example 1 subsumes "Displacement > 8000" under the induced range
// [7250, 30000]; since 30000 is merely the observed maximum, the
// condition is first clipped to the attribute's active domain (the
// observed [min, max]) before the containment test.

// How attribute names are matched across clauses.
enum class AttributeMatch {
  // Exact case-insensitive match, or one side unqualified matching the
  // other side's base name. Used where qualifiers are authoritative
  // (derivation specs, declared constraints).
  kStrict,
  // Base names compare case-insensitively regardless of qualifiers
  // ("y.Sonar" ~ "INSTALL.Sonar" ~ "Sonar"). Used by the inference
  // engine, where the same conceptual attribute surfaces under relation-,
  // role-, and view-qualified spellings (join attributes share their
  // value space by construction).
  kBaseName,
};

// True when `general` admits every value `specific` admits over the same
// attribute.
bool ClauseSubsumes(const Clause& general, const Clause& specific);

// Like ClauseSubsumes, but `specific` is first clipped to the closed
// active-domain interval [domain_lo, domain_hi].
bool ClauseSubsumesClipped(const Clause& general, const Clause& specific,
                           const Value& domain_lo, const Value& domain_hi);

// True when the rule's whole LHS subsumes the conjunction `conditions`:
// every LHS clause must subsume some condition clause over the same
// attribute (conditions not mentioned by the LHS are extra restrictions on
// the answers and never hurt soundness of the forward step).
// `active_domains` optionally supplies, per LHS attribute, the closed
// observed domain used for clipping; entries are matched by attribute.
struct AttributeDomain {
  std::string attribute;
  Value lo;
  Value hi;
};

bool LhsSubsumesConditions(
    const Rule& rule, const std::vector<Clause>& conditions,
    const std::vector<AttributeDomain>& active_domains,
    AttributeMatch match = AttributeMatch::kStrict);

// True when two attribute names refer to the same attribute under `match`
// (see AttributeMatch).
bool SameAttribute(const std::string& a, const std::string& b,
                   AttributeMatch match = AttributeMatch::kStrict);

// Looks up the active domain registered for `attribute`, if any.
const AttributeDomain* FindDomain(
    const std::vector<AttributeDomain>& domains, const std::string& attribute);

}  // namespace iqs

#endif  // IQS_RULES_SUBSUMPTION_H_
