#ifndef IQS_RULES_CLAUSE_H_
#define IQS_RULES_CLAUSE_H_

#include <string>

#include "rules/interval.h"

namespace iqs {

// A clause restricts one attribute to an interval; the paper (§5.2.2)
// writes it as the triple (lvalue, attribute, uvalue) meaning
// "lvalue <= attribute <= uvalue", with point clauses for equality.
//
// Attribute names are either relation-qualified ("CLASS.Displacement") or
// role-qualified for inter-object rules ("x.Class", "y.Sonar" — roles bind
// to entity types through the relationship, paper §6 rules R12–R17).
class Clause {
 public:
  Clause() = default;
  Clause(std::string attribute, Interval interval)
      : attribute_(std::move(attribute)), interval_(std::move(interval)) {}

  // Point clause: attribute = value.
  static Clause Equals(std::string attribute, Value value);
  // Range clause: lo <= attribute <= hi. Asserts lo <= hi.
  static Result<Clause> Range(std::string attribute, Value lo, Value hi);

  const std::string& attribute() const { return attribute_; }
  const Interval& interval() const { return interval_; }

  bool IsPoint() const { return interval_.IsPoint(); }

  bool Satisfies(const Value& v) const { return interval_.Contains(v); }

  // Unqualified attribute name ("Displacement" from "CLASS.Displacement").
  std::string BaseAttribute() const;
  // Qualifier ("CLASS" from "CLASS.Displacement", "" when unqualified).
  std::string Qualifier() const;

  // The paper's triple form: "(7250, Displacement, 30000)".
  std::string ToTripleString() const;
  // Condition form: "7250 <= Displacement <= 30000" or "Type = SSBN".
  std::string ToConditionString() const;

  friend bool operator==(const Clause& a, const Clause& b) {
    return a.attribute_ == b.attribute_ && a.interval_ == b.interval_;
  }

 private:
  std::string attribute_;
  Interval interval_;
};

}  // namespace iqs

#endif  // IQS_RULES_CLAUSE_H_
