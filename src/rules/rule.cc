#include "rules/rule.h"

#include <algorithm>

#include "common/string_util.h"

namespace iqs {

std::string Consequent::ToString() const {
  if (HasIsaReading()) {
    return isa_variable + " isa " + isa_type;
  }
  return clause.ToConditionString();
}

std::string Rule::Body() const {
  std::string out = "if ";
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (i > 0) out += " and ";
    out += lhs[i].ToConditionString();
  }
  out += " then ";
  out += rhs.ToString();
  return out;
}

std::string Rule::ToString() const {
  std::string out = "R" + std::to_string(id) + ": " + Body();
  out += "  [support " + std::to_string(support) + "]";
  return out;
}

void RuleSet::Add(Rule rule) {
  if (rule.id <= 0) {
    rule.id = next_id_;
  }
  next_id_ = std::max(next_id_, rule.id + 1);
  rules_.push_back(std::move(rule));
}

void RuleSet::AddAll(std::vector<Rule> rules) {
  for (Rule& r : rules) Add(std::move(r));
}

std::vector<const Rule*> RuleSet::WithRhsType(
    const std::string& type_name) const {
  std::vector<const Rule*> out;
  for (const Rule& r : rules_) {
    if (EqualsIgnoreCase(r.rhs.isa_type, type_name)) out.push_back(&r);
  }
  return out;
}

std::vector<const Rule*> RuleSet::WithRhsAttribute(
    const std::string& attribute) const {
  std::vector<const Rule*> out;
  for (const Rule& r : rules_) {
    if (EqualsIgnoreCase(r.rhs.clause.attribute(), attribute)) {
      out.push_back(&r);
    }
  }
  return out;
}

std::vector<const Rule*> RuleSet::WithLhsAttribute(
    const std::string& attribute) const {
  std::vector<const Rule*> out;
  for (const Rule& r : rules_) {
    for (const Clause& c : r.lhs) {
      if (EqualsIgnoreCase(c.attribute(), attribute)) {
        out.push_back(&r);
        break;
      }
    }
  }
  return out;
}

size_t RuleSet::Prune(int64_t min_support) {
  size_t before = rules_.size();
  rules_.erase(std::remove_if(rules_.begin(), rules_.end(),
                              [min_support](const Rule& r) {
                                return r.support < min_support;
                              }),
               rules_.end());
  return before - rules_.size();
}

void RuleSet::Renumber() {
  int id = 1;
  for (Rule& r : rules_) r.id = id++;
  next_id_ = id;
}

std::string RuleSet::ToString() const {
  std::string out;
  for (const Rule& r : rules_) {
    out += r.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace iqs
