#include "rules/clause.h"

namespace iqs {

Clause Clause::Equals(std::string attribute, Value value) {
  return Clause(std::move(attribute), Interval::Point(std::move(value)));
}

Result<Clause> Clause::Range(std::string attribute, Value lo, Value hi) {
  IQS_ASSIGN_OR_RETURN(Interval interval,
                       Interval::Closed(std::move(lo), std::move(hi)));
  return Clause(std::move(attribute), std::move(interval));
}

std::string Clause::BaseAttribute() const {
  size_t pos = attribute_.rfind('.');
  if (pos == std::string::npos) return attribute_;
  return attribute_.substr(pos + 1);
}

std::string Clause::Qualifier() const {
  size_t pos = attribute_.rfind('.');
  if (pos == std::string::npos) return "";
  return attribute_.substr(0, pos);
}

std::string Clause::ToTripleString() const {
  std::string lo =
      interval_.lo().has_value() ? interval_.lo()->ToString() : "-inf";
  std::string hi =
      interval_.hi().has_value() ? interval_.hi()->ToString() : "+inf";
  return "(" + lo + ", " + attribute_ + ", " + hi + ")";
}

std::string Clause::ToConditionString() const {
  const Interval& iv = interval_;
  if (iv.IsPoint()) {
    return attribute_ + " = " + iv.lo()->ToString();
  }
  std::string out;
  if (iv.lo().has_value() && iv.hi().has_value()) {
    out = iv.lo()->ToString() + (iv.lo_open() ? " < " : " <= ") + attribute_ +
          (iv.hi_open() ? " < " : " <= ") + iv.hi()->ToString();
  } else if (iv.lo().has_value()) {
    out = attribute_ + (iv.lo_open() ? " > " : " >= ") + iv.lo()->ToString();
  } else if (iv.hi().has_value()) {
    out = attribute_ + (iv.hi_open() ? " < " : " <= ") + iv.hi()->ToString();
  } else {
    out = attribute_ + " unrestricted";
  }
  return out;
}

}  // namespace iqs
