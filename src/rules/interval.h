#ifndef IQS_RULES_INTERVAL_H_
#define IQS_RULES_INTERVAL_H_

#include <optional>
#include <string>

#include "common/result.h"
#include "relational/predicate.h"
#include "relational/value.h"

namespace iqs {

// An interval over the Value total order. Rule clauses in the paper are
// always closed ("lvalue <= attribute <= uvalue", §5.2.2), but query
// conditions can be strict ("Displacement > 8000"), so each bound carries
// an open flag. A missing bound means unbounded on that side.
class Interval {
 public:
  // (-inf, +inf).
  Interval() = default;

  // [lo, hi] (closed). lo must be <= hi.
  static Result<Interval> Closed(Value lo, Value hi);
  // [v, v].
  static Interval Point(Value v);
  // [lo, +inf) or (lo, +inf).
  static Interval AtLeast(Value lo, bool open = false);
  // (-inf, hi] or (-inf, hi).
  static Interval AtMost(Value hi, bool open = false);
  static Interval All() { return Interval(); }

  // Builds the interval of values satisfying `attr op constant`.
  // kNe is not representable as one interval and returns InvalidArgument.
  static Result<Interval> FromCompare(CompareOp op, Value constant);

  const std::optional<Value>& lo() const { return lo_; }
  const std::optional<Value>& hi() const { return hi_; }
  bool lo_open() const { return lo_open_; }
  bool hi_open() const { return hi_open_; }

  bool IsUnboundedBelow() const { return !lo_.has_value(); }
  bool IsUnboundedAbove() const { return !hi_.has_value(); }
  bool IsPoint() const;

  // True when no value can satisfy the interval (e.g. (5, 5]).
  bool IsEmpty() const;

  bool Contains(const Value& v) const;

  // True when every value in `other` is also in *this (other ⊆ this).
  // Empty intervals are contained in everything.
  bool ContainsInterval(const Interval& other) const;

  bool Intersects(const Interval& other) const;

  // The largest interval contained in both.
  Interval Intersection(const Interval& other) const;

  // Clips this interval to [domain_lo, domain_hi] (closed). Used for
  // active-domain clipping before subsumption tests (DESIGN.md §4).
  Interval ClipTo(const Value& domain_lo, const Value& domain_hi) const;

  // Human-readable form: "[7250, 30000]", "(8000, +inf)", "= 42".
  std::string ToString() const;

  friend bool operator==(const Interval& a, const Interval& b);

 private:
  Interval(std::optional<Value> lo, bool lo_open, std::optional<Value> hi,
           bool hi_open)
      : lo_(std::move(lo)),
        hi_(std::move(hi)),
        lo_open_(lo_open),
        hi_open_(hi_open) {}

  std::optional<Value> lo_;
  std::optional<Value> hi_;
  bool lo_open_ = false;
  bool hi_open_ = false;
};

}  // namespace iqs

#endif  // IQS_RULES_INTERVAL_H_
