#include "rules/subsumption.h"

#include "common/string_util.h"

namespace iqs {

namespace {

std::string BaseName(const std::string& attribute) {
  size_t pos = attribute.rfind('.');
  return pos == std::string::npos ? attribute : attribute.substr(pos + 1);
}

bool IsQualified(const std::string& attribute) {
  return attribute.find('.') != std::string::npos;
}

}  // namespace

bool SameAttribute(const std::string& a, const std::string& b,
                   AttributeMatch match) {
  if (EqualsIgnoreCase(a, b)) return true;
  if (match == AttributeMatch::kBaseName) {
    return EqualsIgnoreCase(BaseName(a), BaseName(b));
  }
  bool qa = IsQualified(a);
  bool qb = IsQualified(b);
  if (qa == qb) return false;  // both qualified (differently) or both bare
  return EqualsIgnoreCase(BaseName(a), BaseName(b));
}

bool ClauseSubsumes(const Clause& general, const Clause& specific) {
  if (!SameAttribute(general.attribute(), specific.attribute())) return false;
  return general.interval().ContainsInterval(specific.interval());
}

bool ClauseSubsumesClipped(const Clause& general, const Clause& specific,
                           const Value& domain_lo, const Value& domain_hi) {
  if (!SameAttribute(general.attribute(), specific.attribute())) return false;
  Interval clipped = specific.interval().ClipTo(domain_lo, domain_hi);
  return general.interval().ContainsInterval(clipped);
}

const AttributeDomain* FindDomain(const std::vector<AttributeDomain>& domains,
                                  const std::string& attribute) {
  for (const AttributeDomain& d : domains) {
    if (SameAttribute(d.attribute, attribute)) return &d;
  }
  return nullptr;
}

bool LhsSubsumesConditions(const Rule& rule,
                           const std::vector<Clause>& conditions,
                           const std::vector<AttributeDomain>& active_domains,
                           AttributeMatch match) {
  for (const Clause& lhs_clause : rule.lhs) {
    bool matched = false;
    for (const Clause& cond : conditions) {
      if (!SameAttribute(lhs_clause.attribute(), cond.attribute(), match)) {
        continue;
      }
      const AttributeDomain* domain =
          FindDomain(active_domains, cond.attribute());
      Interval cond_interval = cond.interval();
      if (domain != nullptr) {
        cond_interval = cond_interval.ClipTo(domain->lo, domain->hi);
      }
      if (lhs_clause.interval().ContainsInterval(cond_interval)) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

}  // namespace iqs
