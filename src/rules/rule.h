#ifndef IQS_RULES_RULE_H_
#define IQS_RULES_RULE_H_

#include <string>
#include <vector>

#include "rules/clause.h"

namespace iqs {

// The right-hand side of a Horn rule. The ILS always induces an attribute
// clause ("Type = SSBN"); when the KER type hierarchy defines a subtype
// whose derivation specification matches that clause, the dictionary also
// records the isa reading ("x isa SSBN", paper Figure 5), which is what
// type inference traverses.
struct Consequent {
  Clause clause;            // the induced attribute clause (always set)
  std::string isa_type;     // subtype name when the clause matches a
                            // derivation spec; empty otherwise
  std::string isa_variable = "x";  // role variable for the isa reading

  bool HasIsaReading() const { return !isa_type.empty(); }

  // "x isa SSBN" when the isa reading exists, else "Type = SSBN".
  std::string ToString() const;

  friend bool operator==(const Consequent&, const Consequent&) = default;
};

// An induced If-then rule (paper §5.2.2): a conjunction of LHS clauses and
// a single RHS clause (Horn form).
struct Rule {
  int id = 0;                  // stable number within a RuleSet (R1, R2, ...)
  std::string scheme;          // rule scheme "X --> Y", e.g. "Class->Type"
  std::string source_relation; // relation (or join) the rule was induced from
  std::vector<Clause> lhs;
  Consequent rhs;
  int64_t support = 0;         // number of database instances satisfying it
  // True when this rule's family — the rules of the same scheme with the
  // same consequent value — covers EVERY instance with that consequent:
  // no run for the value was pruned and no X value mapping to it was
  // inconsistent. Only then is the converse implication ("Y = y implies
  // X in the union of the family's ranges") sound, which semantic query
  // optimization relies on.
  bool family_complete = false;

  // "R9: if 7250 <= Displacement <= 30000 then x isa SSBN  [support 4]".
  std::string ToString() const;
  // Without the id/support decoration.
  std::string Body() const;

  friend bool operator==(const Rule&, const Rule&) = default;
};

// An ordered collection of rules with stable ids and lookup by the parts
// inference needs.
class RuleSet {
 public:
  RuleSet() = default;

  // Appends, assigning the next id (1-based) unless the rule already has a
  // positive id.
  void Add(Rule rule);
  void AddAll(std::vector<Rule> rules);

  size_t size() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }
  const Rule& rule(size_t i) const { return rules_[i]; }
  const std::vector<Rule>& rules() const { return rules_; }

  // Rules whose RHS isa-type equals `type_name`.
  std::vector<const Rule*> WithRhsType(const std::string& type_name) const;
  // Rules whose RHS clause constrains `attribute` (qualified name match,
  // case-insensitive).
  std::vector<const Rule*> WithRhsAttribute(const std::string& attribute) const;
  // Rules with some LHS clause over `attribute`.
  std::vector<const Rule*> WithLhsAttribute(const std::string& attribute) const;

  // Drops rules with support < min_support; returns how many were removed.
  size_t Prune(int64_t min_support);

  // Re-assigns ids 1..n in current order.
  void Renumber();

  std::string ToString() const;

 private:
  std::vector<Rule> rules_;
  int next_id_ = 1;
};

}  // namespace iqs

#endif  // IQS_RULES_RULE_H_
