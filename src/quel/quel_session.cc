#include "quel/quel_session.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "exec/exec_context.h"
#include "quel/quel_parser.h"
#include "relational/algebra.h"

namespace iqs {

Result<QuelSession::ExecutionResult> QuelSession::ExecuteText(
    const std::string& text) {
  IQS_ASSIGN_OR_RETURN(QuelStatement stmt, ParseQuelStatement(text));
  return Execute(stmt);
}

Result<QuelSession::ExecutionResult> QuelSession::ExecuteScript(
    const std::string& text) {
  IQS_ASSIGN_OR_RETURN(std::vector<QuelStatement> statements,
                       ParseQuelScript(text));
  if (statements.empty()) {
    return Status::InvalidArgument("empty QUEL script");
  }
  ExecutionResult last;
  for (const QuelStatement& stmt : statements) {
    IQS_ASSIGN_OR_RETURN(last, Execute(stmt));
  }
  return last;
}

Result<QuelSession::ExecutionResult> QuelSession::Execute(
    const QuelStatement& statement) {
  switch (statement.kind) {
    case QuelStatement::Kind::kRange:
      return ExecuteRange(statement.range);
    case QuelStatement::Kind::kRetrieve:
      return ExecuteRetrieve(statement.retrieve);
    case QuelStatement::Kind::kDelete:
      return ExecuteDelete(statement.del);
    case QuelStatement::Kind::kAppend:
      return ExecuteAppend(statement.append);
  }
  return Status::Internal("unreachable QUEL statement kind");
}

Result<std::string> QuelSession::RelationOf(
    const std::string& variable) const {
  auto it = ranges_.find(ToLower(variable));
  if (it == ranges_.end()) {
    return Status::NotFound("no range declaration for tuple variable '" +
                            variable + "'");
  }
  return it->second;
}

Result<QuelSession::ExecutionResult> QuelSession::ExecuteRange(
    const QuelRangeStatement& stmt) {
  if (db_->IsVirtual(stmt.relation)) {
    // Materialize once to validate the name and learn its registered
    // spelling; the snapshot itself is discarded — each retrieve takes a
    // fresh one.
    IQS_ASSIGN_OR_RETURN(Relation snapshot,
                         db_->MaterializeVirtual(stmt.relation));
    ranges_[ToLower(stmt.variable)] = snapshot.name();
    return ExecutionResult{};
  }
  IQS_ASSIGN_OR_RETURN(const Relation* rel, db_->Get(stmt.relation));
  ranges_[ToLower(stmt.variable)] = rel->name();
  return ExecutionResult{};
}

void QuelSession::AddVariable(const std::string& variable,
                              std::vector<std::string>* out) {
  for (const std::string& existing : *out) {
    if (EqualsIgnoreCase(existing, variable)) return;
  }
  out->push_back(variable);
}

void QuelSession::CollectVariables(const QuelExprPtr& expr,
                                   std::vector<std::string>* out) {
  if (expr == nullptr) return;
  if (expr->kind == QuelExpr::Kind::kComparison) {
    if (expr->lhs.is_attr) AddVariable(expr->lhs.attr.variable, out);
    if (expr->rhs.is_attr) AddVariable(expr->rhs.attr.variable, out);
    return;
  }
  CollectVariables(expr->left, out);
  CollectVariables(expr->right, out);
}

Result<const Relation*> QuelSession::ResolveVariable(
    const std::string& variable) const {
  IQS_ASSIGN_OR_RETURN(std::string relation, RelationOf(variable));
  if (db_->IsVirtual(relation)) {
    std::string key = ToLower(relation);
    auto it = virtual_snapshots_.find(key);
    if (it == virtual_snapshots_.end()) {
      IQS_ASSIGN_OR_RETURN(Relation snapshot,
                           db_->MaterializeVirtual(relation));
      it = virtual_snapshots_.emplace(key, std::move(snapshot)).first;
    }
    return &it->second;
  }
  return db_->Get(relation);
}

Result<Value> QuelSession::EvalOperand(const QuelExpr::Operand& operand,
                                       const std::vector<Binding>& bindings,
                                       const QuelExpr::Operand& other) {
  if (operand.is_attr) {
    for (const Binding& b : bindings) {
      if (!EqualsIgnoreCase(b.variable, operand.attr.variable)) continue;
      IQS_ASSIGN_OR_RETURN(size_t idx,
                           b.relation->schema().IndexOf(
                               operand.attr.attribute));
      return b.current->at(idx);
    }
    return Status::NotFound("tuple variable '" + operand.attr.variable +
                            "' is not bound in this statement");
  }
  // Constant: coerce numeric spellings against a string attribute on the
  // other side (the paper compares CHAR class codes with 0101-style
  // literals).
  if (other.is_attr && operand.constant.type() != ValueType::kString) {
    for (const Binding& b : bindings) {
      if (!EqualsIgnoreCase(b.variable, other.attr.variable)) continue;
      auto idx = b.relation->schema().IndexOf(other.attr.attribute);
      if (idx.ok() &&
          b.relation->schema().attribute(*idx).type == ValueType::kString) {
        return Value::String(operand.raw.empty()
                                 ? operand.constant.ToString()
                                 : operand.raw);
      }
    }
  }
  return operand.constant;
}

Result<bool> QuelSession::Eval(const QuelExpr& expr,
                               const std::vector<Binding>& bindings) {
  switch (expr.kind) {
    case QuelExpr::Kind::kComparison: {
      IQS_ASSIGN_OR_RETURN(Value lhs,
                           EvalOperand(expr.lhs, bindings, expr.rhs));
      IQS_ASSIGN_OR_RETURN(Value rhs,
                           EvalOperand(expr.rhs, bindings, expr.lhs));
      return ApplyCompare(expr.op, lhs, rhs);
    }
    case QuelExpr::Kind::kAnd: {
      IQS_ASSIGN_OR_RETURN(bool l, Eval(*expr.left, bindings));
      if (!l) return false;
      return Eval(*expr.right, bindings);
    }
    case QuelExpr::Kind::kOr: {
      IQS_ASSIGN_OR_RETURN(bool l, Eval(*expr.left, bindings));
      if (l) return true;
      return Eval(*expr.right, bindings);
    }
    case QuelExpr::Kind::kNot: {
      IQS_ASSIGN_OR_RETURN(bool v, Eval(*expr.left, bindings));
      return !v;
    }
  }
  return Status::Internal("unreachable QUEL expression kind");
}

bool QuelSession::TryConvertOperand(const QuelExpr::Operand& operand,
                                    const Binding& binding,
                                    const QuelExpr::Operand& other,
                                    ExprPtr* out) {
  if (operand.is_attr) {
    if (!EqualsIgnoreCase(operand.attr.variable, binding.variable)) {
      return false;
    }
    auto idx = binding.relation->schema().IndexOf(operand.attr.attribute);
    // An unknown attribute is a PER-ROW error in the row path (an empty
    // relation yields an empty answer, not an error) — fall back so the
    // row path reproduces that behavior exactly.
    if (!idx.ok()) return false;
    *out = MakeColumn(*idx);
    return true;
  }
  // Mirror EvalOperand's coercion: a non-string constant compared with a
  // string attribute keeps its raw spelling.
  Value v = operand.constant;
  if (other.is_attr && v.type() != ValueType::kString &&
      EqualsIgnoreCase(other.attr.variable, binding.variable)) {
    auto idx = binding.relation->schema().IndexOf(other.attr.attribute);
    if (idx.ok() &&
        binding.relation->schema().attribute(*idx).type ==
            ValueType::kString) {
      v = Value::String(operand.raw.empty() ? v.ToString() : operand.raw);
    }
  }
  *out = MakeConstant(std::move(v));
  return true;
}

bool QuelSession::TryConvertExpr(const QuelExpr& expr, const Binding& binding,
                                 PredicatePtr* out) {
  switch (expr.kind) {
    case QuelExpr::Kind::kComparison: {
      ExprPtr lhs, rhs;
      if (!TryConvertOperand(expr.lhs, binding, expr.rhs, &lhs) ||
          !TryConvertOperand(expr.rhs, binding, expr.lhs, &rhs)) {
        return false;
      }
      *out = MakeCompare(expr.op, std::move(lhs), std::move(rhs));
      return true;
    }
    case QuelExpr::Kind::kAnd:
    case QuelExpr::Kind::kOr: {
      PredicatePtr l, r;
      if (!TryConvertExpr(*expr.left, binding, &l) ||
          !TryConvertExpr(*expr.right, binding, &r)) {
        return false;
      }
      *out = expr.kind == QuelExpr::Kind::kAnd
                 ? MakeAnd(std::move(l), std::move(r))
                 : MakeOr(std::move(l), std::move(r));
      return true;
    }
    case QuelExpr::Kind::kNot: {
      PredicatePtr inner;
      if (!TryConvertExpr(*expr.left, binding, &inner)) return false;
      *out = MakeNot(std::move(inner));
      return true;
    }
  }
  return false;
}

Result<bool> QuelSession::TryColumnarRetrieve(
    const QuelRetrieveStatement& stmt, const Binding& binding,
    const std::vector<std::pair<size_t, size_t>>& sources, Relation* result,
    ExecutionResult* counters) const {
  IQS_ASSIGN_OR_RETURN(std::string relation, RelationOf(binding.variable));
  if (db_->IsVirtual(relation)) return false;
  PredicatePtr pred;
  if (!TryConvertExpr(*stmt.where, binding, &pred)) return false;
  Result<std::shared_ptr<const ColumnarRelation>> snap =
      db_->ColumnarSnapshot(relation);
  if (!snap.ok()) return false;
  ExtractedConjuncts split = ExtractColumnConditions(pred, **snap);
  if (split.conditions.empty()) return false;
  ColumnarScanStats scan_stats;
  IQS_ASSIGN_OR_RETURN(std::vector<uint32_t> admitted,
                       ColumnarScan(**snap, split.conditions,
                                    split.residual.get(), &scan_stats));
  std::set<Tuple> seen;
  for (uint32_t r : admitted) {
    Tuple row;
    for (const auto& [which, column] : sources) {
      (void)which;  // single binding: always 0
      row.Append((*snap)->column(column).Get(r));
    }
    if (stmt.unique && !seen.insert(row).second) continue;
    result->AppendUnchecked(std::move(row));
  }
  counters->columnar_blocks_total += scan_stats.blocks_total;
  counters->columnar_blocks_pruned += scan_stats.blocks_pruned;
  return true;
}

Result<QuelSession::ExecutionResult> QuelSession::ExecuteRetrieve(
    const QuelRetrieveStatement& stmt) {
  if (stmt.targets.empty()) {
    return Status::InvalidArgument("retrieve needs a target list");
  }
  virtual_snapshots_.clear();
  // Variables in first-use order: targets, then qualification.
  std::vector<std::string> variables;
  for (const QuelTarget& t : stmt.targets) {
    AddVariable(t.ref.variable, &variables);
  }
  CollectVariables(stmt.where, &variables);
  for (const QuelAttrRef& ref : stmt.sort_by) {
    AddVariable(ref.variable, &variables);
  }
  std::vector<Binding> bindings;
  for (const std::string& variable : variables) {
    IQS_ASSIGN_OR_RETURN(const Relation* rel, ResolveVariable(variable));
    bindings.push_back(Binding{variable, rel, nullptr});
  }

  // Result schema from the targets.
  std::vector<AttributeDef> attrs;
  std::vector<std::pair<size_t, size_t>> sources;  // (binding, column)
  for (const QuelTarget& target : stmt.targets) {
    size_t which = 0;
    while (!EqualsIgnoreCase(bindings[which].variable, target.ref.variable)) {
      ++which;
    }
    IQS_ASSIGN_OR_RETURN(size_t column,
                         bindings[which].relation->schema().IndexOf(
                             target.ref.attribute));
    AttributeDef def =
        bindings[which].relation->schema().attribute(column);
    def.name = target.effective_name();
    def.is_key = false;
    attrs.push_back(std::move(def));
    sources.emplace_back(which, column);
  }
  IQS_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));
  Relation result(stmt.into.empty() ? "retrieve" : stmt.into,
                  std::move(schema));

  // Columnar fast path: a qualified single-variable retrieve over a
  // stored relation runs as a batch scan over the columnar snapshot.
  ExecutionResult out;
  bool scanned = false;
  if (bindings.size() == 1 && stmt.where != nullptr && ColumnarEnabled()) {
    IQS_ASSIGN_OR_RETURN(
        scanned,
        TryColumnarRetrieve(stmt, bindings[0], sources, &result, &out));
  }

  if (!scanned) {
    // Iterate the cross product of the bindings. Governed per 1024
    // candidate combinations, with the freshly kept rows charged — a
    // multi-variable retrieve is QUEL's runaway shape.
    std::set<Tuple> seen;
    size_t visited = 0;
    size_t charged_rows = 0;
    auto emit = [&]() -> Status {
      if ((visited++ & 1023) == 0) {
        IQS_RETURN_IF_ERROR(exec::ChargeRows(
            "quel.scan", result.size() - charged_rows, sources.size()));
        charged_rows = result.size();
      }
      if (stmt.where != nullptr) {
        IQS_ASSIGN_OR_RETURN(bool keep, Eval(*stmt.where, bindings));
        if (!keep) return Status::Ok();
      }
      Tuple row;
      for (const auto& [which, column] : sources) {
        row.Append(bindings[which].current->at(column));
      }
      if (stmt.unique && !seen.insert(row).second) return Status::Ok();
      result.AppendUnchecked(std::move(row));
      return Status::Ok();
    };
    auto recurse = [&](auto&& self, size_t depth) -> Status {
      if (depth == bindings.size()) return emit();
      for (const Tuple& t : bindings[depth].relation->rows()) {
        bindings[depth].current = &t;
        IQS_RETURN_IF_ERROR(self(self, depth + 1));
      }
      return Status::Ok();
    };
    IQS_RETURN_IF_ERROR(recurse(recurse, 0));
  }

  // sort by: each ref must correspond to a target column.
  if (!stmt.sort_by.empty()) {
    std::vector<std::string> keys;
    for (const QuelAttrRef& ref : stmt.sort_by) {
      bool found = false;
      for (size_t i = 0; i < stmt.targets.size(); ++i) {
        if (EqualsIgnoreCase(stmt.targets[i].ref.variable, ref.variable) &&
            EqualsIgnoreCase(stmt.targets[i].ref.attribute, ref.attribute)) {
          keys.push_back(stmt.targets[i].effective_name());
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument("sort attribute " + ref.ToString() +
                                       " is not in the target list");
      }
    }
    IQS_RETURN_IF_ERROR(result.SortBy(keys));
  }

  if (!stmt.into.empty()) {
    if (db_->Contains(stmt.into)) {
      IQS_RETURN_IF_ERROR(db_->Drop(stmt.into));
    }
    IQS_RETURN_IF_ERROR(db_->AddRelation(result));
  }
  out.relation = std::move(result);
  return out;
}

Result<QuelSession::ExecutionResult> QuelSession::ExecuteDelete(
    const QuelDeleteStatement& stmt) {
  virtual_snapshots_.clear();
  IQS_ASSIGN_OR_RETURN(std::string target_name, RelationOf(stmt.variable));
  if (db_->IsVirtual(target_name)) {
    return Status::InvalidArgument("relation '" + target_name +
                                   "' is a virtual catalog relation and is "
                                   "read-only");
  }
  IQS_ASSIGN_OR_RETURN(Relation * target, db_->GetMutable(target_name));

  // Other variables mentioned by the qualification.
  std::vector<std::string> variables;
  AddVariable(stmt.variable, &variables);
  CollectVariables(stmt.where, &variables);
  std::vector<Binding> bindings;
  for (const std::string& variable : variables) {
    IQS_ASSIGN_OR_RETURN(const Relation* rel, ResolveVariable(variable));
    bindings.push_back(Binding{variable, rel, nullptr});
  }

  // For each target tuple: does SOME combination of the other variables
  // satisfy the qualification?
  std::vector<bool> doomed(target->size(), false);
  for (size_t row = 0; row < target->size(); ++row) {
    if ((row & 1023) == 0) IQS_GOV_CHECKPOINT("quel.scan");
    bindings[0].current = &target->row(row);
    if (stmt.where == nullptr) {
      doomed[row] = true;
      continue;
    }
    bool exists = false;
    auto recurse = [&](auto&& self, size_t depth) -> Status {
      if (exists) return Status::Ok();
      if (depth == bindings.size()) {
        IQS_ASSIGN_OR_RETURN(bool match, Eval(*stmt.where, bindings));
        if (match) exists = true;
        return Status::Ok();
      }
      for (const Tuple& t : bindings[depth].relation->rows()) {
        bindings[depth].current = &t;
        IQS_RETURN_IF_ERROR(self(self, depth + 1));
        if (exists) break;
      }
      return Status::Ok();
    };
    IQS_RETURN_IF_ERROR(recurse(recurse, 1));
    doomed[row] = exists;
  }
  size_t index = 0;
  size_t removed = target->DeleteWhere(
      [&doomed, &index](const Tuple&) { return doomed[index++]; });
  ExecutionResult out;
  out.affected = removed;
  return out;
}

Result<QuelSession::ExecutionResult> QuelSession::ExecuteAppend(
    const QuelAppendStatement& stmt) {
  if (db_->IsVirtual(stmt.relation)) {
    return Status::InvalidArgument("relation '" + stmt.relation +
                                   "' is a virtual catalog relation and is "
                                   "read-only");
  }
  IQS_ASSIGN_OR_RETURN(Relation * target, db_->GetMutable(stmt.relation));
  const Schema& schema = target->schema();
  std::vector<Value> row(schema.size(), Value::Null());
  for (size_t i = 0; i < stmt.attributes.size(); ++i) {
    IQS_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(stmt.attributes[i]));
    Value v = stmt.values[i];
    if (schema.attribute(idx).type == ValueType::kString &&
        v.type() != ValueType::kString && !v.is_null()) {
      v = Value::String(stmt.raw[i].empty() ? v.ToString() : stmt.raw[i]);
    }
    row[idx] = std::move(v);
  }
  IQS_RETURN_IF_ERROR(target->Insert(Tuple(std::move(row))));
  ExecutionResult out;
  out.affected = 1;
  return out;
}

}  // namespace iqs
