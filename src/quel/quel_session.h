#ifndef IQS_QUEL_QUEL_SESSION_H_
#define IQS_QUEL_QUEL_SESSION_H_

#include <map>
#include <string>
#include <vector>

#include "quel/quel_ast.h"
#include "relational/database.h"
#include "relational/predicate.h"

namespace iqs {

// Executes QUEL statements against a Database with INGRES-style tuple
// variable semantics. Range declarations persist for the session's
// lifetime, so the paper's §5.2.1 scripts run as written:
//
//   QuelSession session(&db);
//   session.ExecuteText("range of r is SUBMARINE");
//   session.ExecuteText(
//       "retrieve into S unique (r.Class, r.Id) sort by r.Class");
//
// Retrieval semantics: the statement ranges over all combinations of
// the tuple variables it mentions; the qualification filters; the
// target list projects (with `unique` deduplicating). `retrieve into`
// materializes the result in the database, replacing any relation of
// the same name. A delete removes the tuples of its variable for which
// some combination of the other mentioned variables satisfies the
// qualification.
class QuelSession {
 public:
  // `db` must outlive the session.
  explicit QuelSession(Database* db) : db_(db) {}

  struct ExecutionResult {
    Relation relation;    // retrieve output; empty otherwise
    size_t affected = 0;  // deleted / appended tuple count
    // Columnar fast-path accounting for this statement (zero when the
    // row path ran): zone-map blocks considered and skipped.
    size_t columnar_blocks_total = 0;
    size_t columnar_blocks_pruned = 0;
  };

  Result<ExecutionResult> Execute(const QuelStatement& statement);
  Result<ExecutionResult> ExecuteText(const std::string& text);
  // Runs a whole script; returns the result of the LAST statement.
  Result<ExecutionResult> ExecuteScript(const std::string& text);

  // The relation a tuple variable currently ranges over.
  Result<std::string> RelationOf(const std::string& variable) const;

 private:
  struct Binding {
    std::string variable;
    const Relation* relation = nullptr;
    const Tuple* current = nullptr;
  };

  Result<ExecutionResult> ExecuteRange(const QuelRangeStatement& stmt);
  Result<ExecutionResult> ExecuteRetrieve(const QuelRetrieveStatement& stmt);
  Result<ExecutionResult> ExecuteDelete(const QuelDeleteStatement& stmt);
  Result<ExecutionResult> ExecuteAppend(const QuelAppendStatement& stmt);

  // Collects the variables a statement mentions, in first-use order.
  static void CollectVariables(const QuelExprPtr& expr,
                               std::vector<std::string>* out);
  static void AddVariable(const std::string& variable,
                          std::vector<std::string>* out);

  Result<const Relation*> ResolveVariable(const std::string& variable) const;

  // Evaluates `expr` under the current bindings.
  static Result<bool> Eval(const QuelExpr& expr,
                           const std::vector<Binding>& bindings);
  static Result<Value> EvalOperand(const QuelExpr::Operand& operand,
                                   const std::vector<Binding>& bindings,
                                   const QuelExpr::Operand& other);

  // Columnar fast path for a single-variable qualified retrieve: the
  // qualification is converted to a bound Predicate over the variable's
  // relation (replicating EvalOperand's raw-spelling coercion exactly)
  // and run as a zone-map-pruned batch scan. Appends the admitted
  // target tuples to `*result` (honoring `unique`) and returns true; a
  // false return means nothing was appended and the row path must run.
  static bool TryConvertOperand(const QuelExpr::Operand& operand,
                                const Binding& binding,
                                const QuelExpr::Operand& other, ExprPtr* out);
  static bool TryConvertExpr(const QuelExpr& expr, const Binding& binding,
                             PredicatePtr* out);
  Result<bool> TryColumnarRetrieve(
      const QuelRetrieveStatement& stmt, const Binding& binding,
      const std::vector<std::pair<size_t, size_t>>& sources, Relation* result,
      ExecutionResult* counters) const;

  Database* db_;
  std::map<std::string, std::string> ranges_;  // lower(var) -> relation
  // Per-statement snapshots of virtual sys.* relations, keyed by
  // lowercased relation name. Cleared at the start of every retrieve /
  // delete so one statement reads one consistent snapshot while Binding
  // pointers into it stay valid. Mutable: filled lazily by the const
  // ResolveVariable().
  mutable std::map<std::string, Relation> virtual_snapshots_;
};

}  // namespace iqs

#endif  // IQS_QUEL_QUEL_SESSION_H_
