#ifndef IQS_QUEL_QUEL_AST_H_
#define IQS_QUEL_QUEL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/predicate.h"
#include "relational/value.h"

namespace iqs {

// AST for the QUEL subset the paper's prototype is written in (§5.2.1
// shows the Rule Induction Algorithm as QUEL statements against INGRES).
// Supported statements:
//
//   range of r is SUBMARINE
//   retrieve [into S] [unique] (r.Y, r.X) [where qual] [sort by r.Y]
//   delete s [where qual]
//   append to S (X = 1, Y = "a")
//
// QUEL's tuple-variable semantics: a retrieve ranges over all
// combinations of the tuple variables mentioned anywhere in the
// statement; the qualification filters combinations; the target list
// projects. A delete removes those tuples of the deleted variable for
// which SOME combination of the other variables satisfies the
// qualification (this is what step 2's anti-join delete relies on).

// r.Attr.
struct QuelAttrRef {
  std::string variable;
  std::string attribute;

  std::string ToString() const { return variable + "." + attribute; }
};

// One target-list element: [name =] r.Attr. The result column name
// defaults to the attribute name.
struct QuelTarget {
  std::string name;  // empty -> attribute name
  QuelAttrRef ref;

  const std::string& effective_name() const {
    return name.empty() ? ref.attribute : name;
  }
};

// Qualification expression tree.
struct QuelExpr {
  enum class Kind { kComparison, kAnd, kOr, kNot };
  Kind kind = Kind::kComparison;

  // kComparison operands: attribute refs and/or constants.
  struct Operand {
    bool is_attr = false;
    QuelAttrRef attr;
    Value constant;
    std::string raw;  // literal spelling, for CHAR coercion
  };
  CompareOp op = CompareOp::kEq;
  Operand lhs;
  Operand rhs;

  std::shared_ptr<QuelExpr> left;
  std::shared_ptr<QuelExpr> right;  // null for kNot
};

using QuelExprPtr = std::shared_ptr<QuelExpr>;

struct QuelRangeStatement {
  std::string variable;
  std::string relation;
};

struct QuelRetrieveStatement {
  std::string into;  // empty -> anonymous result
  bool unique = false;
  std::vector<QuelTarget> targets;
  QuelExprPtr where;  // may be null
  std::vector<QuelAttrRef> sort_by;
};

struct QuelDeleteStatement {
  std::string variable;
  QuelExprPtr where;  // may be null (deletes everything)
};

struct QuelAppendStatement {
  std::string relation;
  std::vector<std::string> attributes;
  std::vector<Value> values;
  std::vector<std::string> raw;  // literal spellings
};

struct QuelStatement {
  enum class Kind { kRange, kRetrieve, kDelete, kAppend };
  Kind kind = Kind::kRange;
  QuelRangeStatement range;
  QuelRetrieveStatement retrieve;
  QuelDeleteStatement del;
  QuelAppendStatement append;
};

}  // namespace iqs

#endif  // IQS_QUEL_QUEL_AST_H_
