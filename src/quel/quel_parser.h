#ifndef IQS_QUEL_QUEL_PARSER_H_
#define IQS_QUEL_QUEL_PARSER_H_

#include <string>
#include <vector>

#include "quel/quel_ast.h"

namespace iqs {

// Parses one QUEL statement, or a whole script of newline/semicolon-
// separated statements. Keywords (range, of, is, retrieve, into, unique,
// where, sort, by, delete, append, to, and, or, not) are
// case-insensitive; string literals use double quotes (the paper's
// style) or single quotes.
Result<QuelStatement> ParseQuelStatement(const std::string& text);
Result<std::vector<QuelStatement>> ParseQuelScript(const std::string& text);

}  // namespace iqs

#endif  // IQS_QUEL_QUEL_PARSER_H_
