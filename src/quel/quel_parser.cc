#include "quel/quel_parser.h"

#include "common/string_util.h"
#include "fault/failpoint.h"
#include "sql/sql_lexer.h"

namespace iqs {

namespace {

class QuelParser {
 public:
  explicit QuelParser(std::vector<SqlToken> tokens)
      : tokens_(std::move(tokens)) {}

  Result<std::vector<QuelStatement>> RunScript() {
    std::vector<QuelStatement> out;
    while (!AtEnd()) {
      if (Peek().IsSymbol(";")) {
        Advance();
        continue;
      }
      IQS_ASSIGN_OR_RETURN(QuelStatement stmt, ParseStatement());
      out.push_back(std::move(stmt));
    }
    return out;
  }

  Result<QuelStatement> RunSingle() {
    IQS_ASSIGN_OR_RETURN(QuelStatement stmt, ParseStatement());
    if (Peek().IsSymbol(";")) Advance();
    if (!AtEnd()) return Error("unexpected trailing input");
    return stmt;
  }

 private:
  const SqlToken& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const SqlToken& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == SqlTokenKind::kEnd; }

  Status Error(const std::string& msg) const {
    return Status::ParseError("QUEL near offset " +
                              std::to_string(Peek().position) + ": " + msg +
                              " (at '" + Peek().text + "')");
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!Peek().IsKeyword(kw)) return Error("expected '" + kw + "'");
    Advance();
    return Status::Ok();
  }
  Status ExpectSymbol(const std::string& s) {
    if (!Peek().IsSymbol(s)) return Error("expected '" + s + "'");
    Advance();
    return Status::Ok();
  }
  Result<std::string> ExpectIdent(const std::string& what) {
    if (Peek().kind != SqlTokenKind::kIdent) {
      return Status::ParseError("QUEL near offset " +
                                std::to_string(Peek().position) +
                                ": expected " + what);
    }
    return Advance().text;
  }
  // ident(.ident)* — relation names may be schema-qualified (sys.metrics).
  Result<std::string> ExpectDottedIdent(const std::string& what) {
    IQS_ASSIGN_OR_RETURN(std::string name, ExpectIdent(what));
    while (Peek().IsSymbol(".") && Peek(1).kind == SqlTokenKind::kIdent) {
      Advance();  // .
      name += "." + Advance().text;
    }
    return name;
  }

  Result<QuelStatement> ParseStatement() {
    QuelStatement stmt;
    if (Peek().IsKeyword("range")) {
      stmt.kind = QuelStatement::Kind::kRange;
      IQS_ASSIGN_OR_RETURN(stmt.range, ParseRange());
      return stmt;
    }
    if (Peek().IsKeyword("retrieve")) {
      stmt.kind = QuelStatement::Kind::kRetrieve;
      IQS_ASSIGN_OR_RETURN(stmt.retrieve, ParseRetrieve());
      return stmt;
    }
    if (Peek().IsKeyword("delete")) {
      stmt.kind = QuelStatement::Kind::kDelete;
      IQS_ASSIGN_OR_RETURN(stmt.del, ParseDelete());
      return stmt;
    }
    if (Peek().IsKeyword("append")) {
      stmt.kind = QuelStatement::Kind::kAppend;
      IQS_ASSIGN_OR_RETURN(stmt.append, ParseAppend());
      return stmt;
    }
    return Error("expected range, retrieve, delete, or append");
  }

  // range of r is RELATION
  Result<QuelRangeStatement> ParseRange() {
    Advance();  // range
    IQS_RETURN_IF_ERROR(ExpectKeyword("of"));
    QuelRangeStatement out;
    IQS_ASSIGN_OR_RETURN(out.variable, ExpectIdent("a tuple variable"));
    IQS_RETURN_IF_ERROR(ExpectKeyword("is"));
    IQS_ASSIGN_OR_RETURN(out.relation, ExpectDottedIdent("a relation name"));
    return out;
  }

  Result<QuelAttrRef> ParseAttrRef() {
    QuelAttrRef ref;
    IQS_ASSIGN_OR_RETURN(ref.variable, ExpectIdent("a tuple variable"));
    IQS_RETURN_IF_ERROR(ExpectSymbol("."));
    IQS_ASSIGN_OR_RETURN(ref.attribute, ExpectIdent("an attribute"));
    return ref;
  }

  // retrieve [into NAME] [unique] (targets) [where qual] [sort by refs]
  Result<QuelRetrieveStatement> ParseRetrieve() {
    Advance();  // retrieve
    QuelRetrieveStatement out;
    if (Peek().IsKeyword("into")) {
      Advance();
      IQS_ASSIGN_OR_RETURN(out.into, ExpectDottedIdent("a relation name"));
    }
    if (Peek().IsKeyword("unique")) {
      Advance();
      out.unique = true;
    }
    IQS_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      QuelTarget target;
      // [name =] var.attr — lookahead for the rename form.
      if (Peek().kind == SqlTokenKind::kIdent && Peek(1).IsSymbol("=")) {
        target.name = Advance().text;
        Advance();  // =
      }
      IQS_ASSIGN_OR_RETURN(target.ref, ParseAttrRef());
      out.targets.push_back(std::move(target));
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    IQS_RETURN_IF_ERROR(ExpectSymbol(")"));
    if (Peek().IsKeyword("where")) {
      Advance();
      IQS_ASSIGN_OR_RETURN(out.where, ParseOr());
    }
    if (Peek().IsKeyword("sort")) {
      Advance();
      IQS_RETURN_IF_ERROR(ExpectKeyword("by"));
      while (true) {
        IQS_ASSIGN_OR_RETURN(QuelAttrRef ref, ParseAttrRef());
        out.sort_by.push_back(std::move(ref));
        if (Peek().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    return out;
  }

  // delete r [where qual]
  Result<QuelDeleteStatement> ParseDelete() {
    Advance();  // delete
    QuelDeleteStatement out;
    IQS_ASSIGN_OR_RETURN(out.variable, ExpectIdent("a tuple variable"));
    if (Peek().IsKeyword("where")) {
      Advance();
      IQS_ASSIGN_OR_RETURN(out.where, ParseOr());
    }
    return out;
  }

  // append to NAME (Attr = value, ...)
  Result<QuelAppendStatement> ParseAppend() {
    Advance();  // append
    IQS_RETURN_IF_ERROR(ExpectKeyword("to"));
    QuelAppendStatement out;
    IQS_ASSIGN_OR_RETURN(out.relation, ExpectDottedIdent("a relation name"));
    IQS_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      IQS_ASSIGN_OR_RETURN(std::string attr, ExpectIdent("an attribute"));
      IQS_RETURN_IF_ERROR(ExpectSymbol("="));
      IQS_ASSIGN_OR_RETURN(QuelExpr::Operand value, ParseOperand());
      if (value.is_attr) return Error("append values must be constants");
      out.attributes.push_back(std::move(attr));
      out.values.push_back(std::move(value.constant));
      out.raw.push_back(std::move(value.raw));
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    IQS_RETURN_IF_ERROR(ExpectSymbol(")"));
    return out;
  }

  Result<QuelExprPtr> ParseOr() {
    IQS_ASSIGN_OR_RETURN(QuelExprPtr left, ParseAnd());
    while (Peek().IsKeyword("or")) {
      Advance();
      IQS_ASSIGN_OR_RETURN(QuelExprPtr right, ParseAnd());
      auto node = std::make_shared<QuelExpr>();
      node->kind = QuelExpr::Kind::kOr;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<QuelExprPtr> ParseAnd() {
    IQS_ASSIGN_OR_RETURN(QuelExprPtr left, ParseNot());
    while (Peek().IsKeyword("and")) {
      Advance();
      IQS_ASSIGN_OR_RETURN(QuelExprPtr right, ParseNot());
      auto node = std::make_shared<QuelExpr>();
      node->kind = QuelExpr::Kind::kAnd;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<QuelExprPtr> ParseNot() {
    if (Peek().IsKeyword("not")) {
      Advance();
      IQS_ASSIGN_OR_RETURN(QuelExprPtr inner, ParseNot());
      auto node = std::make_shared<QuelExpr>();
      node->kind = QuelExpr::Kind::kNot;
      node->left = std::move(inner);
      return node;
    }
    if (Peek().IsSymbol("(")) {
      Advance();
      IQS_ASSIGN_OR_RETURN(QuelExprPtr inner, ParseOr());
      IQS_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    return ParseComparison();
  }

  Result<QuelExprPtr> ParseComparison() {
    auto node = std::make_shared<QuelExpr>();
    node->kind = QuelExpr::Kind::kComparison;
    IQS_ASSIGN_OR_RETURN(node->lhs, ParseOperand());
    if (Peek().IsSymbol("=")) {
      node->op = CompareOp::kEq;
    } else if (Peek().IsSymbol("!=")) {
      node->op = CompareOp::kNe;
    } else if (Peek().IsSymbol("<=")) {
      node->op = CompareOp::kLe;
    } else if (Peek().IsSymbol(">=")) {
      node->op = CompareOp::kGe;
    } else if (Peek().IsSymbol("<")) {
      node->op = CompareOp::kLt;
    } else if (Peek().IsSymbol(">")) {
      node->op = CompareOp::kGt;
    } else {
      return Error("expected a comparison operator");
    }
    Advance();
    IQS_ASSIGN_OR_RETURN(node->rhs, ParseOperand());
    return node;
  }

  Result<QuelExpr::Operand> ParseOperand() {
    QuelExpr::Operand out;
    const SqlToken& t = Peek();
    switch (t.kind) {
      case SqlTokenKind::kIdent: {
        out.is_attr = true;
        IQS_ASSIGN_OR_RETURN(out.attr, ParseAttrRef());
        return out;
      }
      case SqlTokenKind::kString:
        out.constant = Value::String(t.text);
        out.raw = t.text;
        Advance();
        return out;
      case SqlTokenKind::kInt: {
        IQS_ASSIGN_OR_RETURN(out.constant,
                             Value::FromText(ValueType::kInt, t.text));
        out.raw = t.text;
        Advance();
        return out;
      }
      case SqlTokenKind::kReal: {
        IQS_ASSIGN_OR_RETURN(out.constant,
                             Value::FromText(ValueType::kReal, t.text));
        out.raw = t.text;
        Advance();
        return out;
      }
      default:
        return Error("expected an attribute reference or constant");
    }
  }

  std::vector<SqlToken> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<QuelStatement> ParseQuelStatement(const std::string& text) {
  IQS_FAILPOINT("quel.parse");
  IQS_ASSIGN_OR_RETURN(std::vector<SqlToken> tokens, LexSql(text));
  QuelParser parser(std::move(tokens));
  return parser.RunSingle();
}

Result<std::vector<QuelStatement>> ParseQuelScript(const std::string& text) {
  IQS_ASSIGN_OR_RETURN(std::vector<SqlToken> tokens, LexSql(text));
  QuelParser parser(std::move(tokens));
  return parser.RunScript();
}

}  // namespace iqs
