#include "dictionary/dictionary_catalog.h"

#include "common/string_util.h"

namespace iqs {

namespace {

Schema RulesSchema() {
  return Schema({{"source", ValueType::kString, false},
                 {"id", ValueType::kInt, false},
                 {"scheme", ValueType::kString, false},
                 {"relation", ValueType::kString, false},
                 {"body", ValueType::kString, false},
                 {"support", ValueType::kInt, false},
                 {"family_complete", ValueType::kInt, false}});
}

void AppendRules(const std::string& source, const RuleSet& rules,
                 Relation& rel) {
  for (const Rule& rule : rules.rules()) {
    rel.AppendUnchecked(Tuple{
        Value::String(source), Value::Int(rule.id),
        Value::String(rule.scheme), Value::String(rule.source_relation),
        Value::String(rule.Body()), Value::Int(rule.support),
        Value::Int(rule.family_complete ? 1 : 0)});
  }
}

}  // namespace

std::vector<std::string> DictionaryCatalogProvider::RelationNames() const {
  return {"sys.rules"};
}

Result<Relation> DictionaryCatalogProvider::Materialize(
    const std::string& name) const {
  if (!EqualsIgnoreCase(name, "sys.rules")) {
    return Status::NotFound("dictionary catalog does not serve '" + name +
                            "'");
  }
  Relation rel(name, RulesSchema());
  AppendRules("declared", dictionary_->declared_rules(), rel);
  // Snapshot: a concurrent re-induction swaps the set under us.
  std::shared_ptr<const RuleSet> induced =
      dictionary_->induced_rules_snapshot();
  if (induced != nullptr) AppendRules("induced", *induced, rel);
  return rel;
}

}  // namespace iqs
