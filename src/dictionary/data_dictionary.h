#ifndef IQS_DICTIONARY_DATA_DICTIONARY_H_
#define IQS_DICTIONARY_DATA_DICTIONARY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dictionary/frame.h"
#include "ker/catalog.h"
#include "relational/database.h"
#include "rules/rule.h"
#include "rules/rule_relation.h"
#include "rules/subsumption.h"

namespace iqs {

// The intelligent (extended) data dictionary (paper §5.1/§5.3): a
// knowledge base holding
//  * the database schema as a hierarchy of frames (built from the KER
//    catalog),
//  * the semantic knowledge: declared with-constraint rules and the rules
//    induced by the ILS,
//  * the active domains (observed [min, max] per attribute) the inference
//    engine clips query conditions with.

// A consistent view of the induced rule base: the shared snapshot plus
// the epoch it was published under. Handing both out under one lock is
// what lets the answer cache key on the epoch without racing a
// re-induction that swaps the set between two reads.
struct RuleBaseVersion {
  std::shared_ptr<const RuleSet> rules;
  uint64_t epoch = 0;
};

class DataDictionary {
 public:
  // `catalog` must outlive the dictionary.
  explicit DataDictionary(const KerCatalog* catalog);

  DataDictionary(const DataDictionary&) = delete;
  DataDictionary& operator=(const DataDictionary&) = delete;

  const KerCatalog& catalog() const { return *catalog_; }

  // ---- frames --------------------------------------------------------------

  // (Re)builds the frame hierarchy from the catalog, propagating slot
  // inheritance down each type hierarchy.
  Status BuildFrames();

  Result<const Frame*> GetFrame(const std::string& name) const;
  std::vector<std::string> FrameNames() const;

  // ---- rules ---------------------------------------------------------------

  // Rules declared in with-constraints (snapshot taken at construction).
  const RuleSet& declared_rules() const { return declared_; }

  // Rules produced by the ILS. The reference stays valid only until the
  // next SetInducedRules — single-threaded convenience; concurrent query
  // paths must hold a snapshot instead.
  const RuleSet& induced_rules() const {
    std::lock_guard<std::mutex> lock(induced_mu_);
    return *induced_;
  }

  // Shared ownership of the current induced rule base: re-induction swaps
  // the set atomically, so in-flight queries keep reading the version
  // they started with (see concurrency_stress_test.cc).
  std::shared_ptr<const RuleSet> induced_rules_snapshot() const {
    std::lock_guard<std::mutex> lock(induced_mu_);
    return induced_;
  }

  // Snapshot plus the epoch it was published under, read atomically.
  RuleBaseVersion induced_rules_version() const {
    std::lock_guard<std::mutex> lock(induced_mu_);
    return RuleBaseVersion{induced_, rule_epoch_};
  }

  // Rule-base epoch: bumped on every successful rule-base install
  // (SetInducedRules, ImportInducedRules) and on active-domain
  // recompute — everything inference derives a description from. A
  // *failed* re-induction keeps the previous set AND the previous epoch,
  // so caches keep treating the retained rules as the version they are.
  uint64_t rule_epoch() const {
    std::lock_guard<std::mutex> lock(induced_mu_);
    return rule_epoch_;
  }

  void SetInducedRules(RuleSet rules) {
    auto fresh = std::make_shared<const RuleSet>(std::move(rules));
    std::lock_guard<std::mutex> lock(induced_mu_);
    induced_ = std::move(fresh);
    ++rule_epoch_;
    induced_db_epoch_.reset();
  }

  // Same, recording the database epoch the rules were induced from. The
  // semantic optimizer's rewrites are data-dependent (they trust the
  // induced families to describe the current rows), so the query
  // processor only rewrites while the database epoch still matches; after
  // a mutation, rewriting pauses until re-induction. Rule bases installed
  // without an epoch (legacy callers, snapshot import) leave it unset,
  // which the processor treats as "induced from the current data".
  void SetInducedRules(RuleSet rules, uint64_t db_epoch) {
    auto fresh = std::make_shared<const RuleSet>(std::move(rules));
    std::lock_guard<std::mutex> lock(induced_mu_);
    induced_ = std::move(fresh);
    ++rule_epoch_;
    induced_db_epoch_ = db_epoch;
  }

  // The database epoch the current induced rules were derived from, when
  // the installer recorded one.
  std::optional<uint64_t> induced_db_epoch() const {
    std::lock_guard<std::mutex> lock(induced_mu_);
    return induced_db_epoch_;
  }

  // Declared followed by induced rules, renumbered 1..n — what the
  // inference engine works with.
  RuleSet AllRules() const;

  // ---- active domains --------------------------------------------------

  // Scans every relation of `db` and records, per attribute, the observed
  // [min, max]. Both bare ("Displacement") and qualified
  // ("CLASS.Displacement") spellings are served; attributes with the same
  // bare name in several relations merge to the union interval (a wider
  // clip domain is conservative for forward inference).
  Status ComputeActiveDomains(const Database& db);

  const std::vector<AttributeDomain>& active_domains() const {
    return active_domains_;
  }

  // ---- persistence (rule relations, paper §5.2.2) ------------------------

  // Encodes the induced rules as rule relations for relocation with the
  // database.
  Result<RuleRelations> ExportInducedRules() const;

  // Replaces the induced rules with the decoded content, re-attaching
  // isa readings from the catalog's derivation specifications.
  Status ImportInducedRules(const RuleRelations& relations);

  std::string ToString() const;

 private:
  const KerCatalog* catalog_;
  std::map<std::string, Frame> frames_;  // lower-cased key
  std::vector<std::string> frame_order_;
  RuleSet declared_;
  mutable std::mutex induced_mu_;
  std::shared_ptr<const RuleSet> induced_ = std::make_shared<const RuleSet>();
  uint64_t rule_epoch_ = 0;  // guarded by induced_mu_
  // Database epoch the induced rules were derived from, when known.
  // Guarded by induced_mu_.
  std::optional<uint64_t> induced_db_epoch_;
  std::vector<AttributeDomain> active_domains_;
};

}  // namespace iqs

#endif  // IQS_DICTIONARY_DATA_DICTIONARY_H_
