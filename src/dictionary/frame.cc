#include "dictionary/frame.h"

#include "common/string_util.h"

namespace iqs {

const FrameSlot* Frame::FindSlot(const std::string& slot_name) const {
  for (const FrameSlot& slot : slots) {
    if (EqualsIgnoreCase(slot.name, slot_name)) return &slot;
  }
  return nullptr;
}

std::string Frame::ToString() const {
  std::string out = "frame " + name;
  if (!parent.empty()) out += " isa " + parent;
  if (is_relationship) out += "  (relationship)";
  out += "\n";
  if (derivation.has_value()) {
    out += "  derivation: " + derivation->ToConditionString() + "\n";
  }
  for (const FrameSlot& slot : slots) {
    out += slot.is_key ? "  slot key " : "  slot     ";
    out += PadRight(slot.name, 16) + " domain " + slot.domain;
    if (!slot.inherited_from.empty()) {
      out += "  (inherited from " + slot.inherited_from + ")";
    }
    out += "\n";
  }
  if (!children.empty()) {
    out += "  contains " + Join(children, ", ") + "\n";
  }
  return out;
}

}  // namespace iqs
