#ifndef IQS_DICTIONARY_FRAME_H_
#define IQS_DICTIONARY_FRAME_H_

#include <optional>
#include <string>
#include <vector>

#include "rules/clause.h"

namespace iqs {

// One slot of a frame: an attribute with its domain, annotated with the
// frame it was inherited from (empty for own slots). Inheritance follows
// the paper §2: "A subtype inherits all the properties of its supertypes,
// unless some of the properties have been redefined in the subtype."
struct FrameSlot {
  std::string name;
  std::string domain;
  bool is_key = false;
  std::string inherited_from;  // defining supertype; empty when own

  friend bool operator==(const FrameSlot&, const FrameSlot&) = default;
};

// The frame-based knowledge representation of the extended data dictionary
// (paper §5.3): "Each object type is represented as a frame and the object
// hierarchy is represented as a hierarchy of frames."
struct Frame {
  std::string name;
  std::string parent;  // supertype frame; empty for roots
  std::vector<std::string> children;
  std::vector<FrameSlot> slots;  // own slots first, then inherited
  std::optional<Clause> derivation;  // subtype derivation specification
  bool is_relationship = false;

  const FrameSlot* FindSlot(const std::string& slot_name) const;

  std::string ToString() const;
};

}  // namespace iqs

#endif  // IQS_DICTIONARY_FRAME_H_
