#ifndef IQS_DICTIONARY_DICTIONARY_CATALOG_H_
#define IQS_DICTIONARY_DICTIONARY_CATALOG_H_

#include "dictionary/data_dictionary.h"
#include "relational/virtual_relation.h"

namespace iqs {

// Catalog provider for the KER dictionary (DESIGN.md §11): sys.rules has
// one row per declared and induced rule — the rule base queried with the
// engine it powers, which is the paper's own premise made literal.
class DictionaryCatalogProvider : public VirtualRelationProvider {
 public:
  // `dictionary` must outlive the provider (both owned by IqsSystem).
  explicit DictionaryCatalogProvider(const DataDictionary* dictionary)
      : dictionary_(dictionary) {}

  std::vector<std::string> RelationNames() const override;
  Result<Relation> Materialize(const std::string& name) const override;

 private:
  const DataDictionary* dictionary_;
};

}  // namespace iqs

#endif  // IQS_DICTIONARY_DICTIONARY_CATALOG_H_
