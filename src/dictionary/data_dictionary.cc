#include "dictionary/data_dictionary.h"

#include "common/string_util.h"
#include "fault/failpoint.h"

namespace iqs {

DataDictionary::DataDictionary(const KerCatalog* catalog)
    : catalog_(catalog), declared_(catalog->DeclaredRules()) {}

Status DataDictionary::BuildFrames() {
  frames_.clear();
  frame_order_.clear();
  const TypeHierarchy& hierarchy = catalog_->hierarchy();
  for (const std::string& type_name : hierarchy.AllTypes()) {
    IQS_ASSIGN_OR_RETURN(const TypeNode* node, hierarchy.Get(type_name));
    Frame frame;
    frame.name = node->name;
    frame.parent = node->parent;
    frame.children = node->children;
    frame.derivation = node->derivation;
    // Own slots come from the object type definition if one exists (roots
    // always have one; subtypes usually do not).
    auto def = catalog_->GetObjectType(type_name);
    if (def.ok()) {
      for (const KerAttribute& a : (*def)->attributes) {
        frame.slots.push_back(FrameSlot{a.name, a.domain, a.is_key, ""});
      }
      frame.is_relationship =
          !(*def)->ObjectDomainAttributes(catalog_->domains()).empty();
    }
    // Inherited slots from every supertype, nearest first; a same-named
    // own slot redefines (shadows) the inherited one.
    IQS_ASSIGN_OR_RETURN(std::vector<std::string> supers,
                         hierarchy.SupertypesOf(type_name));
    for (const std::string& super : supers) {
      auto super_def = catalog_->GetObjectType(super);
      if (!super_def.ok()) continue;
      for (const KerAttribute& a : (*super_def)->attributes) {
        bool shadowed = false;
        for (const FrameSlot& existing : frame.slots) {
          if (EqualsIgnoreCase(existing.name, a.name)) {
            shadowed = true;
            break;
          }
        }
        if (!shadowed) {
          frame.slots.push_back(
              FrameSlot{a.name, a.domain, a.is_key, (*super_def)->name});
        }
      }
    }
    frame_order_.push_back(frame.name);
    frames_[ToLower(frame.name)] = std::move(frame);
  }
  return Status::Ok();
}

Result<const Frame*> DataDictionary::GetFrame(const std::string& name) const {
  IQS_FAILPOINT("dict.frame_lookup");
  auto it = frames_.find(ToLower(name));
  if (it == frames_.end()) {
    return Status::NotFound("no frame named '" + name + "'");
  }
  return &it->second;
}

std::vector<std::string> DataDictionary::FrameNames() const {
  return frame_order_;
}

RuleSet DataDictionary::AllRules() const {
  RuleSet out;
  for (const Rule& r : declared_.rules()) {
    Rule copy = r;
    copy.id = 0;
    out.Add(std::move(copy));
  }
  std::shared_ptr<const RuleSet> induced = induced_rules_snapshot();
  for (const Rule& r : induced->rules()) {
    Rule copy = r;
    copy.id = 0;
    out.Add(std::move(copy));
  }
  return out;
}

Status DataDictionary::ComputeActiveDomains(const Database& db) {
  active_domains_.clear();
  auto merge = [this](const std::string& name, const Value& lo,
                      const Value& hi) {
    for (AttributeDomain& d : active_domains_) {
      if (EqualsIgnoreCase(d.attribute, name)) {
        if (lo.ComparableWith(d.lo) && lo < d.lo) d.lo = lo;
        if (hi.ComparableWith(d.hi) && hi > d.hi) d.hi = hi;
        return;
      }
    }
    active_domains_.push_back(AttributeDomain{name, lo, hi});
  };
  for (const std::string& rel_name : db.RelationNames()) {
    IQS_ASSIGN_OR_RETURN(const Relation* rel, db.Get(rel_name));
    // Zone-map fast path (DESIGN.md §14): fold each column's [min, max]
    // from the cached snapshot's per-block stats instead of rescanning
    // every row. ColumnMinMax reproduces ActiveDomain's result exactly,
    // so the clip domains are identical either way.
    std::shared_ptr<const ColumnarRelation> snapshot;
    if (ColumnarEnabled()) {
      auto snap = db.ColumnarSnapshot(rel_name);
      if (snap.ok()) snapshot = std::move(*snap);
    }
    for (size_t i = 0; i < rel->schema().size(); ++i) {
      const std::string& attr = rel->schema().attribute(i).name;
      auto domain = snapshot != nullptr ? snapshot->ColumnMinMax(i)
                                        : rel->ActiveDomain(attr);
      if (!domain.ok()) continue;  // empty column
      merge(rel->name() + "." + attr, domain->first, domain->second);
      merge(attr, domain->first, domain->second);
    }
  }
  {
    // Fresh clip domains change what inference derives even with the
    // rule set untouched; retire cached answers built on the old ones.
    std::lock_guard<std::mutex> lock(induced_mu_);
    ++rule_epoch_;
  }
  return Status::Ok();
}

Result<RuleRelations> DataDictionary::ExportInducedRules() const {
  return EncodeRules(*induced_rules_snapshot());
}

Status DataDictionary::ImportInducedRules(const RuleRelations& relations) {
  IQS_ASSIGN_OR_RETURN(RuleSet decoded, DecodeRules(relations));
  // Re-attach isa readings for rules whose metadata lacks them (e.g. when
  // only the paper's two relations travelled with the data).
  RuleSet rebuilt;
  for (const Rule& r : decoded.rules()) {
    Rule copy = r;
    if (!copy.rhs.HasIsaReading()) {
      auto type_name =
          catalog_->hierarchy().FindByDerivation(copy.rhs.clause);
      if (type_name.ok()) {
        copy.rhs.isa_type = *type_name;
        std::string qualifier = copy.rhs.clause.Qualifier();
        copy.rhs.isa_variable =
            (!qualifier.empty() && qualifier.size() <= 2) ? qualifier : "x";
      }
    }
    rebuilt.Add(std::move(copy));
  }
  SetInducedRules(std::move(rebuilt));
  return Status::Ok();
}

std::string DataDictionary::ToString() const {
  std::string out = "=== Intelligent Data Dictionary ===\n";
  out += "-- frames --\n";
  for (const std::string& name : frame_order_) {
    out += frames_.at(ToLower(name)).ToString();
  }
  out += "-- declared rules --\n" + declared_.ToString();
  out += "-- induced rules --\n" + induced_rules_snapshot()->ToString();
  return out;
}

}  // namespace iqs
