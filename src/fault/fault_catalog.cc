#include "fault/fault_catalog.h"

#include "common/string_util.h"
#include "fault/degrade.h"
#include "fault/failpoint.h"

namespace iqs {
namespace fault {

namespace {

Schema FailpointsSchema() {
  return Schema({{"name", ValueType::kString, false},
                 {"policy", ValueType::kString, false},
                 {"armed", ValueType::kInt, false},
                 {"spec", ValueType::kString, false},
                 {"hits", ValueType::kInt, false},
                 {"fires", ValueType::kInt, false},
                 {"description", ValueType::kString, false}});
}

Relation MaterializeFailpoints(const std::string& name) {
  Relation rel(name, FailpointsSchema());
  for (const SiteInfo& site : FailpointRegistry::Global().List()) {
    rel.AppendUnchecked(
        Tuple{Value::String(site.name), Value::String(PolicyName(site.policy)),
              Value::Int(site.spec.empty() ? 0 : 1), Value::String(site.spec),
              Value::Int(static_cast<int64_t>(site.hits)),
              Value::Int(static_cast<int64_t>(site.fires)),
              Value::String(site.description)});
  }
  return rel;
}

Schema DegradationsSchema() {
  return Schema({{"seq", ValueType::kInt, false},
                 {"unix_micros", ValueType::kInt, false},
                 {"stage", ValueType::kString, false},
                 {"action", ValueType::kString, false},
                 {"reason", ValueType::kString, false}});
}

Relation MaterializeDegradations(const std::string& name) {
  Relation rel(name, DegradationsSchema());
  for (const RecordedDegradation& r : GlobalDegradations().Recent()) {
    rel.AppendUnchecked(Tuple{Value::Int(static_cast<int64_t>(r.seq)),
                              Value::Int(r.unix_micros),
                              Value::String(r.event.stage),
                              Value::String(DegradeActionName(r.event.action)),
                              Value::String(r.event.reason)});
  }
  return rel;
}

}  // namespace

std::vector<std::string> FaultCatalogProvider::RelationNames() const {
  return {"sys.failpoints", "sys.degradations"};
}

Result<Relation> FaultCatalogProvider::Materialize(
    const std::string& name) const {
  if (EqualsIgnoreCase(name, "sys.failpoints")) {
    return MaterializeFailpoints(name);
  }
  if (EqualsIgnoreCase(name, "sys.degradations")) {
    return MaterializeDegradations(name);
  }
  return Status::NotFound("fault catalog does not serve '" + name + "'");
}

}  // namespace fault
}  // namespace iqs
