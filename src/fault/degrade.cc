#include "fault/degrade.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace iqs {
namespace fault {

const char* DegradeActionName(DegradeAction action) {
  switch (action) {
    case DegradeAction::kExtensionalOnly:
      return "extensional-fallback";
    case DegradeAction::kSkipRule:
      return "skip-rule";
    case DegradeAction::kRetry:
      return "retry";
    case DegradeAction::kSerialFallback:
      return "serial-fallback";
    case DegradeAction::kSnapshotFallback:
      return "snapshot-fallback";
    case DegradeAction::kQuarantine:
      return "quarantine";
    case DegradeAction::kSkipRewrite:
      return "skip-rewrite";
  }
  return "unknown";
}

std::string DegradationEvent::ToString() const {
  return stage + ": " + DegradeActionName(action) + " (" + reason + ")";
}

void RecordDegradation(const DegradationEvent& event) {
  IQS_COUNTER_INC("fault.degraded");
  obs::GlobalMetrics().GetCounter("fault.degraded." + event.stage)->Increment();
  IQS_SPAN_ANNOTATE("degraded", event.stage + ": " + event.reason);
  GlobalDegradations().Push(event);
}

void DegradationLog::Push(const DegradationEvent& event) {
  int64_t now = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::system_clock::now().time_since_epoch())
                    .count();
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(RecordedDegradation{next_seq_++, now, event});
  if (ring_.size() > capacity_) {
    ring_.erase(ring_.begin(),
                ring_.begin() + static_cast<long>(ring_.size() - capacity_));
  }
}

std::vector<RecordedDegradation> DegradationLog::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_;
}

uint64_t DegradationLog::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

void DegradationLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

DegradationLog& GlobalDegradations() {
  static DegradationLog* log = new DegradationLog();
  return *log;
}

bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

void NoteRetry(const char* op, int attempt) {
  IQS_COUNTER_INC("fault.retry.attempts");
  obs::GlobalMetrics()
      .GetCounter(std::string("fault.retry.") + op)
      ->Increment();
  int64_t micros = std::min<int64_t>(200LL << (attempt - 1), 5000);
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

Status RetryTransient(const char* op, int max_attempts,
                      const std::function<Status()>& fn) {
  for (int attempt = 1;; ++attempt) {
    Status status = fn();
    if (status.ok() || !IsTransient(status) || attempt >= max_attempts) {
      if (!status.ok() && IsTransient(status)) {
        IQS_COUNTER_INC("fault.retry.exhausted");
      }
      return status;
    }
    NoteRetry(op, attempt);
  }
}

ErrorBudget::ErrorBudget(size_t window, double threshold)
    : window_(window == 0 ? 1 : window),
      threshold_(threshold),
      ring_(window_, kOk) {}

void ErrorBudget::Record(Outcome outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (outcome) {
    case kOk:
      ++ok_;
      break;
    case kDegraded:
      ++degraded_;
      break;
    case kFailed:
      ++failed_;
      break;
  }
  if (filled_ == window_ && ring_[pos_] != kOk) --bad_in_window_;
  ring_[pos_] = static_cast<uint8_t>(outcome);
  if (outcome != kOk) ++bad_in_window_;
  pos_ = (pos_ + 1) % window_;
  if (filled_ < window_) ++filled_;
  IQS_GAUGE_SET("fault.budget.window_bad_permille",
                filled_ == 0 ? 0 : (1000 * bad_in_window_) / filled_);
}

ErrorBudget::Snapshot ErrorBudget::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.ok = ok_;
  snap.degraded = degraded_;
  snap.failed = failed_;
  snap.window_ratio =
      filled_ == 0 ? 0.0
                   : static_cast<double>(bad_in_window_) /
                         static_cast<double>(filled_);
  snap.exhausted = snap.window_ratio >= threshold_;
  return snap;
}

std::string ErrorBudget::Snapshot::ToString() const {
  return "queries ok=" + std::to_string(ok) +
         " degraded=" + std::to_string(degraded) +
         " failed=" + std::to_string(failed) + "; window bad ratio " +
         FormatDouble(window_ratio) + (exhausted ? " (budget exhausted)" : "");
}

void ErrorBudget::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(ring_.begin(), ring_.end(), static_cast<uint8_t>(kOk));
  pos_ = 0;
  filled_ = 0;
  bad_in_window_ = 0;
  ok_ = 0;
  degraded_ = 0;
  failed_ = 0;
}

ErrorBudget& GlobalErrorBudget() {
  static ErrorBudget* budget = new ErrorBudget();
  return *budget;
}

}  // namespace fault
}  // namespace iqs
