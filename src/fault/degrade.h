#ifndef IQS_FAULT_DEGRADE_H_
#define IQS_FAULT_DEGRADE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace iqs {
namespace fault {

// Graceful-degradation vocabulary for the query pipeline. A stage that
// absorbs a fault instead of aborting the query records a
// DegradationEvent; events ride on QueryResult (so the formatter can
// annotate the answer) and flow into the obs metrics/trace layer via
// RecordDegradation (so EXPLAIN ANALYZE shows what was skipped).

enum class DegradeAction {
  kExtensionalOnly,   // intensional answer dropped, extensional kept
  kSkipRule,          // one rule's firing skipped, inference continued
  kRetry,             // transient fault absorbed by a retry
  kSerialFallback,    // parallel region re-executed serially
  kSnapshotFallback,  // damaged snapshot skipped, previous intact one loaded
  kQuarantine,        // one corrupt non-rule relation skipped on load
  kSkipRewrite,       // semantic rewrite pass skipped, query ran unoptimized
};

const char* DegradeActionName(DegradeAction action);

struct DegradationEvent {
  std::string stage;   // "rulebase", "describe", "inference", "rule-match",
                       // "parallel", "persistence"
  DegradeAction action = DegradeAction::kExtensionalOnly;
  std::string reason;  // the absorbed Status message

  // "inference: extensional-fallback (inference engine offline)".
  std::string ToString() const;
};

// Counts the event in the metrics registry ("fault.degraded",
// "fault.degraded.<stage>"), annotates the innermost open trace span
// ("degraded" = "<stage>: <reason>"), and lands the event in the
// GlobalDegradations() ring (the backing store of sys.degradations).
void RecordDegradation(const DegradationEvent& event);

// One entry of the recent-degradations ring: the event plus when it was
// recorded and its position in the lifetime sequence.
struct RecordedDegradation {
  uint64_t seq = 0;         // monotone from 1, never reset by eviction
  int64_t unix_micros = 0;  // wall-clock record time
  DegradationEvent event;
};

// Bounded ring of the most recent degradation events.
class DegradationLog {
 public:
  explicit DegradationLog(size_t capacity = 256) : capacity_(capacity) {}

  void Push(const DegradationEvent& event);
  // Oldest to newest.
  std::vector<RecordedDegradation> Recent() const;
  uint64_t total() const;  // lifetime count
  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<RecordedDegradation> ring_;  // used as a deque via erase
  uint64_t next_seq_ = 1;
};

// The ring RecordDegradation reports into.
DegradationLog& GlobalDegradations();

// True for faults worth retrying (StatusCode::kUnavailable).
bool IsTransient(const Status& status);

// Runs `fn` up to `max_attempts` times, retrying only transient faults,
// with deterministic exponential backoff (200us * 2^attempt, capped at
// 5ms — failpoint tests stay fast, real I/O still decorrelates). Counts
// "fault.retry.attempts" / "fault.retry.exhausted".
Status RetryTransient(const char* op, int max_attempts,
                      const std::function<Status()>& fn);

// Counts one retry of `op` and sleeps the attempt's backoff. Shared by
// RetryTransient and the Result<T> template below.
void NoteRetry(const char* op, int attempt);

template <typename T, typename Fn>
Result<T> RetryTransientResult(const char* op, int max_attempts, Fn&& fn) {
  for (int attempt = 1;; ++attempt) {
    Result<T> result = fn();
    if (result.ok() || !IsTransient(result.status()) ||
        attempt >= max_attempts) {
      return result;
    }
    NoteRetry(op, attempt);
  }
}

// Error budget over a sliding window of query outcomes: how much of
// recent traffic was served degraded or failed outright. The processor
// records every query; the shell's `failpoints` command and tests read
// the snapshot. Exhaustion does not gate queries — extensional answers
// are always worth serving — it is the operator signal that the
// intensional layer is burning its budget.
class ErrorBudget {
 public:
  explicit ErrorBudget(size_t window = 128, double threshold = 0.5);

  void RecordOk() { Record(kOk); }
  void RecordDegraded() { Record(kDegraded); }
  void RecordFailed() { Record(kFailed); }

  struct Snapshot {
    uint64_t ok = 0;        // lifetime totals
    uint64_t degraded = 0;
    uint64_t failed = 0;
    double window_ratio = 0.0;  // degraded+failed fraction of the window
    bool exhausted = false;     // window_ratio >= threshold
    std::string ToString() const;
  };
  Snapshot snapshot() const;
  void Reset();

 private:
  enum Outcome : uint8_t { kOk = 0, kDegraded = 1, kFailed = 2 };
  void Record(Outcome outcome);

  const size_t window_;
  const double threshold_;
  mutable std::mutex mu_;
  std::vector<uint8_t> ring_;
  size_t pos_ = 0;
  size_t filled_ = 0;
  size_t bad_in_window_ = 0;
  uint64_t ok_ = 0;
  uint64_t degraded_ = 0;
  uint64_t failed_ = 0;
};

// The budget the query processor reports into.
ErrorBudget& GlobalErrorBudget();

}  // namespace fault
}  // namespace iqs

#endif  // IQS_FAULT_DEGRADE_H_
