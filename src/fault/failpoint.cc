#include "fault/failpoint.h"

#include <cstdlib>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace iqs {
namespace fault {

namespace {

// Every wired injection site, with the degradation policy its stage
// implements. The fault matrix test iterates this list (via List()) and
// asserts each policy's observable outcome, so adding a site here without
// a driver there fails the build's test pass.
struct ManifestEntry {
  const char* name;
  Policy policy;
  const char* description;
};

constexpr ManifestEntry kManifest[] = {
    {"sql.parse", Policy::kFailFast, "SQL SELECT parser entry"},
    {"quel.parse", Policy::kFailFast, "QUEL parser entry"},
    {"ddl.parse", Policy::kFailFast, "KER DDL parser entry"},
    {"dict.frame_lookup", Policy::kFailFast, "dictionary frame lookup"},
    {"dict.rulebase_snapshot", Policy::kDegradeExtensional,
     "induced-rule-base snapshot load"},
    {"ils.induce", Policy::kKeepPrevious, "ILS induction run"},
    {"infer.match", Policy::kSkipAndLog, "per-rule match/fire step"},
    {"infer.fire", Policy::kDegradeExtensional, "inference engine entry"},
    {"exec.scan", Policy::kRetryTransient, "relational executor entry"},
    {"exec.dispatch", Policy::kSerialFallback, "parallel region dispatch"},
    {"exec.pool.batch", Policy::kSerialFallback, "thread-pool batch submit"},
    {"persist.save", Policy::kRetryTransient, "system save I/O"},
    {"persist.load", Policy::kRetryTransient, "system load I/O"},
    {"persist.crash.before_rename", Policy::kSnapshotFallback,
     "saver killed before the snapshot directory rename"},
    {"persist.crash.after_rename", Policy::kSnapshotFallback,
     "saver killed between snapshot rename and CURRENT flip"},
    {"persist.torn_write", Policy::kSnapshotFallback,
     "snapshot file written short (torn write)"},
    {"persist.corrupt", Policy::kSnapshotFallback,
     "snapshot file bit-flipped during write"},
    {"cache.lookup", Policy::kCacheBypass, "query-cache lookup"},
    {"cache.insert", Policy::kCacheBypass, "query-cache insert"},
    {"sqo.rewrite", Policy::kSkipRewrite, "semantic rewrite pass"},
    {"net.accept", Policy::kSkipAndLog,
     "listener accept of one inbound connection"},
    {"net.frame.read", Policy::kFailFast,
     "connection frame read (torn/faulted request stream)"},
    {"net.frame.write", Policy::kSkipAndLog,
     "connection frame write (response send)"},
    {"net.overload", Policy::kFailFast,
     "server admission-control check"},
    {"exec.slow_block", Policy::kCancelQuery,
     "governance checkpoint stall (sleep(checkpoint,ms)) — makes a query "
     "overrun its deadline"},
    {"exec.alloc_spike", Policy::kCancelQuery,
     "governance allocation spike (alloc(checkpoint,kb)) — makes a query "
     "blow its memory budget"},
};

Result<StatusCode> CodeFromName(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "unavailable") return StatusCode::kUnavailable;
  if (lower == "internal") return StatusCode::kInternal;
  if (lower == "notfound") return StatusCode::kNotFound;
  if (lower == "invalid" || lower == "invalidargument") {
    return StatusCode::kInvalidArgument;
  }
  if (lower == "parse" || lower == "parseerror") return StatusCode::kParseError;
  if (lower == "type" || lower == "typeerror") return StatusCode::kTypeError;
  if (lower == "constraint" || lower == "constraintviolation") {
    return StatusCode::kConstraintViolation;
  }
  if (lower == "exists" || lower == "alreadyexists") {
    return StatusCode::kAlreadyExists;
  }
  if (lower == "corruption" || lower == "corrupt") {
    return StatusCode::kCorruption;
  }
  if (lower == "overloaded") return StatusCode::kOverloaded;
  if (lower == "deadline" || lower == "deadlineexceeded") {
    return StatusCode::kDeadlineExceeded;
  }
  if (lower == "cancelled" || lower == "canceled") {
    return StatusCode::kCancelled;
  }
  if (lower == "resource" || lower == "resourceexhausted") {
    return StatusCode::kResourceExhausted;
  }
  return Status::InvalidArgument("unknown failpoint error code '" + name +
                                 "'");
}

// "name(args)" -> args, or error when the spelling does not match.
Result<std::string> ParenArgs(const std::string& text,
                              const std::string& name) {
  if (text.size() < name.size() + 2 || text.compare(0, name.size(), name) != 0 ||
      text[name.size()] != '(' || text.back() != ')') {
    return Status::InvalidArgument("malformed failpoint clause '" + text +
                                   "'");
  }
  return text.substr(name.size() + 1, text.size() - name.size() - 2);
}

Status ParseTrigger(const std::string& text, FailpointSpec* spec) {
  if (text == "always") {
    spec->trigger = FailpointSpec::Trigger::kAlways;
    return Status::Ok();
  }
  if (text == "once") {
    spec->trigger = FailpointSpec::Trigger::kOnce;
    return Status::Ok();
  }
  if (StartsWith(text, "after(") || StartsWith(text, "times(")) {
    bool after = StartsWith(text, "after(");
    IQS_ASSIGN_OR_RETURN(std::string args,
                         ParenArgs(text, after ? "after" : "times"));
    char* end = nullptr;
    long n = std::strtol(args.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || n < 0) {
      return Status::InvalidArgument("bad count in failpoint trigger '" +
                                     text + "'");
    }
    spec->trigger = after ? FailpointSpec::Trigger::kAfter
                          : FailpointSpec::Trigger::kTimes;
    spec->n = static_cast<uint64_t>(n);
    return Status::Ok();
  }
  if (StartsWith(text, "prob(")) {
    IQS_ASSIGN_OR_RETURN(std::string args, ParenArgs(text, "prob"));
    std::vector<std::string> parts = Split(args, ',');
    if (parts.size() != 2) {
      return Status::InvalidArgument(
          "prob trigger needs (probability, seed): '" + text + "'");
    }
    char* end = nullptr;
    double p = std::strtod(parts[0].c_str(), &end);
    if (end == nullptr || *end != '\0' || p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("bad probability in '" + text + "'");
    }
    long seed = std::strtol(parts[1].c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || seed < 0) {
      return Status::InvalidArgument("bad seed in '" + text + "'");
    }
    spec->trigger = FailpointSpec::Trigger::kProb;
    spec->probability = p;
    spec->seed = static_cast<uint32_t>(seed);
    return Status::Ok();
  }
  return Status::InvalidArgument("unknown failpoint trigger '" + text + "'");
}

}  // namespace

const char* PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kFailFast:
      return "fail-fast";
    case Policy::kRetryTransient:
      return "retry-transient";
    case Policy::kDegradeExtensional:
      return "extensional-fallback";
    case Policy::kSkipAndLog:
      return "skip-and-log";
    case Policy::kSerialFallback:
      return "serial-fallback";
    case Policy::kKeepPrevious:
      return "keep-previous";
    case Policy::kCacheBypass:
      return "cache-bypass";
    case Policy::kSnapshotFallback:
      return "snapshot-fallback";
    case Policy::kSkipRewrite:
      return "skip-rewrite";
    case Policy::kCancelQuery:
      return "cancel-query";
  }
  return "unknown";
}

Result<FailpointSpec> FailpointSpec::Parse(const std::string& text) {
  std::string trimmed(StripWhitespace(text));
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty failpoint spec");
  }
  FailpointSpec spec;
  spec.text = trimmed;
  std::string action = trimmed;
  // The first ':' outside parentheses separates trigger from action —
  // "after(2):error(parse)" splits at the colon, not inside "after(2)".
  size_t colon = std::string::npos;
  int depth = 0;
  for (size_t i = 0; i < trimmed.size(); ++i) {
    char c = trimmed[i];
    if (c == '(') {
      ++depth;
    } else if (c == ')') {
      --depth;
    } else if (c == ':' && depth == 0) {
      colon = i;
      break;
    }
  }
  if (colon != std::string::npos) {
    IQS_RETURN_IF_ERROR(ParseTrigger(
        std::string(StripWhitespace(trimmed.substr(0, colon))), &spec));
    action = std::string(StripWhitespace(trimmed.substr(colon + 1)));
  }
  if (action == "crash") {
    spec.action = Action::kCrash;
    return spec;
  }
  if (StartsWith(action, "torn(")) {
    IQS_ASSIGN_OR_RETURN(std::string args, ParenArgs(action, "torn"));
    size_t comma = args.rfind(',');
    if (comma == std::string::npos) {
      return Status::InvalidArgument(
          "torn action needs (file, bytes): '" + action + "'");
    }
    spec.file = std::string(StripWhitespace(args.substr(0, comma)));
    std::string count(StripWhitespace(args.substr(comma + 1)));
    char* end = nullptr;
    long bytes = std::strtol(count.c_str(), &end, 10);
    if (spec.file.empty() || end == nullptr || *end != '\0' || bytes < 0) {
      return Status::InvalidArgument(
          "torn action needs (file, bytes): '" + action + "'");
    }
    spec.action = Action::kTornWrite;
    spec.bytes = static_cast<uint64_t>(bytes);
    return spec;
  }
  if (StartsWith(action, "sleep(") || StartsWith(action, "alloc(")) {
    bool sleep = StartsWith(action, "sleep(");
    IQS_ASSIGN_OR_RETURN(std::string args,
                         ParenArgs(action, sleep ? "sleep" : "alloc"));
    size_t comma = args.rfind(',');
    if (comma == std::string::npos) {
      return Status::InvalidArgument(
          std::string(sleep ? "sleep" : "alloc") +
          " action needs (checkpoint, " + (sleep ? "ms" : "kb") + "): '" +
          action + "'");
    }
    spec.file = std::string(StripWhitespace(args.substr(0, comma)));
    std::string count(StripWhitespace(args.substr(comma + 1)));
    char* end = nullptr;
    long amount = std::strtol(count.c_str(), &end, 10);
    if (spec.file.empty() || end == nullptr || *end != '\0' || amount < 0) {
      return Status::InvalidArgument(
          std::string(sleep ? "sleep" : "alloc") +
          " action needs (checkpoint, " + (sleep ? "ms" : "kb") + "): '" +
          action + "'");
    }
    spec.action = sleep ? Action::kSleep : Action::kAlloc;
    spec.bytes = static_cast<uint64_t>(amount);
    return spec;
  }
  if (StartsWith(action, "corrupt(")) {
    IQS_ASSIGN_OR_RETURN(std::string args, ParenArgs(action, "corrupt"));
    spec.file = std::string(StripWhitespace(args));
    if (spec.file.empty()) {
      return Status::InvalidArgument("corrupt action needs a file name: '" +
                                     action + "'");
    }
    spec.action = Action::kCorruptWrite;
    return spec;
  }
  IQS_ASSIGN_OR_RETURN(std::string args, ParenArgs(action, "error"));
  size_t comma = args.find(',');
  std::string code_name =
      std::string(StripWhitespace(comma == std::string::npos
                                      ? args
                                      : args.substr(0, comma)));
  IQS_ASSIGN_OR_RETURN(spec.code, CodeFromName(code_name));
  if (comma != std::string::npos) {
    spec.message = std::string(StripWhitespace(args.substr(comma + 1)));
  }
  return spec;
}

bool Site::EvalTriggerLocked() {
  ++evals_;
  switch (spec_.trigger) {
    case FailpointSpec::Trigger::kAlways:
      return true;
    case FailpointSpec::Trigger::kOnce:
      // Spent after the first evaluation either way.
      armed_.store(false, std::memory_order_release);
      return evals_ == 1;
    case FailpointSpec::Trigger::kAfter:
      return evals_ > spec_.n;
    case FailpointSpec::Trigger::kTimes:
      return evals_ <= spec_.n;
    case FailpointSpec::Trigger::kProb:
      // mt19937 output is standardized, so the draw sequence — and thus
      // which hits fire — is identical across platforms for a fixed seed.
      return static_cast<double>(rng_() % 1000000) < spec_.probability * 1e6;
  }
  return false;
}

void Site::NoteFireLocked() {
  fires_.fetch_add(1, std::memory_order_relaxed);
  IQS_COUNTER_INC("fault.fired");
  obs::GlobalMetrics().GetCounter("fault.fired." + name_)->Increment();
}

Status Site::Hit() {
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (!armed_.load(std::memory_order_acquire)) return Status::Ok();
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return Status::Ok();
  if (spec_.action == FailpointSpec::Action::kTornWrite ||
      spec_.action == FailpointSpec::Action::kCorruptWrite ||
      spec_.action == FailpointSpec::Action::kSleep ||
      spec_.action == FailpointSpec::Action::kAlloc) {
    // Write and governance faults only fire from their dedicated paths
    // (HitForWrite / HitForCheckpoint); ordinary hits do not consume the
    // trigger.
    return Status::Ok();
  }
  if (!EvalTriggerLocked()) return Status::Ok();
  NoteFireLocked();
  if (spec_.action == FailpointSpec::Action::kCrash) {
    // Power cut: no destructors, no stream flush. Whatever bytes the OS
    // already has are whatever the recovery path gets.
    std::_Exit(kCrashExitCode);
  }
  std::string msg = spec_.message.empty() ? "failpoint '" + name_ + "' fired"
                                          : spec_.message;
  return Status(spec_.code, std::move(msg));
}

WriteFault Site::HitForWrite(const std::string& file_name) {
  hits_.fetch_add(1, std::memory_order_relaxed);
  WriteFault fault;
  if (!armed_.load(std::memory_order_acquire)) return fault;
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return fault;
  bool torn = spec_.action == FailpointSpec::Action::kTornWrite;
  bool corrupt = spec_.action == FailpointSpec::Action::kCorruptWrite;
  if (!torn && !corrupt) return fault;
  if (ToLower(spec_.file) != ToLower(file_name)) return fault;
  if (!EvalTriggerLocked()) return fault;
  NoteFireLocked();
  fault.kind = torn ? WriteFault::Kind::kTorn : WriteFault::Kind::kCorrupt;
  fault.bytes = spec_.bytes;
  return fault;
}

CheckpointFault Site::HitForCheckpoint(const std::string& checkpoint) {
  hits_.fetch_add(1, std::memory_order_relaxed);
  CheckpointFault fault;
  if (!armed_.load(std::memory_order_acquire)) return fault;
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return fault;
  bool sleep = spec_.action == FailpointSpec::Action::kSleep;
  bool alloc = spec_.action == FailpointSpec::Action::kAlloc;
  if (!sleep && !alloc) return fault;
  if (spec_.file != "*" && ToLower(spec_.file) != ToLower(checkpoint)) {
    return fault;
  }
  if (!EvalTriggerLocked()) return fault;
  NoteFireLocked();
  if (sleep) {
    fault.sleep_ms = spec_.bytes;
  } else {
    fault.alloc_kb = spec_.bytes;
  }
  return fault;
}

void Site::Arm(FailpointSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  spec_ = std::move(spec);
  evals_ = 0;
  rng_.seed(spec_.seed);
  armed_.store(true, std::memory_order_release);
}

void Site::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
}

std::string Site::spec_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  return armed_.load(std::memory_order_relaxed) ? spec_.text : std::string();
}

FailpointRegistry::FailpointRegistry() {
  for (const ManifestEntry& entry : kManifest) {
    sites_.emplace(entry.name, std::make_unique<Site>(entry.name, entry.policy,
                                                      entry.description));
    order_.push_back(entry.name);
  }
  if (const char* env = std::getenv("IQS_FAILPOINTS");
      env != nullptr && env[0] != '\0') {
    // A bad env spec must not crash the process at static-init time; the
    // parse error lands in the metrics registry instead.
    if (!SetFromList(env).ok()) {
      obs::GlobalMetrics().GetCounter("fault.env_parse_errors")->Increment();
    }
  }
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

Site* FailpointRegistry::GetSite(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(name);
  if (it == sites_.end()) {
    it = sites_
             .emplace(name, std::make_unique<Site>(name, Policy::kFailFast,
                                                   "ad-hoc site"))
             .first;
    order_.push_back(name);
  }
  return it->second.get();
}

Status FailpointRegistry::Set(const std::string& name,
                              const std::string& spec_text) {
  std::string trimmed(StripWhitespace(spec_text));
  if (ToLower(trimmed) == "off") {
    Clear(name);
    return Status::Ok();
  }
  IQS_ASSIGN_OR_RETURN(FailpointSpec spec, FailpointSpec::Parse(trimmed));
  GetSite(name)->Arm(std::move(spec));
  return Status::Ok();
}

Status FailpointRegistry::SetFromList(const std::string& assignments) {
  // ';' separates assignments; commas stay inside prob(P,SEED) and
  // error(code,message) clauses.
  for (const std::string& part : Split(assignments, ';')) {
    std::string item(StripWhitespace(part));
    if (item.empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("failpoint assignment '" + item +
                                     "' is not site=spec");
    }
    IQS_RETURN_IF_ERROR(
        Set(std::string(StripWhitespace(item.substr(0, eq))),
            std::string(StripWhitespace(item.substr(eq + 1)))));
  }
  return Status::Ok();
}

void FailpointRegistry::Clear(const std::string& name) {
  Site* site = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(name);
    if (it == sites_.end()) return;
    site = it->second.get();
  }
  site->Disarm();
}

void FailpointRegistry::ClearAll() {
  std::vector<Site*> sites;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, site] : sites_) sites.push_back(site.get());
  }
  for (Site* site : sites) site->Disarm();
}

std::vector<SiteInfo> FailpointRegistry::List() const {
  std::vector<const Site*> sites;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sites.reserve(order_.size());
    for (const std::string& name : order_) {
      sites.push_back(sites_.at(name).get());
    }
  }
  std::vector<SiteInfo> out;
  out.reserve(sites.size());
  for (const Site* site : sites) {
    SiteInfo info;
    info.name = site->name();
    info.policy = site->policy();
    info.description = site->description();
    info.spec = site->spec_text();
    info.hits = site->hits();
    info.fires = site->fires();
    out.push_back(std::move(info));
  }
  return out;
}

Status Hit(const std::string& site) {
  return FailpointRegistry::Global().GetSite(site)->Hit();
}

WriteFault HitWriteFault(const std::string& site,
                         const std::string& file_name) {
  return FailpointRegistry::Global().GetSite(site)->HitForWrite(file_name);
}

CheckpointFault HitCheckpointFault(const std::string& site,
                                   const std::string& checkpoint) {
  return FailpointRegistry::Global().GetSite(site)->HitForCheckpoint(
      checkpoint);
}

}  // namespace fault
}  // namespace iqs
