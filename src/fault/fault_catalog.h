#ifndef IQS_FAULT_FAULT_CATALOG_H_
#define IQS_FAULT_FAULT_CATALOG_H_

#include "relational/virtual_relation.h"

namespace iqs {
namespace fault {

// Catalog provider for the fault-injection subsystem (DESIGN.md §11):
//
//   sys.failpoints    every manifest/ad-hoc site with its armed spec and
//                     hit/fire counters (FailpointRegistry::Global())
//   sys.degradations  the GlobalDegradations() ring of absorbed faults
class FaultCatalogProvider : public VirtualRelationProvider {
 public:
  std::vector<std::string> RelationNames() const override;
  Result<Relation> Materialize(const std::string& name) const override;
};

}  // namespace fault
}  // namespace iqs

#endif  // IQS_FAULT_FAULT_CATALOG_H_
