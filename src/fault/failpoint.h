#ifndef IQS_FAULT_FAILPOINT_H_
#define IQS_FAULT_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace iqs {
namespace fault {

// Failpoints: named fault-injection sites threaded through every pipeline
// stage (parsers, dictionary, induction, inference, executor, persistence,
// thread pool). A site is a no-op until armed with a spec — one relaxed
// atomic load on the hot path — and every trigger is deterministic for a
// fixed spec and hit sequence (prob() draws from a per-site mt19937 seeded
// by the spec, never from wall clock or global randomness). Arm sites via
//   * the IQS_FAILPOINTS environment variable ("site=spec;site=spec"),
//   * `set failpoint <site> <spec>` in the iqs_shell,
//   * FailpointRegistry::Global().Set(...) in tests (or ScopedFailpoint).
// See DESIGN.md §8 for the spec grammar and per-stage degradation
// policies.

// How the surrounding stage degrades when the site fires. Declared per
// site in the manifest (failpoint.cc) and asserted by the fault matrix
// test; the wiring in each stage implements the policy.
enum class Policy {
  kFailFast,           // error surfaces to the caller unchanged (parsers)
  kRetryTransient,     // retried with backoff while Unavailable
  kDegradeExtensional, // query falls back to the extensional-only answer
  kSkipAndLog,         // the faulting unit (one rule) is skipped, logged
  kSerialFallback,     // parallel region re-executes serially
  kKeepPrevious,       // operation fails, prior state stays installed
  kCacheBypass,        // cache is skipped; the uncached path serves the
                       // identical answer (slower, never degraded)
  kSnapshotFallback,   // a killed or damaged save never surfaces: load
                       // recovers the previous intact snapshot
  kSkipRewrite,        // semantic rewrite pass skipped; the query runs
                       // unoptimized and the answer is unchanged
  kCancelQuery,        // the governance layer cancels the query with a
                       // typed error; session and engine state survive
                       // (see src/exec/exec_context.h)
};

const char* PolicyName(Policy policy);

// Parsed form of a failpoint spec:
//   spec    := "off" | [trigger ":"] action
//   trigger := "once" | "after(N)" | "times(N)" | "prob(P,SEED)"
//   action  := "error(code[,message])" | "crash"
//            | "torn(file,bytes)" | "corrupt(file)"
//            | "sleep(checkpoint,ms)" | "alloc(checkpoint,kb)"
//   code    := unavailable | internal | notfound | invalid | parse |
//              type | constraint | exists | corruption | overloaded |
//              deadline | cancelled | resource
// "once" fires on the first hit only; "after(N)" passes N hits then fires
// on every later one; "times(N)" fires on the first N hits then passes;
// "prob(P,SEED)" fires each hit with probability P, deterministically
// under SEED.
//
// Actions beyond error():
//   * "crash" kills the process on the spot with std::_Exit — no
//     destructors, no stream flush — modeling a power cut at the site
//     (the crash-recovery harness re-execs a child writer around it).
//   * "torn(file,bytes)" / "corrupt(file)" are write faults: they do not
//     fire from IQS_FAILPOINT but from the durable-write path
//     (Site::HitForWrite), which matches the spec's file against the
//     basename being written and then truncates the payload to `bytes`
//     (torn) or flips one byte (corrupt) — simulating a torn sector or
//     bit rot that only an integrity check can catch later.
//   * "sleep(checkpoint,ms)" / "alloc(checkpoint,kb)" are governance
//     faults fired from exec::Checkpoint (Site::HitForCheckpoint): the
//     spec's checkpoint name ("*" = every checkpoint) is matched against
//     the governance checkpoint being evaluated, and a matching hit
//     stalls the block for `ms` milliseconds (modeling a pathological
//     scan that must overrun its deadline) or charges `kb` kilobytes to
//     the running query's memory budget (modeling an allocation spike).
struct FailpointSpec {
  enum class Trigger { kAlways, kOnce, kAfter, kTimes, kProb };
  enum class Action {
    kError, kCrash, kTornWrite, kCorruptWrite, kSleep, kAlloc
  };

  Trigger trigger = Trigger::kAlways;
  uint64_t n = 0;            // after(N) / times(N)
  double probability = 0.0;  // prob(P, SEED)
  uint32_t seed = 0;
  Action action = Action::kError;
  StatusCode code = StatusCode::kInternal;
  std::string message;  // empty -> "failpoint '<site>' fired"
  std::string file;     // torn()/corrupt() basename, sleep()/alloc()
                        // checkpoint name ("*" matches every checkpoint)
  uint64_t bytes = 0;   // torn(): prefix length that reaches the disk;
                        // sleep(): milliseconds; alloc(): kilobytes
  std::string text;     // original spelling, for listings

  static Result<FailpointSpec> Parse(const std::string& text);
};

// Exit code of a "crash" action, asserted by the crash-recovery harness
// to distinguish an injected power cut from an ordinary failure.
inline constexpr int kCrashExitCode = 61;

// Outcome of evaluating a write-fault site against one file write.
struct WriteFault {
  enum class Kind { kNone, kTorn, kCorrupt };
  Kind kind = Kind::kNone;
  uint64_t bytes = 0;  // kTorn: how many payload bytes reach the disk
};

// Outcome of evaluating a governance-fault site (exec.slow_block /
// exec.alloc_spike) against one checkpoint hit.
struct CheckpointFault {
  uint64_t sleep_ms = 0;  // stall the block this long
  uint64_t alloc_kb = 0;  // charge this much to the query's budget
};

// One injection site. Hit() is the only hot call: a relaxed counter add
// plus an acquire load when disarmed; trigger evaluation takes the site
// mutex (arming a failpoint is inherently a slow path).
class Site {
 public:
  Site(std::string name, Policy policy, std::string description)
      : name_(std::move(name)),
        policy_(policy),
        description_(std::move(description)) {}

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  // Evaluates the site: OK when disarmed or the trigger does not fire,
  // else the spec's error Status. A "crash" action never returns — the
  // process exits with kCrashExitCode. Write-fault specs (torn/corrupt)
  // are inert here; they only fire through HitForWrite.
  Status Hit();

  // Evaluates the site against a file about to be written durably. Fires
  // only when the armed spec is a write fault whose file matches
  // `file_name` (case-insensitive basename); error/crash specs and
  // non-matching files pass without consuming the trigger.
  WriteFault HitForWrite(const std::string& file_name);

  // Evaluates the site against one governance checkpoint hit. Fires only
  // when the armed spec is a sleep/alloc fault whose checkpoint matches
  // `checkpoint` (case-insensitive, "*" matches all); other specs and
  // non-matching checkpoints pass without consuming the trigger.
  CheckpointFault HitForCheckpoint(const std::string& checkpoint);

  void Arm(FailpointSpec spec);
  void Disarm();

  const std::string& name() const { return name_; }
  Policy policy() const { return policy_; }
  const std::string& description() const { return description_; }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t fires() const { return fires_.load(std::memory_order_relaxed); }
  // Current spec text, "" when disarmed.
  std::string spec_text() const;

 private:
  const std::string name_;
  const Policy policy_;
  const std::string description_;

  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> fires_{0};

  // Evaluates the armed trigger once; caller holds mu_.
  bool EvalTriggerLocked();
  // Counts a fire in the site and registry metrics; caller holds mu_.
  void NoteFireLocked();

  mutable std::mutex mu_;  // guards spec_, evals_, rng_
  FailpointSpec spec_;
  uint64_t evals_ = 0;     // hits evaluated since the spec was armed
  std::mt19937 rng_;       // seeded by prob() specs
};

// Listing row for the shell's `failpoints` command and the matrix test.
struct SiteInfo {
  std::string name;
  Policy policy = Policy::kFailFast;
  std::string description;
  std::string spec;  // "" when disarmed
  uint64_t hits = 0;
  uint64_t fires = 0;
};

// Process-wide registry. Construction registers the manifest of every
// wired site (so tests can enumerate sites that have never been hit) and
// arms any specs found in IQS_FAILPOINTS.
class FailpointRegistry {
 public:
  static FailpointRegistry& Global();

  FailpointRegistry(const FailpointRegistry&) = delete;
  FailpointRegistry& operator=(const FailpointRegistry&) = delete;

  // Find-or-create; returned pointer stays valid for the registry's
  // lifetime. Sites outside the manifest register ad hoc as kFailFast.
  Site* GetSite(const std::string& name);

  // Parses and arms `spec_text` on `name` ("off" disarms). Unknown sites
  // are created, so specs can be staged before the code path first runs.
  Status Set(const std::string& name, const std::string& spec_text);

  // Parses "site=spec;site=spec" (also accepts ',' between assignments).
  Status SetFromList(const std::string& assignments);

  void Clear(const std::string& name);
  void ClearAll();

  // Manifest order first, ad-hoc sites after, both alphabetical-stable.
  std::vector<SiteInfo> List() const;

 private:
  FailpointRegistry();

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Site>> sites_;
  std::vector<std::string> order_;
};

// Convenience for call sites that cannot use the macro (templates,
// non-Status control flow): one registry lookup per call.
Status Hit(const std::string& site);

// Evaluates a write-fault site (persist.torn_write / persist.corrupt)
// against the basename of a file about to be written.
WriteFault HitWriteFault(const std::string& site,
                         const std::string& file_name);

// Evaluates a governance-fault site (exec.slow_block / exec.alloc_spike)
// against the named checkpoint. One registry lookup per call — callers
// on the hot path cache the Site* instead (see exec::Checkpoint).
CheckpointFault HitCheckpointFault(const std::string& site,
                                   const std::string& checkpoint);

// RAII arm/disarm, for tests:
//   ScopedFailpoint fp("infer.fire", "error(unavailable,offline)");
class ScopedFailpoint {
 public:
  ScopedFailpoint(const std::string& site, const std::string& spec)
      : site_(site) {
    Status s = FailpointRegistry::Global().Set(site, spec);
    ok_ = s.ok();
  }
  ~ScopedFailpoint() { FailpointRegistry::Global().Clear(site_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  bool ok() const { return ok_; }

 private:
  std::string site_;
  bool ok_ = false;
};

}  // namespace fault
}  // namespace iqs

// Evaluates the named failpoint and propagates its error to the caller
// (any function returning Status or Result<T>). The Site pointer is
// resolved once and cached in a function-local static, so the steady-state
// cost is one relaxed add and one acquire load.
#define IQS_FAILPOINT(site)                                        \
  do {                                                             \
    static ::iqs::fault::Site* iqs_fp_site_ =                      \
        ::iqs::fault::FailpointRegistry::Global().GetSite(site);   \
    ::iqs::Status iqs_fp_status_ = iqs_fp_site_->Hit();            \
    if (!iqs_fp_status_.ok()) return iqs_fp_status_;               \
  } while (0)

#endif  // IQS_FAULT_FAILPOINT_H_
