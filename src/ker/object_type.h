#ifndef IQS_KER_OBJECT_TYPE_H_
#define IQS_KER_OBJECT_TYPE_H_

#include <string>
#include <vector>

#include "ker/domain.h"
#include "relational/schema.h"
#include "rules/rule.h"

namespace iqs {

// Renders a clause in DDL-parseable form: like ToConditionString, but
// string constants are double-quoted (`Division = "R&D"`), so values
// containing non-identifier characters survive a ToDdl/ParseDdl round
// trip.
std::string ClauseToDdl(const Clause& clause);

// One `has [key]: <name> domain: <domain>` line of an object type
// definition (paper Figure 1, Appendix A.3).
struct KerAttribute {
  std::string name;
  std::string domain;  // domain name ("CHAR[4]", "integer", "SHIP_NAME",
                       // or an object type for relationship roles)
  bool is_key = false;

  friend bool operator==(const KerAttribute&, const KerAttribute&) = default;
};

// A role definition in a structure rule: "x isa SUBMARINE" (Appendix A.5).
struct RoleBinding {
  std::string variable;
  std::string type_name;

  friend bool operator==(const RoleBinding&, const RoleBinding&) = default;
};

// A with-constraint (Appendix A.5). Two shapes:
//  * domain range constraint: `Displacement in [2000..30000]`
//  * semantic rule (constraint rule `if ... then Attr = const`, or
//    structure rule `if <roles> and ... then x isa T`), held as a Rule —
//    structure rules carry their role definitions in `roles`.
struct KerConstraint {
  enum class Kind { kDomainRange, kRule };
  Kind kind = Kind::kDomainRange;

  // kDomainRange fields: the restricted attribute and its interval, or
  // (exclusively) the allowed set.
  Clause domain_clause;
  std::vector<Value> allowed_set;

  // kRule fields.
  Rule rule;
  std::vector<RoleBinding> roles;

  std::string ToString() const;
};

// An object type definition: attributes plus with-constraints. Entity
// types and relationship types are both object types (paper §2); a
// relationship is an object type whose attribute domains name other
// object types (INSTALL.Ship has domain SUBMARINE).
struct ObjectTypeDef {
  std::string name;
  std::vector<KerAttribute> attributes;
  std::vector<KerConstraint> constraints;

  const KerAttribute* FindAttribute(const std::string& attr_name) const;

  // Attributes whose domain is an object type, resolved against `domains`
  // — non-empty for relationship types.
  std::vector<KerAttribute> ObjectDomainAttributes(
      const DomainCatalog& domains) const;

  // Maps the definition to a relational schema by resolving each
  // attribute's domain to its basic type.
  Result<Schema> ToSchema(const DomainCatalog& domains) const;

  // Checks a tuple against all domain specs and kDomainRange constraints.
  Status CheckTuple(const DomainCatalog& domains, const Schema& schema,
                    const Tuple& tuple) const;

  // Renders in the paper's Figure 1 textual form.
  std::string ToString() const;
};

}  // namespace iqs

#endif  // IQS_KER_OBJECT_TYPE_H_
