#include "ker/domain.h"

#include <cctype>

#include "common/string_util.h"

namespace iqs {

Status DomainDef::CheckValue(const Value& v) const {
  if (v.is_null()) return Status::Ok();
  if (v.type() != base_type &&
      !(base_type == ValueType::kReal && v.type() == ValueType::kInt)) {
    return Status::TypeError("domain " + name + " expects " +
                             ValueTypeName(base_type) + ", got " +
                             ValueTypeName(v.type()));
  }
  if (char_length > 0 && v.type() == ValueType::kString &&
      v.AsString().size() > static_cast<size_t>(char_length)) {
    return Status::ConstraintViolation(
        "value '" + v.AsString() + "' exceeds CHAR[" +
        std::to_string(char_length) + "] bound of domain " + name);
  }
  if (range.has_value() && !range->Contains(v)) {
    return Status::ConstraintViolation("value " + v.ToString() +
                                       " outside range " + range->ToString() +
                                       " of domain " + name);
  }
  if (!allowed_set.empty()) {
    for (const Value& allowed : allowed_set) {
      if (allowed == v) return Status::Ok();
    }
    return Status::ConstraintViolation("value " + v.ToString() +
                                       " not in set of domain " + name);
  }
  return Status::Ok();
}

DomainCatalog::DomainCatalog() {
  for (const char* basic : {"integer", "real", "string", "date"}) {
    DomainDef def;
    def.name = basic;
    def.base_type = *ValueTypeFromName(basic);
    domains_[basic] = def;
  }
}

Result<int> DomainCatalog::ParseCharLength(const std::string& name) {
  std::string lower = ToLower(StripWhitespace(name));
  if (!StartsWith(lower, "char")) {
    return Status::NotFound("not a char spec");
  }
  std::string rest(StripWhitespace(std::string_view(lower).substr(4)));
  if (rest.empty()) return 0;  // bare CHAR: unbounded
  if (rest.front() != '[' || rest.back() != ']') {
    return Status::ParseError("malformed char length in '" + name + "'");
  }
  std::string digits = rest.substr(1, rest.size() - 2);
  if (digits.empty()) return Status::ParseError("empty char length");
  int length = 0;
  for (char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::ParseError("non-digit in char length '" + name + "'");
    }
    length = length * 10 + (c - '0');
    if (length > 1 << 20) {
      return Status::ParseError("char length too large in '" + name + "'");
    }
  }
  return length;
}

Status DomainCatalog::Define(DomainDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("domain name must not be empty");
  }
  std::string key = ToLower(def.name);
  if (domains_.count(key) > 0) {
    return Status::AlreadyExists("domain '" + def.name + "' already defined");
  }
  // Resolve the parent to a basic type and inherit char length bounds.
  if (!def.parent.empty()) {
    auto char_len = ParseCharLength(def.parent);
    if (char_len.ok()) {
      def.base_type = ValueType::kString;
      if (def.char_length == 0) def.char_length = *char_len;
    } else {
      auto parent_it = domains_.find(ToLower(def.parent));
      if (parent_it == domains_.end()) {
        return Status::NotFound("parent domain '" + def.parent +
                                "' of '" + def.name + "' is not defined");
      }
      def.base_type = parent_it->second.base_type;
      if (def.char_length == 0) {
        def.char_length = parent_it->second.char_length;
      }
    }
  }
  // Validate the specs against the resolved type.
  if (def.range.has_value()) {
    for (const std::optional<Value>* bound :
         {&def.range->lo(), &def.range->hi()}) {
      if (bound->has_value() && !(*bound)->is_null()) {
        Value v = **bound;
        if (v.type() != def.base_type &&
            !(def.base_type == ValueType::kReal &&
              v.type() == ValueType::kInt)) {
          return Status::TypeError("range bound " + v.ToString() +
                                   " does not match base type of domain " +
                                   def.name);
        }
      }
    }
  }
  for (const Value& v : def.allowed_set) {
    if (v.type() != def.base_type &&
        !(def.base_type == ValueType::kReal && v.type() == ValueType::kInt)) {
      return Status::TypeError("set element " + v.ToString() +
                               " does not match base type of domain " +
                               def.name);
    }
  }
  definition_order_.push_back(def.name);
  domains_[key] = std::move(def);
  return Status::Ok();
}

Status DomainCatalog::DefineObjectDomain(const std::string& object_type_name) {
  std::string key = ToLower(object_type_name);
  if (domains_.count(key) > 0) return Status::Ok();  // idempotent
  DomainDef def;
  def.name = object_type_name;
  def.is_object_domain = true;
  def.base_type = ValueType::kString;  // entity keys render as strings
  domains_[key] = std::move(def);
  return Status::Ok();
}

bool DomainCatalog::Contains(const std::string& name) const {
  if (domains_.count(ToLower(name)) > 0) return true;
  return ParseCharLength(name).ok();
}

Result<const DomainDef*> DomainCatalog::Get(const std::string& name) const {
  auto it = domains_.find(ToLower(name));
  if (it == domains_.end()) {
    return Status::NotFound("domain '" + name + "' is not defined");
  }
  return &it->second;
}

Result<ValueType> DomainCatalog::ResolveType(const std::string& name) const {
  auto it = domains_.find(ToLower(name));
  if (it != domains_.end()) return it->second.base_type;
  if (ParseCharLength(name).ok()) return ValueType::kString;
  return Status::NotFound("domain '" + name + "' is not defined");
}

Status DomainCatalog::CheckValue(const std::string& domain_name,
                                 const Value& v) const {
  auto char_len = ParseCharLength(domain_name);
  if (char_len.ok()) {
    DomainDef anonymous;
    anonymous.name = domain_name;
    anonymous.base_type = ValueType::kString;
    anonymous.char_length = *char_len;
    return anonymous.CheckValue(v);
  }
  // Walk the isa chain, checking each level's specs.
  std::string current = ToLower(domain_name);
  int depth = 0;
  while (!current.empty()) {
    if (++depth > 64) {
      return Status::Internal("domain isa chain too deep (cycle?) at '" +
                              domain_name + "'");
    }
    auto it = domains_.find(current);
    if (it == domains_.end()) {
      auto len = ParseCharLength(current);
      if (len.ok()) {
        DomainDef anonymous;
        anonymous.name = current;
        anonymous.base_type = ValueType::kString;
        anonymous.char_length = *len;
        return anonymous.CheckValue(v);
      }
      return Status::NotFound("domain '" + current + "' is not defined");
    }
    IQS_RETURN_IF_ERROR(it->second.CheckValue(v));
    current = ToLower(it->second.parent);
  }
  return Status::Ok();
}

std::vector<std::string> DomainCatalog::UserDomainNames() const {
  return definition_order_;
}

}  // namespace iqs
