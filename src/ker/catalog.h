#ifndef IQS_KER_CATALOG_H_
#define IQS_KER_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "ker/domain.h"
#include "ker/object_type.h"
#include "ker/type_hierarchy.h"

namespace iqs {

// The KER schema catalog: domains, object types (entities and
// relationships), and the type hierarchies with their derivation
// specifications. This is the frame-based half of the intelligent data
// dictionary's content (paper §5.3); the dictionary module layers frames
// and the induced rule base on top.
class KerCatalog {
 public:
  KerCatalog() = default;

  KerCatalog(const KerCatalog&) = delete;
  KerCatalog& operator=(const KerCatalog&) = delete;
  KerCatalog(KerCatalog&&) = default;
  KerCatalog& operator=(KerCatalog&&) = default;

  DomainCatalog& domains() { return domains_; }
  const DomainCatalog& domains() const { return domains_; }
  const TypeHierarchy& hierarchy() const { return hierarchy_; }

  // Defines an object type: validates attribute domains, registers the
  // type as a hierarchy root and as an object domain.
  Status DefineObjectType(ObjectTypeDef def);

  // Defines `sub isa super with <derivation>`; `extra_constraints` may add
  // rules that attach to the supertype's definition.
  Status DefineSubtype(const std::string& sub, const std::string& super,
                       std::optional<Clause> derivation,
                       std::vector<KerConstraint> extra_constraints = {});

  // Defines `parent contains children... with constraints`: the children
  // become disjoint subtypes; constraints attach to the parent.
  Status DefineContains(const std::string& parent,
                        const std::vector<std::string>& children,
                        std::vector<KerConstraint> constraints = {});

  // Attaches a derivation clause to an existing subtype (used when a
  // `contains` lists children whose derivations arrive separately).
  Status SetDerivation(const std::string& type_name, Clause derivation);

  bool HasObjectType(const std::string& name) const;
  Result<const ObjectTypeDef*> GetObjectType(const std::string& name) const;
  std::vector<std::string> ObjectTypeNames() const;

  // Object types whose attributes include object-domain references —
  // relationship types like INSTALL.
  std::vector<std::string> RelationshipTypeNames() const;

  // The object type that owns attribute `qualified` ("CLASS.Displacement"
  // -> CLASS; bare names search all types and fail when ambiguous).
  Result<std::string> OwnerOfAttribute(const std::string& qualified) const;

  // All rules declared in with-constraints across the schema, with isa
  // readings attached where the RHS matches a subtype derivation. These
  // are the hand-written integrity constraints (used by the baseline and
  // merged with induced rules by the dictionary).
  RuleSet DeclaredRules() const;

  // Full schema rendering in the Appendix-B textual form.
  std::string ToDdl() const;

 private:
  DomainCatalog domains_;
  TypeHierarchy hierarchy_;
  std::map<std::string, ObjectTypeDef> object_types_;  // lower-cased key
  std::vector<std::string> object_type_order_;
};

}  // namespace iqs

#endif  // IQS_KER_CATALOG_H_
