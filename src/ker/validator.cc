#include "ker/validator.h"

#include <map>
#include <set>

#include "common/string_util.h"

namespace iqs {

std::string ValidationIssue::ToString() const {
  return relation + "[" + std::to_string(row) + "]: " + message;
}

namespace {

void Report(std::vector<ValidationIssue>* issues, const std::string& relation,
            size_t row, std::string message) {
  issues->push_back(ValidationIssue{relation, row, std::move(message)});
}

}  // namespace

Result<std::vector<ValidationIssue>> ValidateDatabase(
    const Database& db, const KerCatalog& catalog) {
  std::vector<ValidationIssue> issues;

  // Key sets of every object type's relation, for referential checks.
  std::map<std::string, std::set<std::string>> keys_of;  // lower(type) -> keys
  for (const std::string& type_name : catalog.ObjectTypeNames()) {
    if (!db.Contains(type_name)) continue;
    IQS_ASSIGN_OR_RETURN(const ObjectTypeDef* keyed_def,
                         catalog.GetObjectType(type_name));
    IQS_ASSIGN_OR_RETURN(const Relation* rel, db.Get(type_name));
    std::vector<std::string> key_attrs;
    for (const KerAttribute& attr : keyed_def->attributes) {
      if (attr.is_key) key_attrs.push_back(attr.name);
    }
    if (key_attrs.size() != 1) continue;  // composite keys not referenced
    auto column = rel->Column(key_attrs[0]);
    if (!column.ok()) continue;
    std::set<std::string>& keys = keys_of[ToLower(type_name)];
    for (const Value& v : *column) {
      if (!v.is_null()) keys.insert(v.ToString());
    }
  }

  for (const std::string& type_name : catalog.ObjectTypeNames()) {
    if (!db.Contains(type_name)) continue;
    IQS_ASSIGN_OR_RETURN(const ObjectTypeDef* def,
                         catalog.GetObjectType(type_name));
    IQS_ASSIGN_OR_RETURN(const Relation* rel, db.Get(type_name));

    // Map KER attributes to relation columns by name (the relation may
    // order columns differently, as Appendix C does for CLASS).
    struct BoundAttr {
      const KerAttribute* attr;
      size_t column;
      bool is_object_domain;
    };
    std::vector<BoundAttr> bound;
    for (const KerAttribute& attr : def->attributes) {
      auto idx = rel->schema().IndexOf(attr.name);
      if (!idx.ok()) {
        Report(&issues, rel->name(), 0,
               "schema mismatch: attribute '" + attr.name +
                   "' missing from the relation");
        continue;
      }
      auto domain = catalog.domains().Get(attr.domain);
      bool is_object = domain.ok() && (*domain)->is_object_domain;
      bound.push_back(BoundAttr{&attr, *idx, is_object});
    }

    for (size_t r = 0; r < rel->size(); ++r) {
      const Tuple& row = rel->row(r);
      // Domain checks + referential integrity.
      for (const BoundAttr& b : bound) {
        const Value& v = row.at(b.column);
        if (b.is_object_domain) {
          if (v.is_null()) continue;
          auto it = keys_of.find(ToLower(b.attr->domain));
          if (it != keys_of.end() && it->second.count(v.ToString()) == 0) {
            Report(&issues, rel->name(), r,
                   "dangling reference: " + b.attr->name + " = " +
                       v.ToString() + " has no " + b.attr->domain + " key");
          }
          continue;
        }
        Status s = catalog.domains().CheckValue(b.attr->domain, v);
        if (!s.ok()) {
          Report(&issues, rel->name(), r,
                 b.attr->name + ": " + s.message());
        }
      }
      // With-constraints.
      for (const KerConstraint& constraint : def->constraints) {
        if (constraint.kind == KerConstraint::Kind::kDomainRange) {
          auto idx =
              rel->schema().IndexOf(constraint.domain_clause.BaseAttribute());
          if (!idx.ok()) continue;
          const Value& v = row.at(*idx);
          if (v.is_null()) continue;
          bool ok;
          if (!constraint.allowed_set.empty()) {
            ok = false;
            for (const Value& allowed : constraint.allowed_set) {
              if (allowed == v) ok = true;
            }
          } else {
            ok = constraint.domain_clause.Satisfies(v);
          }
          if (!ok) {
            Report(&issues, rel->name(), r,
                   "violates '" + constraint.ToString() + "'");
          }
          continue;
        }
        // Constraint rules: single LHS clause, attributes local to this
        // relation (role-qualified inter-object rules are skipped).
        const Rule& rule = constraint.rule;
        if (rule.lhs.size() != 1) continue;
        if (!constraint.roles.empty() && constraint.roles.size() > 1) continue;
        auto lhs_idx = rel->schema().IndexOf(rule.lhs[0].BaseAttribute());
        auto rhs_idx =
            rel->schema().IndexOf(rule.rhs.clause.BaseAttribute());
        if (!lhs_idx.ok() || !rhs_idx.ok()) continue;
        const Value& x = row.at(*lhs_idx);
        const Value& y = row.at(*rhs_idx);
        if (x.is_null() || y.is_null()) continue;
        if (rule.lhs[0].Satisfies(x) && !rule.rhs.clause.Satisfies(y)) {
          Report(&issues, rel->name(), r,
                 "violates declared rule '" + rule.Body() + "'");
        }
      }
    }
  }
  return issues;
}

}  // namespace iqs
