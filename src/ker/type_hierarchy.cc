#include "ker/type_hierarchy.h"

#include <deque>

#include "common/string_util.h"
#include "rules/subsumption.h"

namespace iqs {

Status TypeHierarchy::AddRoot(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("type name must not be empty");
  }
  std::string key = ToLower(name);
  if (nodes_.count(key) > 0) return Status::Ok();
  TypeNode node;
  node.name = name;
  nodes_[key] = std::move(node);
  order_.push_back(name);
  return Status::Ok();
}

Status TypeHierarchy::AddIsa(const std::string& sub, const std::string& super,
                             std::optional<Clause> derivation,
                             bool disjoint_partition) {
  if (sub.empty() || super.empty()) {
    return Status::InvalidArgument("type names must not be empty");
  }
  std::string sub_key = ToLower(sub);
  std::string super_key = ToLower(super);
  auto super_it = nodes_.find(super_key);
  if (super_it == nodes_.end()) {
    return Status::NotFound("supertype '" + super + "' is not defined");
  }
  if (nodes_.count(sub_key) > 0) {
    return Status::AlreadyExists("type '" + sub + "' already defined");
  }
  if (sub_key == super_key) {
    return Status::InvalidArgument("type '" + sub + "' cannot be its own " +
                                   "supertype");
  }
  TypeNode node;
  node.name = sub;
  node.parent = super_it->second.name;
  node.derivation = std::move(derivation);
  node.disjoint_partition = disjoint_partition;
  nodes_[sub_key] = std::move(node);
  super_it->second.children.push_back(sub);
  order_.push_back(sub);
  return Status::Ok();
}

bool TypeHierarchy::Contains(const std::string& name) const {
  return nodes_.count(ToLower(name)) > 0;
}

Result<const TypeNode*> TypeHierarchy::Get(const std::string& name) const {
  auto it = nodes_.find(ToLower(name));
  if (it == nodes_.end()) {
    return Status::NotFound("type '" + name + "' is not defined");
  }
  return &it->second;
}

Status TypeHierarchy::SetDerivation(const std::string& name,
                                    Clause derivation) {
  auto it = nodes_.find(ToLower(name));
  if (it == nodes_.end()) {
    return Status::NotFound("type '" + name + "' is not defined");
  }
  it->second.derivation = std::move(derivation);
  return Status::Ok();
}

Result<std::vector<std::string>> TypeHierarchy::SupertypesOf(
    const std::string& name) const {
  IQS_ASSIGN_OR_RETURN(const TypeNode* node, Get(name));
  std::vector<std::string> out;
  int depth = 0;
  while (!node->parent.empty()) {
    if (++depth > 256) {
      return Status::Internal("type hierarchy cycle at '" + name + "'");
    }
    out.push_back(node->parent);
    IQS_ASSIGN_OR_RETURN(node, Get(node->parent));
  }
  return out;
}

Result<std::vector<std::string>> TypeHierarchy::SubtypesOf(
    const std::string& name) const {
  IQS_ASSIGN_OR_RETURN(const TypeNode* node, Get(name));
  std::vector<std::string> out;
  std::deque<const TypeNode*> queue{node};
  while (!queue.empty()) {
    const TypeNode* current = queue.front();
    queue.pop_front();
    for (const std::string& child : current->children) {
      out.push_back(child);
      IQS_ASSIGN_OR_RETURN(const TypeNode* child_node, Get(child));
      queue.push_back(child_node);
    }
  }
  return out;
}

Result<std::string> TypeHierarchy::RootOf(const std::string& name) const {
  IQS_ASSIGN_OR_RETURN(const TypeNode* node, Get(name));
  int depth = 0;
  while (!node->parent.empty()) {
    if (++depth > 256) {
      return Status::Internal("type hierarchy cycle at '" + name + "'");
    }
    IQS_ASSIGN_OR_RETURN(node, Get(node->parent));
  }
  return node->name;
}

bool TypeHierarchy::IsAOrSubtypeOf(const std::string& name,
                                   const std::string& ancestor) const {
  if (EqualsIgnoreCase(name, ancestor)) return Contains(name);
  auto supers = SupertypesOf(name);
  if (!supers.ok()) return false;
  for (const std::string& s : *supers) {
    if (EqualsIgnoreCase(s, ancestor)) return true;
  }
  return false;
}

int TypeHierarchy::DepthOf(const std::string& name) const {
  auto supers = SupertypesOf(name);
  return supers.ok() ? static_cast<int>(supers->size()) : 0;
}

Result<std::string> TypeHierarchy::FindByDerivation(
    const Clause& clause) const {
  const TypeNode* best = nullptr;
  int best_depth = -1;
  for (const std::string& name : order_) {
    const TypeNode& node = nodes_.at(ToLower(name));
    if (!node.derivation.has_value()) continue;
    if (!SameAttribute(node.derivation->attribute(), clause.attribute())) {
      continue;
    }
    if (!node.derivation->interval().ContainsInterval(clause.interval())) {
      continue;
    }
    int depth = DepthOf(name);
    if (depth > best_depth) {
      best = &node;
      best_depth = depth;
    }
  }
  if (best == nullptr) {
    return Status::NotFound("no subtype derived by " +
                            clause.ToConditionString());
  }
  return best->name;
}

std::vector<std::string> TypeHierarchy::AllTypes() const { return order_; }

std::vector<std::string> TypeHierarchy::Roots() const {
  std::vector<std::string> out;
  for (const std::string& name : order_) {
    if (nodes_.at(ToLower(name)).parent.empty()) out.push_back(name);
  }
  return out;
}

Result<std::string> TypeHierarchy::RenderTree(const std::string& root) const {
  IQS_ASSIGN_OR_RETURN(const TypeNode* node, Get(root));
  std::string out;
  // Recursive lambda over (node, indent).
  auto render = [&](auto&& self, const TypeNode& n, int indent) -> Status {
    out.append(static_cast<size_t>(indent) * 2, ' ');
    out += n.name;
    if (n.derivation.has_value()) {
      out += "  with " + n.derivation->ToConditionString();
    }
    out += "\n";
    for (const std::string& child : n.children) {
      IQS_ASSIGN_OR_RETURN(const TypeNode* child_node, Get(child));
      IQS_RETURN_IF_ERROR(self(self, *child_node, indent + 1));
    }
    return Status::Ok();
  };
  IQS_RETURN_IF_ERROR(render(render, *node, 0));
  return out;
}

}  // namespace iqs
