#ifndef IQS_KER_TYPE_HIERARCHY_H_
#define IQS_KER_TYPE_HIERARCHY_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "rules/clause.h"

namespace iqs {

// One node of a KER type hierarchy (paper §2, Figure 2). A subtype can
// carry a *derivation specification* — the with-clause of
// `SSBN isa SUBMARINE with ShipType = "SSBN"` — stored as a point/range
// Clause. Subtypes introduced by a `contains` definition form a disjoint
// partition of the parent.
struct TypeNode {
  std::string name;
  std::string parent;  // empty for root object types
  std::optional<Clause> derivation;
  std::vector<std::string> children;  // in definition order
  bool disjoint_partition = false;    // set on children of a `contains`
};

// The forest of type hierarchies over all object types. Type inference
// (paper §4) traverses this structure: forward steps move to a derived
// subtype; generalization moves to supertypes.
class TypeHierarchy {
 public:
  TypeHierarchy() = default;

  // Registers a root object type; idempotent.
  Status AddRoot(const std::string& name);

  // Registers `sub isa super [with derivation]`. `super` must exist;
  // creates `sub`.
  Status AddIsa(const std::string& sub, const std::string& super,
                std::optional<Clause> derivation,
                bool disjoint_partition = false);

  bool Contains(const std::string& name) const;
  Result<const TypeNode*> Get(const std::string& name) const;

  // Replaces the derivation specification of an existing type.
  Status SetDerivation(const std::string& name, Clause derivation);

  // Proper supertypes of `name`, nearest first.
  Result<std::vector<std::string>> SupertypesOf(const std::string& name) const;
  // All proper subtypes, breadth-first.
  Result<std::vector<std::string>> SubtypesOf(const std::string& name) const;
  // The root of the hierarchy `name` belongs to.
  Result<std::string> RootOf(const std::string& name) const;
  // True when `ancestor` equals `name` or is a proper supertype of it.
  bool IsAOrSubtypeOf(const std::string& name,
                      const std::string& ancestor) const;

  // Finds the subtype whose derivation clause matches: same attribute
  // (SameAttribute semantics) and the derivation interval *contains* the
  // given interval. Used to attach isa readings to induced rules ("Type =
  // SSBN" -> "x isa SSBN") and to recognize type conditions in queries.
  // Returns the most specific match (deepest node); NotFound otherwise.
  Result<std::string> FindByDerivation(const Clause& clause) const;

  // All type names, roots first then definition order.
  std::vector<std::string> AllTypes() const;
  std::vector<std::string> Roots() const;

  // ASCII rendering of one hierarchy, Figure-2 style.
  Result<std::string> RenderTree(const std::string& root) const;

 private:
  int DepthOf(const std::string& name) const;

  std::map<std::string, TypeNode> nodes_;  // key: lower-cased name
  std::vector<std::string> order_;
};

}  // namespace iqs

#endif  // IQS_KER_TYPE_HIERARCHY_H_
