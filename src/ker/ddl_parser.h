#ifndef IQS_KER_DDL_PARSER_H_
#define IQS_KER_DDL_PARSER_H_

#include <string>

#include "ker/catalog.h"
#include "ker/ddl_lexer.h"

namespace iqs {

// Parses KER data-definition text (the concrete syntax of Appendix A /
// Appendix B) and applies the definitions to `catalog`. Supported
// statements:
//
//   domain: SHIP_NAME isa NAME
//   domain: AGE isa INTEGER range [0..200]
//   domain: GRADE isa STRING set of {"A", "B", "C"}
//
//   object type CLASS
//     has key: Class        domain: CHAR[4]
//     has:     Type         domain: CHAR[4]
//     has:     Displacement domain: INTEGER
//     with
//       Displacement in [2000..30000]
//       if "0101" <= Class <= "0103" then Type = "SSBN"
//
//   CLASS contains SSBN, SSN
//     with
//       if x isa CLASS and 7250 <= x.Displacement <= 30000 then x isa SSBN
//
//   SSBN isa CLASS with Type = "SSBN"
//
// Notes on the concrete syntax:
//  * keywords are case-insensitive; `:` after `domain`/`has` is optional;
//  * numeric literals keep their spelling, so "0101" compared against a
//    CHAR attribute is coerced to the string "0101", matching the paper's
//    unquoted class codes in §6;
//  * structure rules carry their role definitions inline (`x isa CLASS
//    and ...`), per the Appendix A BNF;
//  * /* ... */ comments are ignored.
Status ParseDdl(const std::string& input, KerCatalog* catalog);

}  // namespace iqs

#endif  // IQS_KER_DDL_PARSER_H_
