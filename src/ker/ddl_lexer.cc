#include "ker/ddl_lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace iqs {

bool DdlToken::IsKeyword(const std::string& kw) const {
  return kind == DdlTokenKind::kIdent && EqualsIgnoreCase(text, kw);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == '$';
}

}  // namespace

Result<std::vector<DdlToken>> LexDdl(const std::string& input) {
  std::vector<DdlToken> out;
  size_t i = 0;
  int line = 1;
  auto error = [&](const std::string& msg) {
    return Status::ParseError("DDL line " + std::to_string(line) + ": " + msg);
  };
  while (i < input.size()) {
    char c = input[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < input.size() && input[i + 1] == '*') {
      size_t end = input.find("*/", i + 2);
      if (end == std::string::npos) return error("unterminated /* comment");
      for (size_t j = i; j < end; ++j) {
        if (input[j] == '\n') ++line;
      }
      i = end + 2;
      continue;
    }
    if (c == '-' && i + 1 < input.size() && input[i + 1] == '-') {
      while (i < input.size() && input[i] != '\n') ++i;
      continue;
    }
    // Strings.
    if (c == '"') {
      std::string text;
      ++i;
      while (i < input.size() && input[i] != '"') {
        if (input[i] == '\n') return error("unterminated string literal");
        text += input[i++];
      }
      if (i >= input.size()) return error("unterminated string literal");
      ++i;
      out.push_back({DdlTokenKind::kString, std::move(text), line});
      continue;
    }
    // Numbers (optionally negative).
    bool neg_number = c == '-' && i + 1 < input.size() &&
                      std::isdigit(static_cast<unsigned char>(input[i + 1]));
    if (std::isdigit(static_cast<unsigned char>(c)) || neg_number) {
      std::string text;
      if (neg_number) {
        text += '-';
        ++i;
      }
      bool is_real = false;
      while (i < input.size()) {
        char d = input[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          text += d;
          ++i;
        } else if (d == '.' && !is_real && i + 1 < input.size() &&
                   std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
          // A '.' starts a fraction only when followed by a digit; ".."
          // (range separator) stays a symbol.
          is_real = true;
          text += d;
          ++i;
        } else {
          break;
        }
      }
      out.push_back({is_real ? DdlTokenKind::kReal : DdlTokenKind::kInt,
                     std::move(text), line});
      continue;
    }
    // Identifiers.
    if (IsIdentStart(c)) {
      std::string text;
      while (i < input.size() && IsIdentChar(input[i])) {
        // A ".." inside an identifier is really the range symbol; stop.
        if (input[i] == '.' && i + 1 < input.size() && input[i + 1] == '.') {
          break;
        }
        text += input[i++];
      }
      // Trim a trailing '.' or '-' (punctuation, not part of the name).
      while (!text.empty() && (text.back() == '.' )) {
        text.pop_back();
        --i;
      }
      out.push_back({DdlTokenKind::kIdent, std::move(text), line});
      continue;
    }
    // Multi-char symbols.
    auto match2 = [&](const char* sym) {
      return i + 1 < input.size() && input[i] == sym[0] &&
             input[i + 1] == sym[1];
    };
    if (match2("<=") || match2(">=") || match2("!=") || match2("..")) {
      out.push_back(
          {DdlTokenKind::kSymbol, std::string(input.substr(i, 2)), line});
      i += 2;
      continue;
    }
    // Single-char symbols.
    static const std::string kSingles = ":,;[](){}=<>*";
    if (kSingles.find(c) != std::string::npos) {
      out.push_back({DdlTokenKind::kSymbol, std::string(1, c), line});
      ++i;
      continue;
    }
    return error(std::string("unexpected character '") + c + "'");
  }
  out.push_back({DdlTokenKind::kEnd, "", line});
  return out;
}

}  // namespace iqs
