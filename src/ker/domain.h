#ifndef IQS_KER_DOMAIN_H_
#define IQS_KER_DOMAIN_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "rules/interval.h"

namespace iqs {

// A KER domain definition (paper §2, Appendix A.2). Domains form their own
// isa hierarchy over the basic domains (integer, real, string, date):
//
//   domain: NAME       isa CHAR[20]
//   domain: SHIP_NAME  isa NAME
//   domain: AGE        isa INTEGER range [0..200]
//
// A domain may also name an object type (an "object domain"), which is how
// relationships reference the entities they connect (INSTALL's Ship
// attribute has domain SUBMARINE).
struct DomainDef {
  std::string name;
  // Name of the parent domain; empty for the four basic domains.
  std::string parent;
  // Resolved basic type. Filled by DomainCatalog::Define.
  ValueType base_type = ValueType::kString;
  // CHAR[n] length bound; 0 = unbounded.
  int char_length = 0;
  // Optional range specification (closed/open per the BNF's '['/'(').
  std::optional<Interval> range;
  // Optional set specification ("set of {a, b, c}").
  std::vector<Value> allowed_set;
  // Set when this domain is an object type used as a domain.
  bool is_object_domain = false;

  // Checks that `v` is admissible: right basic type, within range/set,
  // within the char length. Null is always admissible.
  Status CheckValue(const Value& v) const;
};

// Registry of domain definitions with the four basic domains prebuilt
// (INTEGER, REAL, STRING, DATE) and CHAR[n] resolved on the fly.
// Names are case-insensitive.
class DomainCatalog {
 public:
  DomainCatalog();

  // Defines a named domain. `parent` must resolve (to a basic domain,
  // CHAR[n], or a previously defined domain). Range/set specs are checked
  // against the resolved basic type.
  Status Define(DomainDef def);

  // Registers an object type name so attributes can use it as a domain.
  Status DefineObjectDomain(const std::string& object_type_name);

  bool Contains(const std::string& name) const;
  Result<const DomainDef*> Get(const std::string& name) const;

  // Resolves a domain name to its basic ValueType, walking the isa chain.
  // "CHAR[20]" style names resolve to string.
  Result<ValueType> ResolveType(const std::string& name) const;

  // Checks `v` against the named domain and all ancestors' specs.
  Status CheckValue(const std::string& domain_name, const Value& v) const;

  // Names of user-defined domains, in definition order.
  std::vector<std::string> UserDomainNames() const;

  // Parses "CHAR[12]" into length 12; NotFound when not a char spec.
  static Result<int> ParseCharLength(const std::string& name);

 private:
  std::map<std::string, DomainDef> domains_;  // key: lower-cased name
  std::vector<std::string> definition_order_;
};

}  // namespace iqs

#endif  // IQS_KER_DOMAIN_H_
