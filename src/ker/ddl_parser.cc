#include "ker/ddl_parser.h"

#include <optional>

#include "common/string_util.h"
#include "fault/failpoint.h"

namespace iqs {

namespace {

// One operand of a clause: an identifier (possibly role-qualified), a
// string literal, or a number (raw spelling preserved for CHAR coercion).
struct Operand {
  enum class Kind { kIdent, kString, kNumber };
  Kind kind = Kind::kIdent;
  std::string text;
  bool is_real = false;  // for kNumber
};

class DdlParser {
 public:
  DdlParser(std::vector<DdlToken> tokens, KerCatalog* catalog)
      : tokens_(std::move(tokens)), catalog_(catalog) {}

  Status Run() {
    while (!AtEnd()) {
      if (Peek().IsSymbol(";")) {
        Advance();
        continue;
      }
      IQS_RETURN_IF_ERROR(ParseStatement());
    }
    return Status::Ok();
  }

 private:
  // ---- token helpers -----------------------------------------------------

  const DdlToken& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const DdlToken& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == DdlTokenKind::kEnd; }

  Status Error(const std::string& msg) const {
    return Status::ParseError("DDL line " + std::to_string(Peek().line) +
                              ": " + msg + " (near '" + Peek().text + "')");
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!Peek().IsKeyword(kw)) return Error("expected '" + kw + "'");
    Advance();
    return Status::Ok();
  }
  Status ExpectSymbol(const std::string& s) {
    if (!Peek().IsSymbol(s)) return Error("expected '" + s + "'");
    Advance();
    return Status::Ok();
  }
  void SkipOptionalColon() {
    if (Peek().IsSymbol(":")) Advance();
  }

  Result<std::string> ExpectIdent(const std::string& what) {
    if (Peek().kind != DdlTokenKind::kIdent) {
      return Status(StatusCode::kParseError,
                    "DDL line " + std::to_string(Peek().line) + ": expected " +
                        what + " (near '" + Peek().text + "')");
    }
    return Advance().text;
  }

  bool PeekIsCompareOp(size_t ahead = 0) const {
    const DdlToken& t = Peek(ahead);
    return t.IsSymbol("=") || t.IsSymbol("!=") || t.IsSymbol("<=") ||
           t.IsSymbol(">=") || t.IsSymbol("<") || t.IsSymbol(">");
  }

  // ---- statements ---------------------------------------------------------

  Status ParseStatement() {
    if (Peek().IsKeyword("domain")) return ParseDomainDef();
    if (Peek().IsKeyword("object") && Peek(1).IsKeyword("type")) {
      return ParseObjectTypeDef();
    }
    if (Peek().kind == DdlTokenKind::kIdent) {
      if (Peek(1).IsKeyword("contains")) return ParseContainsDef();
      if (Peek(1).IsKeyword("isa")) return ParseIsaDef();
    }
    return Error("expected a domain, object type, contains, or isa statement");
  }

  // domain [:] NAME [isa PARENT] [range ...] [set of {...}]
  Status ParseDomainDef() {
    Advance();  // domain
    SkipOptionalColon();
    IQS_ASSIGN_OR_RETURN(std::string name, ExpectIdent("domain name"));
    DomainDef def;
    def.name = name;
    if (Peek().IsKeyword("isa") || Peek().IsKeyword("on")) {
      Advance();
      IQS_ASSIGN_OR_RETURN(def.parent, ParseDomainSpec());
    }
    // Resolve base type now so range/set values can be coerced.
    ValueType base = ValueType::kString;
    if (!def.parent.empty()) {
      auto resolved = catalog_->domains().ResolveType(def.parent);
      if (resolved.ok()) base = *resolved;
    }
    if (Peek().IsKeyword("with")) Advance();
    if (Peek().IsKeyword("range")) {
      Advance();
      IQS_ASSIGN_OR_RETURN(Interval range, ParseRangeSpec(base));
      def.range = std::move(range);
    } else if (Peek().IsKeyword("set")) {
      Advance();
      IQS_RETURN_IF_ERROR(ExpectKeyword("of"));
      IQS_ASSIGN_OR_RETURN(def.allowed_set, ParseValueSet(base));
    }
    return catalog_->domains().Define(std::move(def));
  }

  // A domain spec is an identifier, optionally CHAR '[' n ']'.
  Result<std::string> ParseDomainSpec() {
    IQS_ASSIGN_OR_RETURN(std::string name, ExpectIdent("domain name"));
    if (Peek().IsSymbol("[")) {
      Advance();
      if (Peek().kind != DdlTokenKind::kInt) {
        return Status(StatusCode::kParseError,
                      "DDL line " + std::to_string(Peek().line) +
                          ": expected a length in '" + name + "[...]'");
      }
      std::string len = Advance().text;
      IQS_RETURN_IF_ERROR(ExpectSymbol("]"));
      name += "[" + len + "]";
    }
    return name;
  }

  // range '['|'(' value .. value ']'|')'
  Result<Interval> ParseRangeSpec(ValueType type) {
    bool lo_open;
    if (Peek().IsSymbol("[")) {
      lo_open = false;
    } else if (Peek().IsSymbol("(")) {
      lo_open = true;
    } else {
      return Status(StatusCode::kParseError,
                    "DDL line " + std::to_string(Peek().line) +
                        ": expected '[' or '(' in range spec");
    }
    Advance();
    IQS_ASSIGN_OR_RETURN(Value lo, ParseTypedValue(type));
    IQS_RETURN_IF_ERROR(ExpectSymbol(".."));
    IQS_ASSIGN_OR_RETURN(Value hi, ParseTypedValue(type));
    bool hi_open;
    if (Peek().IsSymbol("]")) {
      hi_open = false;
    } else if (Peek().IsSymbol(")")) {
      hi_open = true;
    } else {
      return Status(StatusCode::kParseError,
                    "DDL line " + std::to_string(Peek().line) +
                        ": expected ']' or ')' in range spec");
    }
    Advance();
    Interval closed = Interval::All();
    if (!lo_open && !hi_open) {
      IQS_ASSIGN_OR_RETURN(closed, Interval::Closed(lo, hi));
      return closed;
    }
    Interval lower = Interval::AtLeast(lo, lo_open);
    Interval upper = Interval::AtMost(hi, hi_open);
    return lower.Intersection(upper);
  }

  Result<std::vector<Value>> ParseValueSet(ValueType type) {
    IQS_RETURN_IF_ERROR(ExpectSymbol("{"));
    std::vector<Value> out;
    while (true) {
      IQS_ASSIGN_OR_RETURN(Value v, ParseTypedValue(type));
      out.push_back(std::move(v));
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    IQS_RETURN_IF_ERROR(ExpectSymbol("}"));
    return out;
  }

  // Parses a literal token coerced to `type` (numbers keep their spelling
  // when coerced to strings).
  Result<Value> ParseTypedValue(ValueType type) {
    const DdlToken& t = Peek();
    if (t.kind != DdlTokenKind::kString && t.kind != DdlTokenKind::kInt &&
        t.kind != DdlTokenKind::kReal && t.kind != DdlTokenKind::kIdent) {
      return Status(StatusCode::kParseError,
                    "DDL line " + std::to_string(t.line) +
                        ": expected a value (near '" + t.text + "')");
    }
    std::string text = Advance().text;
    return Value::FromText(type, text);
  }

  // object type NAME (has [key][:] ATTR domain[:] SPEC)* [with ...]
  Status ParseObjectTypeDef() {
    Advance();  // object
    Advance();  // type
    ObjectTypeDef def;
    IQS_ASSIGN_OR_RETURN(def.name, ExpectIdent("object type name"));
    while (Peek().IsKeyword("has")) {
      Advance();
      KerAttribute attr;
      if (Peek().IsKeyword("key")) {
        Advance();
        attr.is_key = true;
      }
      SkipOptionalColon();
      IQS_ASSIGN_OR_RETURN(attr.name, ExpectIdent("attribute name"));
      IQS_RETURN_IF_ERROR(ExpectKeyword("domain"));
      SkipOptionalColon();
      IQS_ASSIGN_OR_RETURN(attr.domain, ParseDomainSpec());
      def.attributes.push_back(std::move(attr));
    }
    if (Peek().IsKeyword("with")) {
      Advance();
      IQS_ASSIGN_OR_RETURN(def.constraints, ParseConstraints(&def));
    }
    return catalog_->DefineObjectType(std::move(def));
  }

  // NAME contains A, B, ... [with ...]
  Status ParseContainsDef() {
    IQS_ASSIGN_OR_RETURN(std::string parent, ExpectIdent("type name"));
    IQS_RETURN_IF_ERROR(ExpectKeyword("contains"));
    std::vector<std::string> children;
    while (true) {
      IQS_ASSIGN_OR_RETURN(std::string child, ExpectIdent("subtype name"));
      children.push_back(std::move(child));
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    // Register the subtypes before parsing the with-clause so structure
    // rules can reference them.
    IQS_RETURN_IF_ERROR(catalog_->DefineContains(parent, children));
    std::vector<KerConstraint> constraints;
    if (Peek().IsKeyword("with")) {
      Advance();
      auto owner = catalog_->GetObjectType(parent);
      IQS_ASSIGN_OR_RETURN(
          constraints, ParseConstraints(owner.ok() ? *owner : nullptr));
    }
    if (!constraints.empty()) {
      // Route through DefineContains' constraint handling with no new
      // children.
      IQS_RETURN_IF_ERROR(
          catalog_->DefineContains(parent, {}, std::move(constraints)));
    }
    return Status::Ok();
  }

  // SUB isa SUPER [with <derivation clause>]
  Status ParseIsaDef() {
    IQS_ASSIGN_OR_RETURN(std::string sub, ExpectIdent("subtype name"));
    IQS_RETURN_IF_ERROR(ExpectKeyword("isa"));
    IQS_ASSIGN_OR_RETURN(std::string super, ExpectIdent("supertype name"));
    std::optional<Clause> derivation;
    if (Peek().IsKeyword("with")) {
      Advance();
      // Context: the supertype's (root's) attributes.
      const ObjectTypeDef* context = nullptr;
      auto root = catalog_->hierarchy().RootOf(super);
      if (root.ok()) {
        auto def = catalog_->GetObjectType(*root);
        if (def.ok()) context = *def;
      }
      IQS_ASSIGN_OR_RETURN(Clause clause, ParseClause(context, {}));
      derivation = std::move(clause);
    }
    // A `contains` definition may have introduced the subtype already; an
    // isa statement for it then just supplies the derivation.
    auto existing = catalog_->hierarchy().Get(sub);
    if (existing.ok()) {
      if (!EqualsIgnoreCase((*existing)->parent, super)) {
        return Error("type '" + sub + "' is already a subtype of '" +
                     (*existing)->parent + "'");
      }
      if (derivation.has_value()) {
        return catalog_->SetDerivation(sub, std::move(*derivation));
      }
      return Status::Ok();
    }
    return catalog_->DefineSubtype(sub, super, std::move(derivation));
  }

  // ---- constraints ---------------------------------------------------------

  Result<std::vector<KerConstraint>> ParseConstraints(
      const ObjectTypeDef* context) {
    std::vector<KerConstraint> out;
    while (true) {
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      if (Peek().IsKeyword("if")) {
        IQS_ASSIGN_OR_RETURN(KerConstraint c, ParseRuleConstraint(context));
        out.push_back(std::move(c));
        continue;
      }
      if (Peek().kind == DdlTokenKind::kIdent && Peek(1).IsKeyword("in")) {
        IQS_ASSIGN_OR_RETURN(KerConstraint c, ParseDomainConstraint(context));
        out.push_back(std::move(c));
        continue;
      }
      break;
    }
    return out;
  }

  // ATTR in [lo..hi] | ATTR in set of {...}
  Result<KerConstraint> ParseDomainConstraint(const ObjectTypeDef* context) {
    IQS_ASSIGN_OR_RETURN(std::string attr, ExpectIdent("attribute name"));
    IQS_RETURN_IF_ERROR(ExpectKeyword("in"));
    ValueType type = AttributeType(context, {}, attr);
    KerConstraint c;
    c.kind = KerConstraint::Kind::kDomainRange;
    if (Peek().IsKeyword("set")) {
      Advance();
      IQS_RETURN_IF_ERROR(ExpectKeyword("of"));
      IQS_ASSIGN_OR_RETURN(c.allowed_set, ParseValueSet(type));
      c.domain_clause = Clause(attr, Interval::All());
    } else {
      if (Peek().IsKeyword("range")) Advance();
      IQS_ASSIGN_OR_RETURN(Interval range, ParseRangeSpec(type));
      c.domain_clause = Clause(attr, std::move(range));
    }
    return c;
  }

  // if <role|clause> (and <role|clause>)* then <consequent>
  Result<KerConstraint> ParseRuleConstraint(const ObjectTypeDef* context) {
    Advance();  // if
    KerConstraint c;
    c.kind = KerConstraint::Kind::kRule;
    while (true) {
      // Role definition: IDENT isa IDENT.
      if (Peek().kind == DdlTokenKind::kIdent && Peek(1).IsKeyword("isa")) {
        RoleBinding role;
        role.variable = Advance().text;
        Advance();  // isa
        IQS_ASSIGN_OR_RETURN(role.type_name, ExpectIdent("role type"));
        c.roles.push_back(std::move(role));
      } else {
        IQS_ASSIGN_OR_RETURN(Clause clause, ParseClause(context, c.roles));
        c.rule.lhs.push_back(std::move(clause));
      }
      if (Peek().IsKeyword("and")) {
        Advance();
        continue;
      }
      break;
    }
    IQS_RETURN_IF_ERROR(ExpectKeyword("then"));
    // Consequent: VAR isa TYPE, or ATTR = const.
    if (Peek().kind == DdlTokenKind::kIdent && Peek(1).IsKeyword("isa")) {
      std::string var = Advance().text;
      Advance();  // isa
      IQS_ASSIGN_OR_RETURN(std::string type_name, ExpectIdent("type name"));
      c.rule.rhs.isa_type = type_name;
      c.rule.rhs.isa_variable = var;
      // Materialize the consequent clause from the type's derivation when
      // available; otherwise keep a symbolic isa clause.
      auto node = catalog_->hierarchy().Get(type_name);
      if (node.ok() && (*node)->derivation.has_value()) {
        c.rule.rhs.clause = *(*node)->derivation;
      } else {
        c.rule.rhs.clause =
            Clause::Equals("isa(" + var + ")", Value::String(type_name));
      }
    } else {
      IQS_ASSIGN_OR_RETURN(Clause clause, ParseClause(context, c.roles));
      if (!clause.IsPoint()) {
        return Status(StatusCode::kParseError,
                      "DDL line " + std::to_string(Peek().line) +
                          ": rule consequent must be an equality");
      }
      c.rule.rhs.clause = std::move(clause);
      // Attach the isa reading when the consequent matches a derivation.
      auto type_name = catalog_->hierarchy().FindByDerivation(c.rule.rhs.clause);
      if (type_name.ok()) c.rule.rhs.isa_type = *type_name;
    }
    c.rule.scheme = "declared";
    return c;
  }

  // ---- clauses -------------------------------------------------------------

  Result<Operand> ParseOperand() {
    const DdlToken& t = Peek();
    Operand op;
    switch (t.kind) {
      case DdlTokenKind::kIdent:
        op.kind = Operand::Kind::kIdent;
        break;
      case DdlTokenKind::kString:
        op.kind = Operand::Kind::kString;
        break;
      case DdlTokenKind::kInt:
        op.kind = Operand::Kind::kNumber;
        break;
      case DdlTokenKind::kReal:
        op.kind = Operand::Kind::kNumber;
        op.is_real = true;
        break;
      default:
        return Status(StatusCode::kParseError,
                      "DDL line " + std::to_string(t.line) +
                          ": expected a clause operand (near '" + t.text +
                          "')");
    }
    op.text = Advance().text;
    op.is_real = t.kind == DdlTokenKind::kReal;
    return op;
  }

  // Is this operand a reference to an attribute, given the context object
  // type and the roles in scope?
  bool IsAttributeRef(const Operand& op, const ObjectTypeDef* context,
                      const std::vector<RoleBinding>& roles) const {
    if (op.kind != Operand::Kind::kIdent) return false;
    size_t dot = op.text.find('.');
    if (dot != std::string::npos) {
      std::string prefix = op.text.substr(0, dot);
      for (const RoleBinding& r : roles) {
        if (EqualsIgnoreCase(r.variable, prefix)) return true;
      }
      // Qualified by an object type name.
      return catalog_->HasObjectType(prefix);
    }
    if (context != nullptr && context->FindAttribute(op.text) != nullptr) {
      return true;
    }
    return false;
  }

  // Resolved value type of the attribute reference `name`.
  ValueType AttributeType(const ObjectTypeDef* context,
                          const std::vector<RoleBinding>& roles,
                          const std::string& name) const {
    std::string type_owner;
    std::string attr = name;
    size_t dot = name.find('.');
    if (dot != std::string::npos) {
      std::string prefix = name.substr(0, dot);
      attr = name.substr(dot + 1);
      type_owner = prefix;
      for (const RoleBinding& r : roles) {
        if (EqualsIgnoreCase(r.variable, prefix)) {
          type_owner = r.type_name;
          break;
        }
      }
    }
    const ObjectTypeDef* owner = context;
    if (!type_owner.empty()) {
      // Roles may name subtypes; attributes live on the root object type.
      std::string lookup = type_owner;
      auto root = catalog_->hierarchy().RootOf(type_owner);
      if (root.ok()) lookup = *root;
      auto def = catalog_->GetObjectType(lookup);
      if (def.ok()) owner = *def;
    }
    if (owner != nullptr) {
      const KerAttribute* a = owner->FindAttribute(attr);
      if (a != nullptr) {
        auto type = catalog_->domains().ResolveType(a->domain);
        if (type.ok()) return *type;
      }
    }
    return ValueType::kString;
  }

  Result<Value> OperandToValue(const Operand& op, ValueType type) {
    return Value::FromText(type, op.text);
  }

  // Clause forms:
  //   lo op ATTR op hi      (op in {<, <=})
  //   ATTR op const | const op ATTR | ATTR = const
  Result<Clause> ParseClause(const ObjectTypeDef* context,
                             const std::vector<RoleBinding>& roles) {
    int line = Peek().line;
    IQS_ASSIGN_OR_RETURN(Operand first, ParseOperand());
    if (!PeekIsCompareOp()) {
      return Status(StatusCode::kParseError,
                    "DDL line " + std::to_string(line) +
                        ": expected a comparison operator");
    }
    std::string op1 = Advance().text;
    IQS_ASSIGN_OR_RETURN(Operand second, ParseOperand());
    if (PeekIsCompareOp()) {
      // Three-operand range: first op1 ATTR op2 third.
      std::string op2 = Advance().text;
      IQS_ASSIGN_OR_RETURN(Operand third, ParseOperand());
      if ((op1 != "<=" && op1 != "<") || (op2 != "<=" && op2 != "<")) {
        return Status(StatusCode::kParseError,
                      "DDL line " + std::to_string(line) +
                          ": range clauses must use '<' or '<='");
      }
      std::string attr = second.text;
      ValueType type = AttributeType(context, roles, attr);
      IQS_ASSIGN_OR_RETURN(Value lo, OperandToValue(first, type));
      IQS_ASSIGN_OR_RETURN(Value hi, OperandToValue(third, type));
      Interval lower = Interval::AtLeast(std::move(lo), op1 == "<");
      Interval upper = Interval::AtMost(std::move(hi), op2 == "<");
      Interval iv = lower.Intersection(upper);
      if (iv.IsEmpty()) {
        return Status(StatusCode::kParseError,
                      "DDL line " + std::to_string(line) +
                          ": empty range in clause over '" + attr + "'");
      }
      return Clause(attr, std::move(iv));
    }
    // Two-operand form: decide which side is the attribute.
    bool first_is_attr = IsAttributeRef(first, context, roles);
    bool second_is_attr = IsAttributeRef(second, context, roles);
    if (!first_is_attr && !second_is_attr) {
      // Fall back: an identifier on the left is taken as the attribute.
      if (first.kind == Operand::Kind::kIdent) {
        first_is_attr = true;
      } else if (second.kind == Operand::Kind::kIdent) {
        second_is_attr = true;
      } else {
        return Status(StatusCode::kParseError,
                      "DDL line " + std::to_string(line) +
                          ": no attribute reference in clause");
      }
    }
    if (first_is_attr && second_is_attr) {
      return Status(StatusCode::kParseError,
                    "DDL line " + std::to_string(line) +
                        ": attribute-to-attribute clauses are not supported");
    }
    std::string attr = first_is_attr ? first.text : second.text;
    const Operand& constant = first_is_attr ? second : first;
    std::string op = op1;
    if (!first_is_attr) {
      // const op ATTR  ==  ATTR op' const with the operator mirrored.
      if (op == "<") op = ">";
      else if (op == "<=") op = ">=";
      else if (op == ">") op = "<";
      else if (op == ">=") op = "<=";
    }
    ValueType type = AttributeType(context, roles, attr);
    IQS_ASSIGN_OR_RETURN(Value v, OperandToValue(constant, type));
    if (op == "=") return Clause::Equals(attr, std::move(v));
    if (op == "<") return Clause(attr, Interval::AtMost(std::move(v), true));
    if (op == "<=") return Clause(attr, Interval::AtMost(std::move(v), false));
    if (op == ">") return Clause(attr, Interval::AtLeast(std::move(v), true));
    if (op == ">=") {
      return Clause(attr, Interval::AtLeast(std::move(v), false));
    }
    return Status(StatusCode::kParseError,
                  "DDL line " + std::to_string(line) + ": operator '" + op +
                      "' is not valid in a clause");
  }

  std::vector<DdlToken> tokens_;
  size_t pos_ = 0;
  KerCatalog* catalog_;
};

}  // namespace

Status ParseDdl(const std::string& input, KerCatalog* catalog) {
  IQS_FAILPOINT("ddl.parse");
  IQS_ASSIGN_OR_RETURN(std::vector<DdlToken> tokens, LexDdl(input));
  DdlParser parser(std::move(tokens), catalog);
  return parser.Run();
}

}  // namespace iqs
