#include "ker/object_type.h"

#include "common/string_util.h"

namespace iqs {

namespace {

std::string DdlValue(const Value& v) {
  if (v.type() == ValueType::kString) return "\"" + v.ToString() + "\"";
  return v.ToString();
}

}  // namespace

std::string ClauseToDdl(const Clause& clause) {
  const Interval& iv = clause.interval();
  if (iv.IsPoint()) {
    return clause.attribute() + " = " + DdlValue(*iv.lo());
  }
  if (iv.lo().has_value() && iv.hi().has_value()) {
    return DdlValue(*iv.lo()) + (iv.lo_open() ? " < " : " <= ") +
           clause.attribute() + (iv.hi_open() ? " < " : " <= ") +
           DdlValue(*iv.hi());
  }
  if (iv.lo().has_value()) {
    return clause.attribute() + (iv.lo_open() ? " > " : " >= ") +
           DdlValue(*iv.lo());
  }
  if (iv.hi().has_value()) {
    return clause.attribute() + (iv.hi_open() ? " < " : " <= ") +
           DdlValue(*iv.hi());
  }
  return clause.attribute() + " unrestricted";
}

std::string KerConstraint::ToString() const {
  if (kind == Kind::kDomainRange) {
    if (!allowed_set.empty()) {
      std::string out = domain_clause.attribute() + " in set of {";
      for (size_t i = 0; i < allowed_set.size(); ++i) {
        if (i > 0) out += ", ";
        out += "\"" + allowed_set[i].ToString() + "\"";
      }
      out += "}";
      return out;
    }
    // Range specs render in the BNF's "[lo..hi]" form so ToString output
    // is re-parseable.
    const Interval& iv = domain_clause.interval();
    std::string out = domain_clause.attribute() + " in ";
    out += iv.lo_open() ? "(" : "[";
    out += iv.lo().has_value() ? iv.lo()->ToString() : "";
    out += "..";
    out += iv.hi().has_value() ? iv.hi()->ToString() : "";
    out += iv.hi_open() ? ")" : "]";
    return out;
  }
  // Structure rules carry their role definitions inline, per the
  // Appendix A BNF ("if <role definitions> and <conjunctives> then ..."),
  // which keeps ToString output re-parseable.
  std::string out = "if ";
  for (const RoleBinding& role : roles) {
    out += role.variable + " isa " + role.type_name + " and ";
  }
  for (size_t i = 0; i < rule.lhs.size(); ++i) {
    if (i > 0) out += " and ";
    out += ClauseToDdl(rule.lhs[i]);
  }
  out += " then ";
  // Print the declarative consequent clause (the isa reading is derived
  // information the parser re-attaches); synthetic isa(var) clauses —
  // structure rules for types without a derivation — print as isa.
  if (StartsWith(rule.rhs.clause.attribute(), "isa(")) {
    out += rule.rhs.isa_variable + " isa " + rule.rhs.isa_type;
  } else {
    out += ClauseToDdl(rule.rhs.clause);
  }
  return out;
}

const KerAttribute* ObjectTypeDef::FindAttribute(
    const std::string& attr_name) const {
  for (const KerAttribute& a : attributes) {
    if (EqualsIgnoreCase(a.name, attr_name)) return &a;
  }
  return nullptr;
}

std::vector<KerAttribute> ObjectTypeDef::ObjectDomainAttributes(
    const DomainCatalog& domains) const {
  std::vector<KerAttribute> out;
  for (const KerAttribute& a : attributes) {
    auto def = domains.Get(a.domain);
    if (def.ok() && (*def)->is_object_domain) out.push_back(a);
  }
  return out;
}

Result<Schema> ObjectTypeDef::ToSchema(const DomainCatalog& domains) const {
  std::vector<AttributeDef> attrs;
  attrs.reserve(attributes.size());
  for (const KerAttribute& a : attributes) {
    IQS_ASSIGN_OR_RETURN(ValueType type, domains.ResolveType(a.domain));
    attrs.push_back(AttributeDef{a.name, type, a.is_key});
  }
  return Schema::Create(std::move(attrs));
}

Status ObjectTypeDef::CheckTuple(const DomainCatalog& domains,
                                 const Schema& schema,
                                 const Tuple& tuple) const {
  if (tuple.size() != attributes.size()) {
    return Status::InvalidArgument("tuple arity does not match object type " +
                                   name);
  }
  for (size_t i = 0; i < attributes.size(); ++i) {
    IQS_RETURN_IF_ERROR(domains.CheckValue(attributes[i].domain, tuple.at(i)));
  }
  for (const KerConstraint& c : constraints) {
    if (c.kind != KerConstraint::Kind::kDomainRange) continue;
    auto idx = schema.IndexOf(c.domain_clause.BaseAttribute());
    if (!idx.ok()) continue;  // constraint over an inherited attribute
    const Value& v = tuple.at(*idx);
    if (v.is_null()) continue;
    if (!c.allowed_set.empty()) {
      bool found = false;
      for (const Value& allowed : c.allowed_set) {
        if (allowed == v) {
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::ConstraintViolation(
            "value " + v.ToString() + " violates set constraint on " +
            c.domain_clause.attribute() + " of " + name);
      }
    } else if (!c.domain_clause.Satisfies(v)) {
      return Status::ConstraintViolation(
          "value " + v.ToString() + " violates range constraint " +
          c.domain_clause.ToConditionString() + " of " + name);
    }
  }
  return Status::Ok();
}

std::string ObjectTypeDef::ToString() const {
  std::string out = "object type " + name + "\n";
  for (const KerAttribute& a : attributes) {
    out += a.is_key ? "  has key: " : "  has:     ";
    out += PadRight(a.name, 16) + " domain: " + a.domain + "\n";
  }
  if (!constraints.empty()) {
    out += "  with\n";
    for (const KerConstraint& c : constraints) {
      out += "    " + c.ToString() + "\n";
    }
  }
  return out;
}

}  // namespace iqs
