#ifndef IQS_KER_DDL_LEXER_H_
#define IQS_KER_DDL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace iqs {

// Token kinds for the KER data-definition language (Appendix A). Keywords
// are delivered as kIdent and matched case-insensitively by the parser, so
// attribute names that collide with keywords still lex.
enum class DdlTokenKind {
  kIdent,    // SUBMARINE, ShipId, x.Class, BQQ-2 (dots/dashes allowed inside)
  kString,   // "SSBN" (double quotes)
  kInt,      // 7250
  kReal,     // 3.5
  kSymbol,   // : , ; [ ] ( ) { } = != <= >= < > ..
  kEnd,
};

struct DdlToken {
  DdlTokenKind kind = DdlTokenKind::kEnd;
  std::string text;   // raw lexeme (numbers keep their spelling: "0101")
  int line = 1;

  bool IsSymbol(const std::string& s) const {
    return kind == DdlTokenKind::kSymbol && text == s;
  }
  // Case-insensitive keyword test (only for kIdent).
  bool IsKeyword(const std::string& kw) const;
};

// Lexes the whole input. Comments: /* ... */ (may span lines). Identifiers
// start with a letter or '_' and may contain letters, digits, '_', '-',
// '.', '$'. A '-' directly followed by a digit at token start begins a
// negative number.
Result<std::vector<DdlToken>> LexDdl(const std::string& input);

}  // namespace iqs

#endif  // IQS_KER_DDL_LEXER_H_
