#ifndef IQS_KER_VALIDATOR_H_
#define IQS_KER_VALIDATOR_H_

#include <string>
#include <vector>

#include "ker/catalog.h"
#include "relational/database.h"

namespace iqs {

// Validation of an extensional database against its KER schema: the
// with-constraints are integrity constraints (paper §1 cites their
// classical enforcement role), so a conforming EDB must satisfy them.
// The validator checks, for every object type with a relation of the
// same name:
//  * each attribute value against its (possibly derived) domain —
//    basic type, CHAR length bound, range/set specs along the isa chain;
//  * each kDomainRange with-constraint;
//  * each declared constraint *rule*: rows satisfying a rule's LHS must
//    satisfy its RHS (checked for single-clause intra-object rules whose
//    attributes resolve in the relation);
//  * referential integrity of object-domain attributes: every non-null
//    value must appear as a key of the referenced object type's relation.

struct ValidationIssue {
  std::string relation;
  size_t row = 0;  // 0-based row index
  std::string message;

  std::string ToString() const;
};

// Scans the whole database; returns every violation found (empty means
// conforming). Relations without a matching object type are ignored
// (rule meta-relations, temporaries).
Result<std::vector<ValidationIssue>> ValidateDatabase(
    const Database& db, const KerCatalog& catalog);

}  // namespace iqs

#endif  // IQS_KER_VALIDATOR_H_
