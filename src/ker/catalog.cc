#include "ker/catalog.h"

#include "common/string_util.h"

namespace iqs {

Status KerCatalog::DefineObjectType(ObjectTypeDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("object type name must not be empty");
  }
  std::string key = ToLower(def.name);
  if (object_types_.count(key) > 0) {
    return Status::AlreadyExists("object type '" + def.name +
                                 "' already defined");
  }
  for (const KerAttribute& a : def.attributes) {
    if (!domains_.Contains(a.domain)) {
      // Unknown domains are taken as forward references to object types
      // defined later (the ship schema defines SUBMARINE, whose Class
      // attribute has domain CLASS, before CLASS itself) and registered
      // as object domains immediately.
      IQS_RETURN_IF_ERROR(domains_.DefineObjectDomain(a.domain));
    }
  }
  IQS_RETURN_IF_ERROR(hierarchy_.AddRoot(def.name));
  IQS_RETURN_IF_ERROR(domains_.DefineObjectDomain(def.name));
  object_type_order_.push_back(def.name);
  object_types_[key] = std::move(def);
  return Status::Ok();
}

Status KerCatalog::DefineSubtype(const std::string& sub,
                                 const std::string& super,
                                 std::optional<Clause> derivation,
                                 std::vector<KerConstraint> extra_constraints) {
  IQS_RETURN_IF_ERROR(hierarchy_.AddIsa(sub, super, std::move(derivation)));
  if (!extra_constraints.empty()) {
    // Constraints attach to the root object type's definition.
    IQS_ASSIGN_OR_RETURN(std::string root, hierarchy_.RootOf(sub));
    auto it = object_types_.find(ToLower(root));
    if (it == object_types_.end()) {
      return Status::NotFound("object type '" + root + "' is not defined");
    }
    for (KerConstraint& c : extra_constraints) {
      it->second.constraints.push_back(std::move(c));
    }
  }
  return Status::Ok();
}

Status KerCatalog::DefineContains(const std::string& parent,
                                  const std::vector<std::string>& children,
                                  std::vector<KerConstraint> constraints) {
  if (!hierarchy_.Contains(parent)) {
    return Status::NotFound("type '" + parent + "' is not defined");
  }
  for (const std::string& child : children) {
    IQS_RETURN_IF_ERROR(hierarchy_.AddIsa(child, parent, std::nullopt,
                                          /*disjoint_partition=*/true));
  }
  if (!constraints.empty()) {
    IQS_ASSIGN_OR_RETURN(std::string root, hierarchy_.RootOf(parent));
    auto it = object_types_.find(ToLower(root));
    if (it == object_types_.end()) {
      return Status::NotFound("object type '" + root + "' is not defined");
    }
    for (KerConstraint& c : constraints) {
      // Structure rules in a contains-clause often *are* the derivations
      // ("if x.Sonar ... then x isa BQQ" with a single LHS clause). Attach
      // the derivation to the child type when it has none yet.
      if (c.kind == KerConstraint::Kind::kRule &&
          c.rule.rhs.HasIsaReading() && c.rule.lhs.size() == 1) {
        auto node = hierarchy_.Get(c.rule.rhs.isa_type);
        if (node.ok() && !(*node)->derivation.has_value()) {
          // Best effort; ignore failures (type may be in another branch).
          (void)SetDerivation(c.rule.rhs.isa_type, c.rule.lhs[0]);
        }
      }
      it->second.constraints.push_back(std::move(c));
    }
  }
  return Status::Ok();
}

Status KerCatalog::SetDerivation(const std::string& type_name,
                                 Clause derivation) {
  return hierarchy_.SetDerivation(type_name, std::move(derivation));
}

bool KerCatalog::HasObjectType(const std::string& name) const {
  return object_types_.count(ToLower(name)) > 0;
}

Result<const ObjectTypeDef*> KerCatalog::GetObjectType(
    const std::string& name) const {
  auto it = object_types_.find(ToLower(name));
  if (it == object_types_.end()) {
    return Status::NotFound("object type '" + name + "' is not defined");
  }
  return &it->second;
}

std::vector<std::string> KerCatalog::ObjectTypeNames() const {
  return object_type_order_;
}

std::vector<std::string> KerCatalog::RelationshipTypeNames() const {
  std::vector<std::string> out;
  for (const std::string& name : object_type_order_) {
    const ObjectTypeDef& def = object_types_.at(ToLower(name));
    if (!def.ObjectDomainAttributes(domains_).empty()) out.push_back(name);
  }
  return out;
}

Result<std::string> KerCatalog::OwnerOfAttribute(
    const std::string& qualified) const {
  size_t dot = qualified.rfind('.');
  if (dot != std::string::npos) {
    std::string owner = qualified.substr(0, dot);
    std::string attr = qualified.substr(dot + 1);
    IQS_ASSIGN_OR_RETURN(const ObjectTypeDef* def, GetObjectType(owner));
    if (def->FindAttribute(attr) == nullptr) {
      return Status::NotFound("object type '" + owner +
                              "' has no attribute '" + attr + "'");
    }
    return def->name;
  }
  std::string found;
  for (const std::string& name : object_type_order_) {
    const ObjectTypeDef& def = object_types_.at(ToLower(name));
    if (def.FindAttribute(qualified) != nullptr) {
      if (!found.empty()) {
        return Status::InvalidArgument("attribute '" + qualified +
                                       "' is ambiguous (in " + found +
                                       " and " + name + ")");
      }
      found = name;
    }
  }
  if (found.empty()) {
    return Status::NotFound("no object type has attribute '" + qualified +
                            "'");
  }
  return found;
}

RuleSet KerCatalog::DeclaredRules() const {
  RuleSet out;
  for (const std::string& name : object_type_order_) {
    const ObjectTypeDef& def = object_types_.at(ToLower(name));
    for (const KerConstraint& c : def.constraints) {
      if (c.kind != KerConstraint::Kind::kRule) continue;
      Rule rule = c.rule;
      rule.id = 0;  // renumbered by Add
      rule.source_relation = def.name;
      if (rule.scheme.empty()) rule.scheme = "declared";
      // Attach an isa reading when the RHS clause matches a derivation.
      if (!rule.rhs.HasIsaReading()) {
        auto type_name = hierarchy_.FindByDerivation(rule.rhs.clause);
        if (type_name.ok()) rule.rhs.isa_type = *type_name;
      }
      out.Add(std::move(rule));
    }
  }
  return out;
}

std::string KerCatalog::ToDdl() const {
  std::string out;
  for (const std::string& name : domains_.UserDomainNames()) {
    const DomainDef& def = **domains_.Get(name);
    out += "domain: " + def.name;
    if (!def.parent.empty()) out += " isa " + def.parent;
    if (def.range.has_value()) {
      out += " range ";
      out += def.range->lo_open() ? "(" : "[";
      out += def.range->lo().has_value() ? def.range->lo()->ToString() : "";
      out += "..";
      out += def.range->hi().has_value() ? def.range->hi()->ToString() : "";
      out += def.range->hi_open() ? ")" : "]";
    }
    out += "\n";
  }
  if (!out.empty()) out += "\n";
  for (const std::string& name : object_type_order_) {
    out += object_types_.at(ToLower(name)).ToString();
    // Hierarchy under this root.
    auto subtypes = hierarchy_.SubtypesOf(name);
    if (subtypes.ok() && !subtypes->empty()) {
      auto node = hierarchy_.Get(name);
      if (node.ok() && !(*node)->children.empty()) {
        out += name + " contains " + Join((*node)->children, ", ") + "\n";
        for (const std::string& sub : *subtypes) {
          auto sub_node = hierarchy_.Get(sub);
          if (sub_node.ok() && (*sub_node)->derivation.has_value()) {
            out += sub + " isa " + (*sub_node)->parent + " with " +
                   ClauseToDdl(*(*sub_node)->derivation) + "\n";
          }
        }
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace iqs
