#include "core/query_processor.h"

#include <chrono>
#include <map>

#include "common/string_util.h"
#include "exec/exec_context.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "rules/subsumption.h"

namespace iqs {

namespace {

// Microseconds (rounded up, so a stage that ran reports nonzero) between
// two steady-clock points.
int64_t MicrosBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  int64_t nanos =
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count();
  return nanos <= 0 ? 0 : (nanos + 999) / 1000;
}

// Per-call snapshots of virtual sys.* relations named in FROM, keyed by
// lowercased name. Describe() consults schemas only, so materializing a
// snapshot distinct from the executor's is safe: virtual schemas are fixed
// even though their rows are live.
using VirtualSnapshots = std::map<std::string, Relation>;

Result<const Relation*> LookupRelation(const Database& db,
                                       const VirtualSnapshots& virtuals,
                                       const std::string& name) {
  auto it = virtuals.find(ToLower(name));
  if (it != virtuals.end()) return &it->second;
  return db.Get(name);
}

// Finds the relation (by real name) owning `ref` among the FROM tables.
Result<std::pair<std::string, const Relation*>> OwnerTable(
    const Database& db, const VirtualSnapshots& virtuals,
    const std::vector<TableRef>& from, const ColumnRef& ref) {
  if (!ref.qualifier.empty()) {
    for (const TableRef& table : from) {
      if (EqualsIgnoreCase(table.effective_name(), ref.qualifier) ||
          EqualsIgnoreCase(table.name, ref.qualifier)) {
        IQS_ASSIGN_OR_RETURN(const Relation* rel,
                             LookupRelation(db, virtuals, table.name));
        if (!rel->schema().Contains(ref.name)) {
          return Status::NotFound("table '" + table.name +
                                  "' has no column '" + ref.name + "'");
        }
        return std::make_pair(table.name, rel);
      }
    }
    return Status::NotFound("no FROM table matches qualifier '" +
                            ref.qualifier + "'");
  }
  std::pair<std::string, const Relation*> found{"", nullptr};
  for (const TableRef& table : from) {
    IQS_ASSIGN_OR_RETURN(const Relation* rel,
                         LookupRelation(db, virtuals, table.name));
    if (rel->schema().Contains(ref.name)) {
      if (found.second != nullptr) {
        return Status::InvalidArgument("column '" + ref.name +
                                       "' is ambiguous in the FROM list");
      }
      found = {table.name, rel};
    }
  }
  if (found.second == nullptr) {
    return Status::NotFound("no FROM table has column '" + ref.name + "'");
  }
  return found;
}

// Coerces a literal operand for a clause over `type`, preserving numeric
// spellings against CHAR columns.
Result<Value> CoerceForClause(const SqlOperand& operand, ValueType type) {
  const Value& v = operand.literal;
  if (v.is_null() || v.type() == type) return v;
  if (type == ValueType::kString) {
    return Value::String(operand.raw.empty() ? v.ToString() : operand.raw);
  }
  if (type == ValueType::kReal && v.type() == ValueType::kInt) {
    return Value::Real(static_cast<double>(v.AsInt()));
  }
  if (type == ValueType::kDate && v.type() == ValueType::kString) {
    return Value::FromText(ValueType::kDate, v.AsString());
  }
  return v;  // numeric comparisons across int/real are fine as-is
}

}  // namespace

Result<QueryDescription> IntensionalQueryProcessor::Describe(
    const SelectStatement& stmt) const {
  IQS_SPAN("query.describe");
  QueryDescription description;
  VirtualSnapshots virtuals;
  for (const TableRef& table : stmt.from) {
    if (db_->IsVirtual(table.name) &&
        virtuals.count(ToLower(table.name)) == 0) {
      IQS_ASSIGN_OR_RETURN(Relation snapshot,
                           db_->MaterializeVirtual(table.name));
      virtuals.emplace(ToLower(table.name), std::move(snapshot));
    }
  }
  for (const TableRef& table : stmt.from) {
    IQS_ASSIGN_OR_RETURN(const Relation* rel,
                         LookupRelation(*db_, virtuals, table.name));
    description.object_types.push_back(rel->name());
  }
  for (const SqlExpr* conjunct : TopLevelConjuncts(stmt.where.get())) {
    if (conjunct->kind == SqlExpr::Kind::kComparison) {
      // Column-vs-literal restrictions only; joins and literal-vs-literal
      // comparisons are not answer-set characterizations.
      const SqlOperand* col = nullptr;
      const SqlOperand* lit = nullptr;
      CompareOp op = conjunct->op;
      if (conjunct->lhs.kind == SqlOperand::Kind::kColumn &&
          conjunct->rhs.kind == SqlOperand::Kind::kLiteral) {
        col = &conjunct->lhs;
        lit = &conjunct->rhs;
      } else if (conjunct->lhs.kind == SqlOperand::Kind::kLiteral &&
                 conjunct->rhs.kind == SqlOperand::Kind::kColumn) {
        col = &conjunct->rhs;
        lit = &conjunct->lhs;
        switch (op) {  // mirror the operator
          case CompareOp::kLt: op = CompareOp::kGt; break;
          case CompareOp::kLe: op = CompareOp::kGe; break;
          case CompareOp::kGt: op = CompareOp::kLt; break;
          case CompareOp::kGe: op = CompareOp::kLe; break;
          default: break;
        }
      } else {
        continue;
      }
      if (op == CompareOp::kNe || op == CompareOp::kLike) {
        continue;  // not a single interval
      }
      IQS_ASSIGN_OR_RETURN(
          auto owner, OwnerTable(*db_, virtuals, stmt.from, col->column));
      IQS_ASSIGN_OR_RETURN(size_t idx, owner.second->schema().IndexOf(
                                           col->column.name));
      ValueType type = owner.second->schema().attribute(idx).type;
      IQS_ASSIGN_OR_RETURN(Value constant, CoerceForClause(*lit, type));
      IQS_ASSIGN_OR_RETURN(Interval interval,
                           Interval::FromCompare(op, std::move(constant)));
      description.conditions.push_back(Clause(
          owner.first + "." + owner.second->schema().attribute(idx).name,
          std::move(interval)));
    } else if (conjunct->kind == SqlExpr::Kind::kBetween) {
      if (conjunct->lhs.kind != SqlOperand::Kind::kColumn) continue;
      if (conjunct->low.kind != SqlOperand::Kind::kLiteral ||
          conjunct->high.kind != SqlOperand::Kind::kLiteral) {
        continue;
      }
      IQS_ASSIGN_OR_RETURN(
          auto owner,
          OwnerTable(*db_, virtuals, stmt.from, conjunct->lhs.column));
      IQS_ASSIGN_OR_RETURN(size_t idx, owner.second->schema().IndexOf(
                                           conjunct->lhs.column.name));
      ValueType type = owner.second->schema().attribute(idx).type;
      IQS_ASSIGN_OR_RETURN(Value lo, CoerceForClause(conjunct->low, type));
      IQS_ASSIGN_OR_RETURN(Value hi, CoerceForClause(conjunct->high, type));
      IQS_ASSIGN_OR_RETURN(Interval interval,
                           Interval::Closed(std::move(lo), std::move(hi)));
      description.conditions.push_back(Clause(
          owner.first + "." + owner.second->schema().attribute(idx).name,
          std::move(interval)));
    }
  }
  return description;
}

namespace {

// Funnels every query outcome into the error budget: clean, served
// degraded, or failed outright.
void RecordOutcome(const Result<QueryResult>& result) {
  fault::ErrorBudget& budget = fault::GlobalErrorBudget();
  if (!result.ok()) {
    budget.RecordFailed();
  } else if (result->degraded()) {
    budget.RecordDegraded();
  } else {
    budget.RecordOk();
  }
}

// Appends one structured record for this query to the global query log
// (success and failure alike). Runs after RecordOutcome so a log reader
// and the error budget agree on every query's disposition.
void LogQuery(const std::string& sql, InferenceMode mode,
              uint64_t rule_epoch, uint64_t db_epoch,
              const Result<QueryResult>& result) {
  obs::QueryLogRecord record;
  record.trace_id = obs::Tracer::CurrentTraceId();
  record.sql = cache::NormalizeSql(sql);
  record.mode = InferenceModeName(mode);
  record.ok = result.ok();
  record.rule_epoch = rule_epoch;
  record.db_epoch = db_epoch;
  if (result.ok()) {
    record.stats = result->stats;
    record.degradations.reserve(result->degradations.size());
    for (const fault::DegradationEvent& event : result->degradations) {
      record.degradations.push_back(event.ToString());
    }
  } else {
    record.error = result.status().ToString();
  }
  obs::GlobalQueryLog().Append(std::move(record));
}

}  // namespace

Result<QueryResult> IntensionalQueryProcessor::Process(
    const std::string& sql, InferenceMode mode) const {
  QueryOptions options;
  options.mode = mode;
  return Process(sql, options);
}

Result<QueryResult> IntensionalQueryProcessor::Process(
    const std::string& sql, const QueryOptions& options) const {
  // Governance: a deadline, budget, or wire identity runs the whole
  // pipeline under an ExecContext. The context is shared with the
  // registry so the cancel verb and the watchdog can reach it; the
  // registration drops before the context, and the context destructor
  // returns every charged byte to the global pool.
  std::shared_ptr<exec::ExecContext> gov;
  std::optional<exec::ScopedExecContext> gov_scope;
  std::optional<exec::ScopedQueryRegistration> gov_registration;
  if (options.deadline_ms > 0 || options.max_memory_kb > 0 ||
      options.session_id != 0) {
    exec::ExecContext::Config config;
    if (options.deadline_ms > 0) {
      config.deadline = std::chrono::milliseconds(options.deadline_ms);
    }
    config.max_memory_bytes = options.max_memory_kb * 1024;
    config.session_id = options.session_id;
    config.request_id = options.request_id;
    config.statement = sql;
    gov = std::make_shared<exec::ExecContext>(std::move(config));
    gov_scope.emplace(gov.get());
    gov_registration.emplace(gov);
    IQS_COUNTER_INC("gov.queries");
  }

  // Snapshot: concurrent re-induction swaps the set; this query keeps
  // reading the version it started with. When the snapshot load faults
  // the query degrades to extensional-only instead of failing.
  std::vector<fault::DegradationEvent> pre;
  std::shared_ptr<const RuleSet> rules;
  CacheEpochs epochs;
  bool versioned = false;
  if (Status fp = fault::Hit("dict.rulebase_snapshot"); !fp.ok()) {
    pre.push_back(fault::DegradationEvent{
        "rulebase", fault::DegradeAction::kExtensionalOnly, fp.message()});
    fault::RecordDegradation(pre.back());
  } else {
    // Epochs are read *before* any derivation, together with the snapshot
    // they version: an answer computed from this snapshot is keyed under
    // these values, and a concurrent bump makes the key unreachable.
    RuleBaseVersion version = dictionary_->induced_rules_version();
    rules = version.rules;
    epochs.rule_epoch = version.epoch;
    epochs.db_epoch = db_->epoch();
    versioned = true;
  }
  Result<QueryResult> result = ProcessImpl(sql, options, rules.get(),
                                           std::move(pre),
                                           versioned ? &epochs : nullptr);
  if (result.ok() && versioned) {
    result->rule_epoch = epochs.rule_epoch;
    result->db_epoch = epochs.db_epoch;
  }
  if (result.ok() && gov != nullptr) {
    result->stats.gov_deadline_ms = gov->deadline_ms();
    result->stats.gov_mem_peak_kb = (gov->peak_bytes() + 1023) / 1024;
    if (gov->cancelled()) {
      result->stats.gov_cancelled = StatusCodeName(gov->cancel_code());
    }
  }
  RecordOutcome(result);
  LogQuery(sql, options.mode, epochs.rule_epoch, epochs.db_epoch, result);
  return result;
}

Result<QueryResult> IntensionalQueryProcessor::ProcessWith(
    const std::string& sql, InferenceMode mode, const RuleSet& rules) const {
  // Explicit rule sets carry no epoch, so answers derived from them are
  // never cached (the plan cache, keyed on text alone, still applies).
  QueryOptions options;
  options.mode = mode;
  Result<QueryResult> result = ProcessImpl(sql, options, &rules, {}, nullptr);
  RecordOutcome(result);
  LogQuery(sql, mode, /*rule_epoch=*/0, /*db_epoch=*/0, result);
  return result;
}

Result<QueryResult> IntensionalQueryProcessor::ProcessImpl(
    const std::string& sql, const QueryOptions& options,
    const RuleSet* rules, std::vector<fault::DegradationEvent> pre,
    const CacheEpochs* epochs) const {
  IQS_SPAN("query.process");
  IQS_COUNTER_INC("query.count");
  using Clock = std::chrono::steady_clock;
  const InferenceMode mode = options.mode;
  QueryResult result;
  result.degradations = std::move(pre);

  // A fired cache failpoint bypasses the cache for this query: the
  // uncached path serves the identical answer, so nothing is degraded
  // and no event is recorded — the site's fire counter is the
  // observable (policy kCacheBypass). A per-call use_cache=false (a
  // session's `set cache off`) bypasses it the same way.
  const bool cache_on = options.use_cache && cache_.enabled();
  const bool lookups_on = cache_on && fault::Hit("cache.lookup").ok();

  Clock::time_point t0 = Clock::now();
  std::string plan_key;
  if (cache_on) plan_key = cache::NormalizeSql(sql);
  bool plan_hit = false;
  std::shared_ptr<const cache::CachedPlan> plan;
  if (lookups_on) {
    IQS_SPAN("cache.plan.lookup");
    plan = cache_.plans().Lookup(plan_key);
    if (plan != nullptr) {
      result.statement = plan->statement;
      plan_hit = true;
      IQS_COUNTER_INC("cache.plan.hits");
      IQS_SPAN_ANNOTATE("cache_hit", int64_t{1});
    } else {
      IQS_COUNTER_INC("cache.plan.misses");
    }
  }
  if (!plan_hit) {
    IQS_ASSIGN_OR_RETURN(result.statement, ParseSelect(sql));
    if (cache_on && fault::Hit("cache.insert").ok()) {
      auto fresh = std::make_shared<cache::CachedPlan>();
      fresh->statement = result.statement;
      cache_.plans().Insert(plan_key, std::move(fresh));
      IQS_COUNTER_INC("cache.plan.inserts");
    }
  }
  result.stats.plan_cache_hit = plan_hit;
  Clock::time_point t1 = Clock::now();
  result.stats.parse_micros = MicrosBetween(t0, t1);

  // The description is derived from the statement AS PARSED, before any
  // semantic rewrite: the intensional answer characterizes the query the
  // user asked, and must not shift when the optimizer drops a conjunct
  // the rules imply.
  IQS_ASSIGN_OR_RETURN(result.description, Describe(result.statement));
  Clock::time_point td = Clock::now();
  result.stats.describe_micros = MicrosBetween(t1, td);

  // ---- semantic rewrite (DESIGN.md §12) ---------------------------------
  // Runs only on the versioned path: an explicit rule set (ProcessWith)
  // carries no epochs, and a rewrite whose staleness cannot be judged is
  // a rewrite that must not fire.
  const SqoMode sqo = options.sqo.value_or(sqo_mode());
  std::optional<RewritePlan> rewrite;
  if (sqo != SqoMode::kOff && rules != nullptr && epochs != nullptr) {
    if (Status fp = fault::Hit("sqo.rewrite"); !fp.ok()) {
      fault::DegradationEvent event{
          "sqo", fault::DegradeAction::kSkipRewrite, fp.message()};
      fault::RecordDegradation(event);
      result.degradations.push_back(std::move(event));
    } else if (std::optional<uint64_t> induced_from =
                   dictionary_->induced_db_epoch();
               induced_from.has_value() &&
               *induced_from != epochs->db_epoch) {
      // The rules were induced from an older database state: they may no
      // longer describe the rows, so rewriting from them could change
      // answers. Rewriting pauses until re-induction catches up.
      IQS_COUNTER_INC("sqo.stale_skips");
    } else if (plan != nullptr && plan->rewrite.has_value() &&
               plan->rewrite_mode == sqo &&
               plan->rewrite_rule_epoch == epochs->rule_epoch &&
               plan->rewrite_db_epoch == epochs->db_epoch) {
      // A cached rewrite is replayed only under the exact mode and
      // epochs it was derived under; anything else re-optimizes.
      rewrite = plan->rewrite;
      IQS_COUNTER_INC("sqo.plan_rewrites_reused");
    } else {
      Result<RewritePlan> fresh =
          optimizer_.Rewrite(result.statement, *rules, sqo, *db_, engine_);
      if (fresh.ok()) {
        rewrite = std::move(fresh).value();
        // Cache the rewritten plan under this version — and only while
        // the version still holds, so a mid-rewrite mutation or
        // re-induction cannot publish a stale rewrite under a live key.
        if (rewrite->changed() && cache_on &&
            fault::Hit("cache.insert").ok() &&
            dictionary_->rule_epoch() == epochs->rule_epoch &&
            db_->epoch() == epochs->db_epoch) {
          auto entry = std::make_shared<cache::CachedPlan>();
          entry->statement = result.statement;
          entry->rewrite = *rewrite;
          entry->rewrite_mode = sqo;
          entry->rewrite_rule_epoch = epochs->rule_epoch;
          entry->rewrite_db_epoch = epochs->db_epoch;
          cache_.plans().Insert(plan_key, std::move(entry));
          IQS_COUNTER_INC("sqo.plan_rewrites_cached");
        }
      } else {
        // A failed rewrite costs the optimization, never the answer.
        fault::DegradationEvent event{
            "sqo", fault::DegradeAction::kSkipRewrite,
            fresh.status().message()};
        fault::RecordDegradation(event);
        result.degradations.push_back(std::move(event));
      }
    }
  }
  if (rewrite.has_value() && !rewrite->changed()) rewrite.reset();
  if (rewrite.has_value()) {
    result.rewrites = rewrite->steps;
    for (const RewriteStep& step : rewrite->steps) {
      switch (step.kind) {
        case RewriteKind::kEliminated:
          IQS_COUNTER_INC("sqo.eliminated");
          ++result.stats.sqo_eliminated;
          break;
        case RewriteKind::kNarrowed:
          IQS_COUNTER_INC("sqo.narrowed");
          ++result.stats.sqo_narrowed;
          break;
        case RewriteKind::kEmptyProven:
          IQS_COUNTER_INC("sqo.empty_proven");
          result.stats.sqo_empty_proven = true;
          break;
        case RewriteKind::kIntensionalOnly:
          IQS_COUNTER_INC("sqo.intensional_only");
          result.stats.sqo_intensional_only = true;
          break;
      }
    }
  }

  // The extensional scan retries transient faults with backoff before
  // giving up — without it there is nothing worth degrading to. A plan
  // with a proven-empty (or intensional-only) answer still runs the
  // pipeline shape over zero rows, so the output schema is identical to
  // a real scan that found nothing.
  const SelectStatement& exec_stmt =
      rewrite.has_value() ? rewrite->statement : result.statement;
  const bool skip_scan = rewrite.has_value() && rewrite->skip_scan();
  int attempts = 0;
  Result<Relation> extensional = fault::RetryTransientResult<Relation>(
      "exec.scan", /*max_attempts=*/3,
      [this, &exec_stmt, skip_scan, &attempts]() {
        ++attempts;
        return skip_scan ? executor_.ExecuteSchemaOnly(exec_stmt)
                         : executor_.Execute(exec_stmt);
      });
  if (!extensional.ok()) return extensional.status();
  result.extensional = std::move(extensional).value();
  if (attempts > 1) {
    fault::DegradationEvent event{
        "executor", fault::DegradeAction::kRetry,
        "absorbed " + std::to_string(attempts - 1) +
            " transient fault(s) by retrying"};
    fault::RecordDegradation(event);
    result.degradations.push_back(std::move(event));
  }
  Clock::time_point t3 = Clock::now();
  result.stats.execute_micros = MicrosBetween(td, t3);
  result.stats.rows_scanned = executor_.last_stats().base_rows_loaded;
  result.stats.rows_returned = result.extensional.size();
  result.stats.index_prefiltered_tables =
      executor_.last_stats().index_prefiltered_tables;
  result.stats.columnar_tables = executor_.last_stats().columnar_tables;
  result.stats.columnar_blocks_total =
      executor_.last_stats().columnar_blocks_total;
  result.stats.columnar_blocks_pruned =
      executor_.last_stats().columnar_blocks_pruned;

  // Intensional-answer cache: the canonical predicate (description +
  // mode) versioned by the epochs this call started under. A hit
  // replaces the whole inference match with one LRU probe.
  const bool answer_cacheable =
      cache_on && epochs != nullptr && rules != nullptr;
  std::string answer_key;
  if (answer_cacheable) {
    answer_key = cache::AnswerKey(result.description, mode,
                                  epochs->rule_epoch, epochs->db_epoch);
  }
  bool answer_hit = false;
  if (answer_cacheable && lookups_on) {
    IQS_SPAN("cache.answer.lookup");
    if (auto cached = cache_.answers().Lookup(answer_key)) {
      result.intensional = cached->answer;
      // Replay the memoized annotations so a hit renders byte-identically
      // to the run that populated the entry. The global fault metrics saw
      // these events when they actually happened; they are not
      // re-recorded here.
      result.degradations.insert(result.degradations.end(),
                                 cached->degradations.begin(),
                                 cached->degradations.end());
      answer_hit = true;
      IQS_COUNTER_INC("cache.answer.hits");
      IQS_SPAN_ANNOTATE("cache_hit", int64_t{1});
    } else {
      IQS_COUNTER_INC("cache.answer.misses");
    }
  }
  if (!answer_hit && rules != nullptr) {
    // An inference fault costs the intensional answer, never the
    // extensional one: absorb the error, annotate, move on.
    size_t infer_from = result.degradations.size();
    Result<IntensionalAnswer> intensional = engine_.InferWith(
        result.description, mode, *rules, &result.degradations);
    if (intensional.ok()) {
      result.intensional = std::move(intensional).value();
      // Insert only (a) while the epochs still hold — if a writer or a
      // re-induction landed mid-derivation this answer may reflect the
      // newer state and must not be published under the older key — and
      // (b) when inference ran clean: a transient fault is not part of
      // the versioned state, so an answer degraded by one (skipped
      // rules) would replay its annotations long after the fault
      // cleared. Clean reruns repopulate the entry the next time.
      if (answer_cacheable && result.degradations.size() == infer_from &&
          fault::Hit("cache.insert").ok() &&
          dictionary_->rule_epoch() == epochs->rule_epoch &&
          db_->epoch() == epochs->db_epoch) {
        auto entry = std::make_shared<cache::CachedAnswer>();
        entry->answer = result.intensional;
        entry->degradations.assign(result.degradations.begin() + infer_from,
                                   result.degradations.end());
        cache_.answers().Insert(answer_key, std::move(entry));
        IQS_COUNTER_INC("cache.answer.inserts");
      }
    } else {
      fault::DegradationEvent event{
          "inference", fault::DegradeAction::kExtensionalOnly,
          intensional.status().message()};
      fault::RecordDegradation(event);
      result.degradations.push_back(std::move(event));
      IQS_COUNTER_INC("query.extensional_fallbacks");
    }
  }
  result.stats.answer_cache_hit = answer_hit;
  Clock::time_point t4 = Clock::now();
  result.stats.infer_micros = MicrosBetween(t3, t4);
  result.stats.total_micros = MicrosBetween(t0, t4);
  result.stats.degraded_events = result.degradations.size();
  if (!result.degradations.empty()) {
    IQS_SPAN_ANNOTATE("degraded_events",
                      static_cast<int64_t>(result.degradations.size()));
  }

  // Rule-firing accounting: distinct rules cited anywhere in the answer,
  // forward fact count, backward statement count.
  std::vector<int> fired;
  const IntensionalStatement* best_backward = nullptr;
  for (const IntensionalStatement& s : result.intensional.statements()) {
    if (s.direction == AnswerDirection::kContains) {
      result.stats.forward_facts += s.facts.size();
    } else {
      ++result.stats.backward_statements;
      if (s.exact && best_backward == nullptr) best_backward = &s;
    }
    for (int id : s.rule_ids) {
      bool seen = false;
      for (int existing : fired) {
        if (existing == id) seen = true;
      }
      if (!seen) fired.push_back(id);
    }
  }
  result.stats.rules_fired = fired.size();
  IQS_COUNTER_ADD("query.rules_fired", fired.size());

  // Coverage cost of the best exact backward statement (paper Example 2:
  // how much of the extensional answer the subset description reaches).
  if (best_backward != nullptr) {
    IQS_SPAN("query.coverage");
    Clock::time_point c0 = Clock::now();
    Result<double> coverage = Coverage(result, *best_backward);
    if (coverage.ok()) result.stats.coverage = *coverage;
    result.stats.coverage_micros = MicrosBetween(c0, Clock::now());
    IQS_HISTOGRAM_OBSERVE("query.coverage.micros",
                          result.stats.coverage_micros);
  }

  IQS_HISTOGRAM_OBSERVE("query.micros", result.stats.total_micros);
  IQS_SPAN_ANNOTATE("rules_fired",
                    static_cast<int64_t>(result.stats.rules_fired));
  IQS_SPAN_ANNOTATE("statements",
                    static_cast<int64_t>(result.intensional.size()));
  return result;
}

Result<double> IntensionalQueryProcessor::Coverage(
    const QueryResult& result,
    const IntensionalStatement& statement) const {
  const Relation& answers = result.extensional;
  if (answers.empty()) return 1.0;
  // Resolve each range fact against the output columns; unresolvable
  // facts (attributes not selected) are skipped.
  struct Bound {
    size_t column;
    const Clause* clause;
  };
  std::vector<Bound> bounds;
  for (const Fact& fact : statement.facts) {
    if (fact.kind != Fact::Kind::kRange) continue;
    for (size_t i = 0; i < answers.schema().size(); ++i) {
      if (SameAttribute(answers.schema().attribute(i).name,
                        fact.clause.attribute(), AttributeMatch::kBaseName)) {
        bounds.push_back(Bound{i, &fact.clause});
        break;
      }
    }
  }
  if (bounds.empty()) {
    return Status::NotFound(
        "no statement attribute appears in the extensional answer");
  }
  size_t covered = 0;
  for (const Tuple& row : answers.rows()) {
    bool ok = true;
    for (const Bound& b : bounds) {
      if (!b.clause->Satisfies(row.at(b.column))) {
        ok = false;
        break;
      }
    }
    if (ok) ++covered;
  }
  return static_cast<double>(covered) /
         static_cast<double>(answers.size());
}

}  // namespace iqs
