#include "core/snapshot.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/crc32c.h"
#include "common/string_util.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"

namespace iqs {
namespace persist {

namespace {

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string ErrnoText() { return std::strerror(errno); }

// Parses a non-negative decimal; false on any trailing garbage.
bool ParseUint(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseHex32(const std::string& text, uint32_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(text.c_str(), &end, 16);
  if (errno != 0 || end == nullptr || *end != '\0' || v > 0xFFFFFFFFull) {
    return false;
  }
  *out = static_cast<uint32_t>(v);
  return true;
}

std::string Hex32(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", v);
  return buf;
}

// Directory entries of `dir` (no "."/".."); empty when unreadable.
std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

std::string SnapshotManifest::Serialize() const {
  std::string out = "IQS_SNAPSHOT " + std::to_string(format_version) + "\n";
  out += "rule_epoch " + std::to_string(rule_epoch) + "\n";
  out += "db_epoch " + std::to_string(db_epoch) + "\n";
  for (const FileEntry& f : files) {
    out += "file " + std::to_string(f.bytes) + " " + Hex32(f.crc32c) + " " +
           f.name + "\n";
  }
  return out;
}

Result<SnapshotManifest> SnapshotManifest::Parse(const std::string& text) {
  SnapshotManifest manifest;
  manifest.files.clear();
  std::vector<std::string> lines = Split(text, '\n');
  if (lines.empty() || !StartsWith(lines[0], "IQS_SNAPSHOT ")) {
    return Status::Corruption("snapshot footer missing IQS_SNAPSHOT header");
  }
  if (!ParseUint(lines[0].substr(std::strlen("IQS_SNAPSHOT ")),
                 &manifest.format_version)) {
    return Status::Corruption("snapshot footer has a malformed version");
  }
  if (manifest.format_version != kFormatVersion) {
    return Status::Corruption("unsupported snapshot format version " +
                              std::to_string(manifest.format_version));
  }
  bool saw_rule_epoch = false;
  bool saw_db_epoch = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) {
      // Only the trailing newline may leave an empty record.
      if (i + 1 != lines.size()) {
        return Status::Corruption("snapshot footer has a blank line");
      }
      continue;
    }
    if (StartsWith(line, "rule_epoch ")) {
      if (!ParseUint(line.substr(std::strlen("rule_epoch ")),
                     &manifest.rule_epoch)) {
        return Status::Corruption("snapshot footer has a malformed rule_epoch");
      }
      saw_rule_epoch = true;
      continue;
    }
    if (StartsWith(line, "db_epoch ")) {
      if (!ParseUint(line.substr(std::strlen("db_epoch ")),
                     &manifest.db_epoch)) {
        return Status::Corruption("snapshot footer has a malformed db_epoch");
      }
      saw_db_epoch = true;
      continue;
    }
    if (StartsWith(line, "file ")) {
      // "file <bytes> <crc> <name>"; the name is everything after the
      // third space, so relation names with spaces survive.
      std::string rest = line.substr(std::strlen("file "));
      size_t sp1 = rest.find(' ');
      size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                            : rest.find(' ', sp1 + 1);
      FileEntry entry;
      if (sp2 == std::string::npos ||
          !ParseUint(rest.substr(0, sp1), &entry.bytes) ||
          !ParseHex32(rest.substr(sp1 + 1, sp2 - sp1 - 1), &entry.crc32c) ||
          sp2 + 1 >= rest.size()) {
        return Status::Corruption("snapshot footer has a malformed file row: '" +
                                  line + "'");
      }
      entry.name = rest.substr(sp2 + 1);
      manifest.files.push_back(std::move(entry));
      continue;
    }
    return Status::Corruption("snapshot footer has an unknown record: '" +
                              line + "'");
  }
  if (!saw_rule_epoch || !saw_db_epoch) {
    return Status::Corruption("snapshot footer is missing epoch records");
  }
  return manifest;
}

const FileEntry* SnapshotManifest::Find(const std::string& name) const {
  for (const FileEntry& f : files) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

Status WriteFileDurable(const std::string& path, const std::string& content) {
  std::string data = content;
  const std::string base = Basename(path);
  fault::WriteFault torn = fault::HitWriteFault("persist.torn_write", base);
  if (torn.kind == fault::WriteFault::Kind::kTorn) {
    data.resize(std::min<size_t>(static_cast<size_t>(torn.bytes), data.size()));
  }
  fault::WriteFault corrupt = fault::HitWriteFault("persist.corrupt", base);
  if (corrupt.kind == fault::WriteFault::Kind::kCorrupt && !data.empty()) {
    data[data.size() / 2] ^= 0x40;
  }
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open '" + path +
                            "' for writing: " + ErrnoText());
  }
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Status::Internal("cannot write '" + path +
                                       "': " + ErrnoText());
      ::close(fd);
      return status;
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status status =
        Status::Internal("cannot fsync '" + path + "': " + ErrnoText());
    ::close(fd);
    return status;
  }
  if (::close(fd) != 0) {
    return Status::Internal("cannot close '" + path + "': " + ErrnoText());
  }
  IQS_COUNTER_INC("persist.files.written");
  IQS_COUNTER_ADD("persist.bytes.written", data.size());
  return Status::Ok();
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("file '" + path + "' does not exist");
    }
    return Status::Internal("cannot open '" + path +
                            "' for reading: " + ErrnoText());
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status =
          Status::Internal("cannot read '" + path + "': " + ErrnoText());
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("cannot open directory '" + dir +
                            "': " + ErrnoText());
  }
  if (::fsync(fd) != 0) {
    Status status = Status::Internal("cannot fsync directory '" + dir +
                                     "': " + ErrnoText());
    ::close(fd);
    return status;
  }
  ::close(fd);
  return Status::Ok();
}

Status AtomicReplaceFile(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  IQS_RETURN_IF_ERROR(WriteFileDurable(tmp, content));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("cannot rename '" + tmp + "' to '" + path +
                            "': " + ErrnoText());
  }
  size_t slash = path.find_last_of('/');
  const std::string parent =
      slash == std::string::npos ? std::string(".") : path.substr(0, slash);
  return FsyncDir(parent);
}

std::string SnapshotDirName(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%06llu", kSnapshotPrefix,
                static_cast<unsigned long long>(id));
  return buf;
}

int64_t ParseSnapshotId(const std::string& name) {
  if (!StartsWith(name, kSnapshotPrefix)) return -1;
  std::string digits = name.substr(std::strlen(kSnapshotPrefix));
  if (digits.empty()) return -1;
  uint64_t id = 0;
  if (!ParseUint(digits, &id)) return -1;
  return static_cast<int64_t>(id);
}

std::vector<uint64_t> ListSnapshotIds(const std::string& dir) {
  std::vector<uint64_t> ids;
  for (const std::string& name : ListDir(dir)) {
    int64_t id = ParseSnapshotId(name);
    if (id >= 0) ids.push_back(static_cast<uint64_t>(id));
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<std::string> ListTmpDirs(const std::string& dir) {
  std::vector<std::string> tmps;
  for (const std::string& name : ListDir(dir)) {
    if (StartsWith(name, kSnapshotPrefix) && EndsWith(name, kTmpSuffix)) {
      tmps.push_back(name);
    }
  }
  return tmps;
}

std::string ReadCurrent(const std::string& dir) {
  Result<std::string> content = ReadFileToString(dir + "/" + kCurrentFile);
  if (!content.ok()) return "";
  return std::string(StripWhitespace(*content));
}

SnapshotHealth VerifySnapshot(const std::string& snapshot_dir) {
  SnapshotHealth health;
  health.name = Basename(snapshot_dir);
  Result<std::string> footer =
      ReadFileToString(snapshot_dir + "/" + kFooterFile);
  if (!footer.ok()) {
    health.problems.push_back(std::string(kFooterFile) + ": " +
                              footer.status().ToString());
    return health;
  }
  Result<SnapshotManifest> manifest = SnapshotManifest::Parse(*footer);
  if (!manifest.ok()) {
    health.problems.push_back(std::string(kFooterFile) + ": " +
                              manifest.status().ToString());
    return health;
  }
  health.manifest = std::move(*manifest);
  health.footer_ok = true;
  for (const FileEntry& entry : health.manifest.files) {
    Result<std::string> bytes =
        ReadFileToString(snapshot_dir + "/" + entry.name);
    if (!bytes.ok()) {
      health.problems.push_back(entry.name + ": " +
                                bytes.status().ToString());
      health.bad_files.push_back(entry.name);
      continue;
    }
    if (bytes->size() != entry.bytes) {
      health.problems.push_back(
          entry.name + ": length " + std::to_string(bytes->size()) +
          ", footer says " + std::to_string(entry.bytes));
      health.bad_files.push_back(entry.name);
      continue;
    }
    uint32_t crc = Crc32c(*bytes);
    if (crc != entry.crc32c) {
      health.problems.push_back(entry.name + ": crc32c " + Hex32(crc) +
                                ", footer says " + Hex32(entry.crc32c));
      health.bad_files.push_back(entry.name);
    }
  }
  health.intact = health.problems.empty();
  return health;
}

bool FsckReport::healthy() const {
  if (!orphans.empty()) return false;
  if (legacy) return true;
  for (const SnapshotHealth& snap : snapshots) {
    if (snap.name == current) return snap.intact;
  }
  return false;
}

std::string FsckReport::ToString() const {
  std::string out = "fsck " + directory + "\n";
  if (legacy) {
    out += "  layout: legacy flat directory (no snapshots)\n";
  } else {
    out += "  CURRENT -> " + (current.empty() ? "(missing)" : current) + "\n";
    for (const SnapshotHealth& snap : snapshots) {
      if (snap.intact) {
        out += "  " + snap.name + ": OK (" +
               std::to_string(snap.manifest.files.size()) +
               " files, rule_epoch " +
               std::to_string(snap.manifest.rule_epoch) + ", db_epoch " +
               std::to_string(snap.manifest.db_epoch) + ")\n";
      } else {
        out += "  " + snap.name + ": DAMAGED\n";
        for (const std::string& problem : snap.problems) {
          out += "    - " + problem + "\n";
        }
      }
    }
  }
  for (const std::string& orphan : orphans) {
    out += "  orphan: " + orphan + "\n";
  }
  out += healthy() ? "result: healthy\n" : "result: DAMAGED\n";
  return out;
}

Result<FsckReport> FsckDirectory(const std::string& dir) {
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::NotFound("directory '" + dir + "' does not exist");
  }
  FsckReport report;
  report.directory = dir;
  report.current = ReadCurrent(dir);
  std::vector<uint64_t> ids = ListSnapshotIds(dir);
  report.legacy = report.current.empty() && ids.empty();
  int64_t current_id =
      report.current.empty() ? -1 : ParseSnapshotId(report.current);
  bool current_found = false;
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    std::string name = SnapshotDirName(*it);
    if (name == report.current) current_found = true;
    if (current_id >= 0 && static_cast<int64_t>(*it) > current_id) {
      report.orphans.push_back(name + " (committed but never made CURRENT)");
    }
    report.snapshots.push_back(VerifySnapshot(dir + "/" + name));
  }
  if (!report.current.empty() && !current_found) {
    report.orphans.push_back(std::string(kCurrentFile) + " -> " +
                             report.current + " (target missing)");
  }
  for (const std::string& tmp : ListTmpDirs(dir)) {
    report.orphans.push_back(tmp + " (crashed or in-progress save)");
  }
  return report;
}

}  // namespace persist
}  // namespace iqs
