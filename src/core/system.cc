#include "core/system.h"

#include <chrono>

#include "obs/trace.h"

namespace iqs {

Result<std::unique_ptr<IqsSystem>> IqsSystem::Create(
    std::unique_ptr<Database> db, std::unique_ptr<KerCatalog> catalog,
    FormatterOptions formatter_options) {
  if (db == nullptr || catalog == nullptr) {
    return Status::InvalidArgument("database and catalog are required");
  }
  auto system = std::unique_ptr<IqsSystem>(new IqsSystem());
  system->db_ = std::move(db);
  system->catalog_ = std::move(catalog);
  system->dictionary_ =
      std::make_unique<DataDictionary>(system->catalog_.get());
  IQS_RETURN_IF_ERROR(system->dictionary_->BuildFrames());
  IQS_RETURN_IF_ERROR(
      system->dictionary_->ComputeActiveDomains(*system->db_));
  system->ils_ = std::make_unique<InductiveLearningSubsystem>(
      system->db_.get(), system->catalog_.get());
  system->processor_ = std::make_unique<IntensionalQueryProcessor>(
      system->db_.get(), system->dictionary_.get());
  system->formatter_ = std::make_unique<AnswerFormatter>(
      system->dictionary_.get(), std::move(formatter_options));
  system->obs_catalog_ = std::make_unique<obs::ObsCatalogProvider>();
  system->fault_catalog_ = std::make_unique<fault::FaultCatalogProvider>();
  system->governance_catalog_ =
      std::make_unique<exec::GovernanceCatalogProvider>();
  system->cache_catalog_ = std::make_unique<cache::CacheCatalogProvider>(
      &system->processor_->cache());
  system->dictionary_catalog_ = std::make_unique<DictionaryCatalogProvider>(
      system->dictionary_.get());
  system->db_->RegisterVirtualProvider(system->obs_catalog_.get());
  system->db_->RegisterVirtualProvider(system->fault_catalog_.get());
  system->db_->RegisterVirtualProvider(system->governance_catalog_.get());
  system->db_->RegisterVirtualProvider(system->cache_catalog_.get());
  system->db_->RegisterVirtualProvider(system->dictionary_catalog_.get());
  return system;
}

Status IqsSystem::Induce(const InductionConfig& config) {
  // The database epoch is read BEFORE induction scans the data: if a
  // mutation lands mid-induction the recorded epoch is already behind,
  // and the semantic optimizer (which trusts induced rules to describe
  // the current rows) correctly declines to rewrite until the next
  // Induce.
  uint64_t db_epoch = db_->epoch();
  IQS_ASSIGN_OR_RETURN(RuleSet rules, ils_->InduceAll(config));
  dictionary_->SetInducedRules(std::move(rules), db_epoch);
  return Status::Ok();
}

Result<QueryResult> IqsSystem::Query(const std::string& sql,
                                     InferenceMode mode) const {
  IQS_TRACE_SCOPE("sql.query");
  return processor_->Process(sql, mode);
}

Result<QueryResult> IqsSystem::Query(const std::string& sql,
                                     const QueryOptions& options) const {
  IQS_TRACE_SCOPE("sql.query");
  return processor_->Process(sql, options);
}

std::string IqsSystem::Explain(QueryResult& result) const {
  auto start = std::chrono::steady_clock::now();
  std::string out = formatter_->Render(result);
  int64_t nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  result.stats.format_micros = nanos <= 0 ? 0 : (nanos + 999) / 1000;
  return out;
}

std::string IqsSystem::Explain(const QueryResult& result) const {
  return formatter_->Render(result);
}

Status IqsSystem::StoreRulesInDatabase() {
  IQS_ASSIGN_OR_RETURN(RuleRelations relations,
                       dictionary_->ExportInducedRules());
  return StoreRuleRelations(relations, db_.get());
}

Status IqsSystem::LoadRulesFromDatabase() {
  IQS_ASSIGN_OR_RETURN(RuleRelations relations, LoadRuleRelations(*db_));
  return dictionary_->ImportInducedRules(relations);
}

}  // namespace iqs
