#ifndef IQS_CORE_QUERY_PROCESSOR_H_
#define IQS_CORE_QUERY_PROCESSOR_H_

#include <atomic>
#include <optional>
#include <string>
#include <vector>

#include "cache/query_cache.h"
#include "core/semantic_optimizer.h"
#include "dictionary/data_dictionary.h"
#include "fault/degrade.h"
#include "inference/engine.h"
#include "obs/query_stats.h"
#include "relational/database.h"
#include "sql/sql_executor.h"
#include "sql/sql_parser.h"
#include "sql/sqo_rewrite.h"

namespace iqs {

// Everything the system knows about one processed query: the parsed
// statement, the extensional answer (from the traditional query
// processor), the description handed to the inference processor, the
// derived intensional answer, and the cost breakdown of producing it all.
struct QueryResult {
  SelectStatement statement;
  Relation extensional;
  QueryDescription description;
  IntensionalAnswer intensional;
  // Rule/db epochs the answer was derived under (read before any work,
  // together with the rule-base snapshot). Both stay 0 on unversioned
  // paths (explicit-rules baseline, degraded snapshot load). The network
  // layer surfaces them so clients can correlate answers with induction
  // and mutation traffic.
  uint64_t rule_epoch = 0;
  uint64_t db_epoch = 0;
  // Semantic rewrites applied before execution (sqo mode on): one step
  // per predicate elimination / scan narrowing / empty proof /
  // intensional-only answer, each naming the rules that justified it.
  // Empty when the pass is off or declined — `statement` is always the
  // query as parsed, never the rewritten form.
  std::vector<RewriteStep> rewrites;
  QueryStats stats;
  // Faults absorbed while producing this result (extensional-only
  // fallback, skipped rules, retries). Empty on a clean run; the
  // formatter renders each event as an answer annotation.
  std::vector<fault::DegradationEvent> degradations;

  bool degraded() const { return !degradations.empty(); }
};

// Per-call knobs for Process(). The defaults reproduce the plain
// Process(sql, mode) behavior; the network layer passes one of these per
// request so concurrent sessions with different `set` options never race
// on the processor-wide state.
struct QueryOptions {
  InferenceMode mode = InferenceMode::kCombined;
  // Semantic-rewrite mode for this call; nullopt uses the processor-wide
  // sqo_mode().
  std::optional<SqoMode> sqo;
  // false bypasses the plan + answer caches for this call only (lookups
  // and inserts); the uncached path serves the identical answer.
  bool use_cache = true;
  // Resource governance (DESIGN.md §15). A nonzero deadline or budget
  // (or a wire identity, which the cancel verb needs) makes Process run
  // the whole pipeline under an ExecContext: governance checkpoints trip
  // with typed errors, the query registers in GovernanceRegistry (so
  // sys.sessions shows it and cancel/watchdog can reach it), and peak
  // memory lands in QueryStats. All zero = ungoverned, the pre-existing
  // behavior.
  int64_t deadline_ms = 0;      // 0 = no deadline
  uint64_t max_memory_kb = 0;   // 0 = no budget
  uint64_t session_id = 0;      // 0 = not a wire request
  std::string request_id;       // wire identity for `cancel`
};

// The intensional query processing system (paper §5.1, Figure 6): a
// traditional query processor (SqlExecutor) paired with the inference
// processor (InferenceEngine) over the intelligent data dictionary.
class IntensionalQueryProcessor {
 public:
  // `db` and `dictionary` must outlive the processor.
  IntensionalQueryProcessor(const Database* db,
                            const DataDictionary* dictionary)
      : db_(db),
        dictionary_(dictionary),
        executor_(db),
        engine_(dictionary),
        optimizer_(dictionary) {}

  // Executes `sql` and derives the intensional answer with the requested
  // inference mode, using the dictionary's induced rules. Faults in the
  // intensional half degrade gracefully — the extensional answer is
  // always produced when the traditional pipeline can produce it, with
  // the dropped intensional work recorded in QueryResult::degradations.
  Result<QueryResult> Process(const std::string& sql,
                              InferenceMode mode = InferenceMode::kCombined)
      const;

  // Same, with explicit per-call options (inference mode, sqo override,
  // cache bypass). Process(sql, mode) forwards here.
  Result<QueryResult> Process(const std::string& sql,
                              const QueryOptions& options) const;

  // Same, against an explicit rule set (used by the integrity-constraint
  // baseline).
  Result<QueryResult> ProcessWith(const std::string& sql, InferenceMode mode,
                                  const RuleSet& rules) const;

  // Derives the inference-facing description of a parsed query: each
  // top-level conjunct comparing a column with a literal (or BETWEEN)
  // becomes an interval clause over "<Relation>.<attr>" (aliases resolved
  // to relation names); join conditions and non-conjunctive structure are
  // omitted — they shape the view, not the restriction.
  Result<QueryDescription> Describe(const SelectStatement& stmt) const;

  // Fraction of extensional-answer rows satisfying every resolvable range
  // fact of `statement` — 1.0 for a sound forward statement; < 1.0
  // quantifies the incompleteness of a backward statement (the paper's
  // Example 2 discussion: class 1301 is an SSBN the backward answer
  // misses).
  Result<double> Coverage(const QueryResult& result,
                          const IntensionalStatement& statement) const;

  const SqlExecutor& executor() const { return executor_; }
  const InferenceEngine& engine() const { return engine_; }

  // The versioned plan/answer cache in front of the pipeline (DESIGN.md
  // §9). Mutable because caching is invisible to callers: a Process()
  // through a cache hit returns byte-identical results to a cold run.
  cache::QueryCache& cache() const { return cache_; }

  // Semantic-rewrite mode (DESIGN.md §12). kOff by default: every query
  // runs the traditional plan unchanged. kOn applies only
  // answer-preserving rewrites, so like the cache it is invisible in the
  // extensional answer (the differential harness holds it to that);
  // kIntensional additionally answers rule-subsumed queries from the
  // rules alone, with the extensional scan deliberately skipped.
  SqoMode sqo_mode() const {
    return sqo_mode_.load(std::memory_order_relaxed);
  }
  void set_sqo_mode(SqoMode mode) const {
    sqo_mode_.store(mode, std::memory_order_relaxed);
  }

 private:
  // Epochs a Process() call read *before* doing any work; answers are
  // cached under them, and only if they still hold at insert time.
  struct CacheEpochs {
    uint64_t rule_epoch = 0;
    uint64_t db_epoch = 0;
  };

  // The shared pipeline. `rules` may be null — the rule-base snapshot
  // failed — in which case inference is skipped entirely and the result
  // carries the pre-seeded degradation events in `pre`. `epochs` is null
  // on paths with no version to key answers on (explicit-rules baseline,
  // degraded snapshot), which disables the answer cache but not the plan
  // cache.
  Result<QueryResult> ProcessImpl(
      const std::string& sql, const QueryOptions& options,
      const RuleSet* rules, std::vector<fault::DegradationEvent> pre,
      const CacheEpochs* epochs) const;

  const Database* db_;
  const DataDictionary* dictionary_;
  SqlExecutor executor_;
  InferenceEngine engine_;
  SemanticOptimizer optimizer_;
  mutable cache::QueryCache cache_;
  mutable std::atomic<SqoMode> sqo_mode_{SqoMode::kOff};
};

}  // namespace iqs

#endif  // IQS_CORE_QUERY_PROCESSOR_H_
