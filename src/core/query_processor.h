#ifndef IQS_CORE_QUERY_PROCESSOR_H_
#define IQS_CORE_QUERY_PROCESSOR_H_

#include <string>

#include "dictionary/data_dictionary.h"
#include "inference/engine.h"
#include "obs/query_stats.h"
#include "relational/database.h"
#include "sql/sql_executor.h"
#include "sql/sql_parser.h"

namespace iqs {

// Everything the system knows about one processed query: the parsed
// statement, the extensional answer (from the traditional query
// processor), the description handed to the inference processor, the
// derived intensional answer, and the cost breakdown of producing it all.
struct QueryResult {
  SelectStatement statement;
  Relation extensional;
  QueryDescription description;
  IntensionalAnswer intensional;
  QueryStats stats;
};

// The intensional query processing system (paper §5.1, Figure 6): a
// traditional query processor (SqlExecutor) paired with the inference
// processor (InferenceEngine) over the intelligent data dictionary.
class IntensionalQueryProcessor {
 public:
  // `db` and `dictionary` must outlive the processor.
  IntensionalQueryProcessor(const Database* db,
                            const DataDictionary* dictionary)
      : db_(db),
        dictionary_(dictionary),
        executor_(db),
        engine_(dictionary) {}

  // Executes `sql` and derives the intensional answer with the requested
  // inference mode, using the dictionary's induced rules.
  Result<QueryResult> Process(const std::string& sql,
                              InferenceMode mode = InferenceMode::kCombined)
      const;

  // Same, against an explicit rule set (used by the integrity-constraint
  // baseline).
  Result<QueryResult> ProcessWith(const std::string& sql, InferenceMode mode,
                                  const RuleSet& rules) const;

  // Derives the inference-facing description of a parsed query: each
  // top-level conjunct comparing a column with a literal (or BETWEEN)
  // becomes an interval clause over "<Relation>.<attr>" (aliases resolved
  // to relation names); join conditions and non-conjunctive structure are
  // omitted — they shape the view, not the restriction.
  Result<QueryDescription> Describe(const SelectStatement& stmt) const;

  // Fraction of extensional-answer rows satisfying every resolvable range
  // fact of `statement` — 1.0 for a sound forward statement; < 1.0
  // quantifies the incompleteness of a backward statement (the paper's
  // Example 2 discussion: class 1301 is an SSBN the backward answer
  // misses).
  Result<double> Coverage(const QueryResult& result,
                          const IntensionalStatement& statement) const;

  const SqlExecutor& executor() const { return executor_; }
  const InferenceEngine& engine() const { return engine_; }

 private:
  const Database* db_;
  const DataDictionary* dictionary_;
  SqlExecutor executor_;
  InferenceEngine engine_;
};

}  // namespace iqs

#endif  // IQS_CORE_QUERY_PROCESSOR_H_
