#include "core/answer_formatter.h"

#include "common/string_util.h"
#include "fault/degrade.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace iqs {

namespace {

// Renders a clause with the attribute's base name (qualifiers read poorly
// in prose).
std::string ClauseProse(const Clause& clause) {
  Clause bare(clause.BaseAttribute(), clause.interval());
  return bare.ToConditionString();
}

std::string JoinWithAnd(const std::vector<std::string>& parts) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += " and ";
    out += parts[i];
  }
  return out;
}

}  // namespace

std::vector<std::pair<std::string, std::string>>
AnswerFormatter::MostSpecificTypes(const IntensionalAnswer& answer) const {
  const TypeHierarchy& hierarchy = dictionary_->catalog().hierarchy();
  // (role key, type) pairs; the role key is the root entity when known.
  std::vector<std::pair<std::string, std::string>> types;
  for (const IntensionalStatement& s : answer.statements()) {
    if (s.direction != AnswerDirection::kContains) continue;
    for (const Fact& f : s.facts) {
      if (f.kind != Fact::Kind::kType) continue;
      std::string role = f.root_entity.empty() ? f.variable : f.root_entity;
      bool seen = false;
      for (const auto& [existing_role, existing_type] : types) {
        if (EqualsIgnoreCase(existing_role, role) &&
            EqualsIgnoreCase(existing_type, f.type_name)) {
          seen = true;
          break;
        }
      }
      if (!seen) types.emplace_back(role, f.type_name);
    }
  }
  // Drop entries that are proper supertypes of another entry in the same
  // role.
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [role, type] : types) {
    bool dominated = false;
    for (const auto& [other_role, other_type] : types) {
      if (!EqualsIgnoreCase(role, other_role)) continue;
      if (EqualsIgnoreCase(type, other_type)) continue;
      auto supers = hierarchy.SupertypesOf(other_type);
      if (!supers.ok()) continue;
      for (const std::string& super : *supers) {
        if (EqualsIgnoreCase(super, type)) {
          dominated = true;
          break;
        }
      }
      if (dominated) break;
    }
    if (!dominated) out.emplace_back(role, type);
  }
  return out;
}

std::string AnswerFormatter::Summary(const QueryResult& result) const {
  const IntensionalAnswer& answer = result.intensional;
  const TypeHierarchy& hierarchy = dictionary_->catalog().hierarchy();
  if (answer.empty_proof().has_value()) {
    return "The answer is provably empty: " + *answer.empty_proof();
  }
  if (answer.empty()) {
    return "No intensional answer could be derived for this query.";
  }
  std::vector<std::pair<std::string, std::string>> types =
      MostSpecificTypes(answer);

  // The primary role is the first FROM object type whose hierarchy root
  // actually carries derived type facts (Example 1/3: SUBMARINE); when
  // none does — e.g. a query over CLASS alone, whose facts root at
  // SUBMARINE — the first derived role is primary.
  std::string primary_root;
  for (const std::string& object_type : result.description.object_types) {
    auto root = hierarchy.RootOf(object_type);
    if (!root.ok()) continue;
    for (const auto& [role, type] : types) {
      if (EqualsIgnoreCase(role, *root)) {
        primary_root = *root;
        break;
      }
    }
    if (!primary_root.empty()) break;
  }
  if (primary_root.empty() && !types.empty()) {
    primary_root = types.front().first;
  }
  std::vector<std::string> primary;
  std::vector<std::string> secondary;
  for (const auto& [role, type] : types) {
    bool is_primary = primary_root.empty()
                          ? primary.empty()
                          : EqualsIgnoreCase(role, primary_root);
    (is_primary ? primary : secondary).push_back(type);
  }
  bool has_forward_types = !types.empty();

  // Attributes that classification hinges on (appearing in some subtype's
  // derivation specification) — preferred in backward descriptions, the
  // way the paper surfaces class ranges rather than hull-number ranges.
  auto is_classification_attr = [&](const Clause& clause) {
    for (const std::string& type_name : hierarchy.AllTypes()) {
      auto node = hierarchy.Get(type_name);
      if (!node.ok() || !(*node)->derivation.has_value()) continue;
      if (EqualsIgnoreCase((*node)->derivation->BaseAttribute(),
                           clause.BaseAttribute())) {
        return true;
      }
    }
    return false;
  };

  // Pick the backward statement to surface. Exact statements always
  // qualify. When forward types are present (combined answers), an
  // approximate statement qualifies only if it characterizes via a fact
  // about a *secondary* role (the paper's Example 3: class range over the
  // submarines, target "y isa BQS"); that keeps pure-forward answers like
  // Example 1 clean. Among eligible statements prefer classification
  // attributes, then exactness, then rule order.
  const IntensionalStatement* backward = nullptr;
  auto better = [&](const IntensionalStatement& a,
                    const IntensionalStatement& b) {
    bool a_cls = !a.facts.empty() && is_classification_attr(a.facts[0].clause);
    bool b_cls = !b.facts.empty() && is_classification_attr(b.facts[0].clause);
    if (a_cls != b_cls) return a_cls;
    if (a.exact != b.exact) return a.exact;
    return false;  // keep earlier
  };
  for (const IntensionalStatement& s : answer.statements()) {
    if (s.direction != AnswerDirection::kContainedIn) continue;
    bool eligible;
    if (s.exact || !has_forward_types) {
      eligible = true;
    } else {
      eligible = s.target.kind == Fact::Kind::kType &&
                 !primary_root.empty() && !s.target.root_entity.empty() &&
                 !EqualsIgnoreCase(s.target.root_entity, primary_root);
    }
    if (!eligible) continue;
    if (backward == nullptr || better(s, *backward)) backward = &s;
  }

  // Original query conditions in prose.
  std::vector<std::string> condition_prose;
  for (const Clause& c : result.description.conditions) {
    condition_prose.push_back(ClauseProse(c));
  }

  std::string out;
  if (has_forward_types && backward != nullptr) {
    // Combined: "Ship type SSN with 0208 <= Class <= 0215 is equipped
    // with Sonar = BQS-04."
    out = options_.entity_noun + " type " + JoinWithAnd(primary);
    std::vector<std::string> lhs_prose;
    for (const Fact& f : backward->facts) {
      if (f.kind == Fact::Kind::kRange) {
        lhs_prose.push_back(ClauseProse(f.clause));
      }
    }
    if (!lhs_prose.empty()) out += " with " + JoinWithAnd(lhs_prose);
    if (!condition_prose.empty()) {
      out += !secondary.empty()
                 ? " " + options_.relationship_phrase + " "
                 : " satisfies ";
      out += JoinWithAnd(condition_prose);
    }
    out += ".";
  } else if (has_forward_types) {
    // Forward only: "Ship type SSBN has Displacement > 8000."
    out = options_.entity_noun + " type " + JoinWithAnd(primary);
    if (!secondary.empty()) {
      out += " (" + options_.relationship_phrase + " type " +
             JoinWithAnd(secondary) + ")";
    }
    if (!condition_prose.empty()) {
      out += " has " + JoinWithAnd(condition_prose);
    }
    out += ".";
  } else if (backward != nullptr) {
    // Backward only: "Ships with 0101 <= Class <= 0103 are SSBN."
    std::vector<std::string> lhs_prose;
    for (const Fact& f : backward->facts) {
      if (f.kind == Fact::Kind::kRange) {
        lhs_prose.push_back(ClauseProse(f.clause));
      }
    }
    out = options_.entity_noun + "s with " + JoinWithAnd(lhs_prose);
    if (backward->target.kind == Fact::Kind::kType) {
      out += " are " + backward->target.type_name;
    } else {
      out += " satisfy " + ClauseProse(backward->target.clause);
    }
    if (!backward->exact) out += " (partial answer)";
    out += ".";
  } else {
    out = "The derived intensional statements do not name a type.";
  }
  return out;
}

std::string AnswerFormatter::Render(const QueryResult& result) const {
  IQS_SPAN("format.render");
  IQS_COUNTER_INC("format.render.count");
  // A query served without its intensional half says so instead of
  // pretending nothing could be derived; lesser degradations (skipped
  // rules, absorbed retries) annotate below the statements.
  bool extensional_only = false;
  for (const fault::DegradationEvent& e : result.degradations) {
    if (e.action == fault::DegradeAction::kExtensionalOnly) {
      extensional_only = true;
      break;
    }
  }
  std::string out;
  if (extensional_only) {
    for (const fault::DegradationEvent& e : result.degradations) {
      if (e.action != fault::DegradeAction::kExtensionalOnly) continue;
      out += "intensional unavailable: " + e.reason + " [" + e.stage + "]\n";
    }
  } else {
    out = Summary(result);
    out += "\n";
  }
  for (const IntensionalStatement& s : result.intensional.statements()) {
    out += "  " + s.ToString();
    if (s.direction == AnswerDirection::kContainedIn && !s.exact) {
      out += "  [approximate]";
    }
    out += "\n";
  }
  for (const RewriteStep& step : result.rewrites) {
    out += "  rewrite: " + step.ToString() + "\n";
  }
  for (const fault::DegradationEvent& e : result.degradations) {
    if (e.action == fault::DegradeAction::kExtensionalOnly) continue;
    out += "  degraded: " + e.ToString() + "\n";
  }
  return out;
}

}  // namespace iqs
