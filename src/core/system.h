#ifndef IQS_CORE_SYSTEM_H_
#define IQS_CORE_SYSTEM_H_

#include <memory>
#include <string>

#include "cache/cache_catalog.h"
#include "core/answer_formatter.h"
#include "core/query_processor.h"
#include "dictionary/dictionary_catalog.h"
#include "exec/governance_catalog.h"
#include "fault/fault_catalog.h"
#include "induction/ils.h"
#include "obs/sys_catalog.h"

namespace iqs {

// The assembled intensional query processing system (paper Figure 6):
// EDB + KER schema + intelligent data dictionary + inductive learning
// subsystem + inference processor + traditional query processor, wired
// together behind one facade. This is the type a downstream user
// instantiates.
//
//   auto system = IqsSystem::Create(BuildShipDatabase(), BuildShipSchema());
//   system->Induce(InductionConfig{});
//   auto result = system->Query("SELECT ... WHERE Displacement > 8000");
class IqsSystem {
 public:
  // Builds the dictionary (frames + active domains) over the given
  // database and schema. Returns a heap-allocated system because internal
  // components hold stable pointers to each other.
  static Result<std::unique_ptr<IqsSystem>> Create(
      std::unique_ptr<Database> db, std::unique_ptr<KerCatalog> catalog,
      FormatterOptions formatter_options = {});

  // Runs the ILS over the database and installs the induced rules in the
  // dictionary.
  Status Induce(const InductionConfig& config);

  // Executes `sql`, returning extensional + intensional answers plus a
  // QueryStats cost breakdown. Records a full span tree for the query
  // into obs::GlobalTraces() (nested under the caller's trace when one is
  // already active, e.g. the shell's EXPLAIN ANALYZE scope).
  Result<QueryResult> Query(const std::string& sql,
                            InferenceMode mode = InferenceMode::kCombined)
      const;

  // Same, with explicit per-call options (inference mode, sqo override,
  // cache bypass) — used by the network layer so concurrent sessions with
  // different `set` options never race on processor-wide state.
  Result<QueryResult> Query(const std::string& sql,
                            const QueryOptions& options) const;

  // Paper-style prose for a query result. The non-const overload also
  // records the formatting cost into result.stats.format_micros.
  std::string Explain(QueryResult& result) const;
  std::string Explain(const QueryResult& result) const;

  // Persists the induced rules as rule relations inside the database
  // itself (paper §5.2.2), or restores them from there.
  Status StoreRulesInDatabase();
  Status LoadRulesFromDatabase();

  Database& database() { return *db_; }
  const Database& database() const { return *db_; }
  const KerCatalog& catalog() const { return *catalog_; }
  DataDictionary& dictionary() { return *dictionary_; }
  const DataDictionary& dictionary() const { return *dictionary_; }
  const InductiveLearningSubsystem& ils() const { return *ils_; }
  const IntensionalQueryProcessor& processor() const { return *processor_; }
  const AnswerFormatter& formatter() const { return *formatter_; }

 private:
  IqsSystem() = default;

  std::unique_ptr<Database> db_;
  std::unique_ptr<KerCatalog> catalog_;
  std::unique_ptr<DataDictionary> dictionary_;
  std::unique_ptr<InductiveLearningSubsystem> ils_;
  std::unique_ptr<IntensionalQueryProcessor> processor_;
  std::unique_ptr<AnswerFormatter> formatter_;

  // Virtual sys.* catalog providers (DESIGN.md §11), registered on db_ at
  // Create() so stock SELECT/RANGE statements can scan live introspection
  // state. Owned here because Database keeps raw pointers to them.
  std::unique_ptr<obs::ObsCatalogProvider> obs_catalog_;
  std::unique_ptr<fault::FaultCatalogProvider> fault_catalog_;
  std::unique_ptr<exec::GovernanceCatalogProvider> governance_catalog_;
  std::unique_ptr<cache::CacheCatalogProvider> cache_catalog_;
  std::unique_ptr<DictionaryCatalogProvider> dictionary_catalog_;
};

}  // namespace iqs

#endif  // IQS_CORE_SYSTEM_H_
