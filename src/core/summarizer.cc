#include "core/summarizer.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "rules/subsumption.h"

namespace iqs {

std::string AnswerSummary::ToString() const {
  std::string out = std::to_string(rows) + " rows.\n";
  if (!by_type.empty()) {
    out += "by type:";
    for (const TypeBreakdownEntry& e : by_type) {
      out += " " + e.type_name + " " + std::to_string(e.count) + "/" +
             std::to_string(rows);
    }
    out += "\n";
  }
  for (const ColumnSummary& c : columns) {
    out += c.attribute + ": " + std::to_string(c.distinct) +
           " distinct value(s)";
    if (!c.min.is_null()) {
      if (c.min == c.max) {
        out += ", all " + c.min.ToString();
      } else {
        out += " in [" + c.min.ToString() + ", " + c.max.ToString() + "]";
      }
    }
    if (c.non_null < rows) {
      out += " (" + std::to_string(rows - c.non_null) + " null)";
    }
    out += "\n";
  }
  return out;
}

AnswerSummary SummarizeAnswer(const Relation& answers,
                              const DataDictionary& dictionary) {
  AnswerSummary summary;
  summary.rows = answers.size();

  // Column statistics.
  for (size_t i = 0; i < answers.schema().size(); ++i) {
    ColumnSummary column;
    column.attribute = answers.schema().attribute(i).name;
    std::set<Value> distinct;
    for (const Tuple& row : answers.rows()) {
      const Value& v = row.at(i);
      if (v.is_null()) continue;
      ++column.non_null;
      distinct.insert(v);
      if (column.min.is_null() || v < column.min) column.min = v;
      if (column.max.is_null() || v > column.max) column.max = v;
    }
    column.distinct = distinct.size();
    summary.columns.push_back(std::move(column));
  }

  // Type membership via derivation specifications.
  const TypeHierarchy& hierarchy = dictionary.catalog().hierarchy();
  for (const std::string& type_name : hierarchy.AllTypes()) {
    auto node = hierarchy.Get(type_name);
    if (!node.ok() || !(*node)->derivation.has_value()) continue;
    const Clause& derivation = *(*node)->derivation;
    // Resolve the derivation attribute against the answer schema.
    size_t column = answers.schema().size();
    for (size_t i = 0; i < answers.schema().size(); ++i) {
      if (SameAttribute(answers.schema().attribute(i).name,
                        derivation.attribute(), AttributeMatch::kBaseName)) {
        column = i;
        break;
      }
    }
    if (column == answers.schema().size()) continue;
    TypeBreakdownEntry entry;
    entry.type_name = (*node)->name;
    auto supers = hierarchy.SupertypesOf(type_name);
    entry.depth = supers.ok() ? static_cast<int>(supers->size()) : 0;
    for (const Tuple& row : answers.rows()) {
      if (derivation.Satisfies(row.at(column))) ++entry.count;
    }
    if (entry.count > 0) summary.by_type.push_back(std::move(entry));
  }
  // Shallow types first, then by declaration order (stable sort).
  std::stable_sort(summary.by_type.begin(), summary.by_type.end(),
                   [](const TypeBreakdownEntry& a,
                      const TypeBreakdownEntry& b) {
                     return a.depth < b.depth;
                   });
  return summary;
}

}  // namespace iqs
