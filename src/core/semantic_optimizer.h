#ifndef IQS_CORE_SEMANTIC_OPTIMIZER_H_
#define IQS_CORE_SEMANTIC_OPTIMIZER_H_

#include <string>
#include <vector>

#include "dictionary/data_dictionary.h"
#include "inference/engine.h"
#include "relational/database.h"
#include "sql/sqo_rewrite.h"

namespace iqs {

// Semantic query optimization with induced rules — the companion use of
// the same knowledge base the paper cites in §1 ("integrity constraints
// were used to improve query processing performance [KING81, HAMM80]")
// and develops in the authors' CHU90. Where intensional answering runs
// rules FORWARD over a query's conditions, the optimizer runs them in
// CONVERSE: a condition `Y = y` implies `X ∈ (union of the ranges of
// y's rule family)` — but only when the family is *complete* (no pruned
// run, no inconsistent value; Rule::family_complete). The implied
// restriction can then drive an index scan on X instead of a full scan.
//
// Incomplete families still yield implied conditions, flagged
// `complete = false`: using them trades completeness for speed (the
// Example-2 situation — class 1301 would be missed).

// One derived restriction: attribute ∈ union of intervals.
struct ImpliedCondition {
  std::string attribute;            // the family's X attribute
  std::vector<Interval> intervals;  // one per family rule, ascending
  std::vector<int> rule_ids;        // provenance
  bool complete = true;

  bool Admits(const Value& v) const;
  std::string ToString() const;
};

class SemanticOptimizer {
 public:
  // `dictionary` must outlive the optimizer.
  explicit SemanticOptimizer(const DataDictionary* dictionary)
      : dictionary_(dictionary) {}

  // Derives the restrictions implied by the query's point conditions
  // through the given rules. For a condition `A = v`, every rule scheme
  // whose consequent is `A = v` (base-name match) contributes the union
  // of its matching rules' LHS intervals over the scheme's X attribute.
  std::vector<ImpliedCondition> Derive(const QueryDescription& query,
                                       const RuleSet& rules) const;

  // Same, using the dictionary's induced rules.
  std::vector<ImpliedCondition> Derive(const QueryDescription& query) const;

  // The rewrite pass (DESIGN.md §12), run by the query processor between
  // parse and execution. Applies, in converse-restriction order:
  //  (a) predicate elimination — a WHERE conjunct implied by a point
  //      conjunct plus a complete rule family is dropped;
  //  (b) empty-result detection — when a family's implied interval hull
  //      and another conjunct over the same attribute are disjoint
  //      (InferenceEngine::DetectContradiction), the answer is provably
  //      empty and the scan is skipped;
  //  (c) scan narrowing — the implied hull is appended as a BETWEEN
  //      conjunct, which the executor's index fast path can drive;
  //  (d) intensional-only answering (mode == kIntensional) — when every
  //      surviving conjunct is characterized by a complete family, the
  //      scan is skipped and the answer comes from the rules alone.
  //
  // Soundness guardrails: only complete families are used (converse
  // implication); the pass declines entirely unless every top-level
  // conjunct is statically understood and total at eval time (so on/off
  // runs agree even on errors); value-restricting rewrites require the
  // implied column to be null-free (nulls do not participate in
  // induction); and a conjunct whose implication was used is pinned
  // against elimination (mutual implications cannot drop both sides).
  // An unchanged statement comes back as a RewritePlan with no steps.
  Result<RewritePlan> Rewrite(const SelectStatement& stmt,
                              const RuleSet& rules, SqoMode mode,
                              const Database& db,
                              const InferenceEngine& engine) const;

  // Scan-saving estimate for `implied` against a relation: how many rows
  // of `relation` the implied restriction admits (an index-driven plan
  // reads only these) vs the relation's size. Requires the implied
  // attribute to resolve in the relation.
  struct ScanEstimate {
    size_t admitted = 0;
    size_t total = 0;
  };
  Result<ScanEstimate> EstimateScan(const ImpliedCondition& implied,
                                    const Relation& relation) const;

 private:
  const DataDictionary* dictionary_;
};

}  // namespace iqs

#endif  // IQS_CORE_SEMANTIC_OPTIMIZER_H_
