#include "core/semantic_optimizer.h"

#include <map>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rules/subsumption.h"

namespace iqs {

bool ImpliedCondition::Admits(const Value& v) const {
  for (const Interval& interval : intervals) {
    if (interval.Contains(v)) return true;
  }
  return false;
}

std::string ImpliedCondition::ToString() const {
  std::string out = attribute + " in ";
  for (size_t i = 0; i < intervals.size(); ++i) {
    if (i > 0) out += " u ";
    out += intervals[i].ToString();
  }
  if (!complete) out += "  [incomplete family]";
  return out;
}

std::vector<ImpliedCondition> SemanticOptimizer::Derive(
    const QueryDescription& query, const RuleSet& rules) const {
  IQS_SPAN("optimizer.derive");
  IQS_COUNTER_INC("optimizer.derive.count");
  std::vector<ImpliedCondition> out;
  for (const Clause& condition : query.conditions) {
    if (!condition.IsPoint()) continue;
    const Value& y = *condition.interval().lo();
    // Group matching rules by scheme: each scheme contributes one
    // implied condition over its own X attribute.
    std::map<std::string, ImpliedCondition> by_scheme;
    for (const Rule& rule : rules.rules()) {
      if (rule.lhs.size() != 1) continue;
      if (!SameAttribute(rule.rhs.clause.attribute(), condition.attribute(),
                         AttributeMatch::kBaseName)) {
        continue;
      }
      if (!rule.rhs.clause.IsPoint() ||
          *rule.rhs.clause.interval().lo() != y) {
        continue;
      }
      ImpliedCondition& implied = by_scheme[rule.scheme];
      if (implied.attribute.empty()) {
        implied.attribute = rule.lhs[0].attribute();
      }
      implied.intervals.push_back(rule.lhs[0].interval());
      implied.rule_ids.push_back(rule.id);
      implied.complete = implied.complete && rule.family_complete;
    }
    for (auto& [scheme, implied] : by_scheme) {
      // A restriction over the condition's own attribute is vacuous.
      if (SameAttribute(implied.attribute, condition.attribute(),
                        AttributeMatch::kBaseName)) {
        IQS_COUNTER_INC("optimizer.clauses_eliminated");
        continue;
      }
      if (!implied.complete) {
        IQS_COUNTER_INC("optimizer.incomplete_families");
      }
      out.push_back(std::move(implied));
    }
  }
  IQS_COUNTER_ADD("optimizer.clauses_added", out.size());
  IQS_SPAN_ANNOTATE("clauses_added", static_cast<int64_t>(out.size()));
  return out;
}

std::vector<ImpliedCondition> SemanticOptimizer::Derive(
    const QueryDescription& query) const {
  std::shared_ptr<const RuleSet> rules = dictionary_->induced_rules_snapshot();
  return Derive(query, *rules);
}

Result<SemanticOptimizer::ScanEstimate> SemanticOptimizer::EstimateScan(
    const ImpliedCondition& implied, const Relation& relation) const {
  // Resolve the implied attribute against the relation by base name.
  size_t column = relation.schema().size();
  for (size_t i = 0; i < relation.schema().size(); ++i) {
    if (SameAttribute(relation.schema().attribute(i).name, implied.attribute,
                      AttributeMatch::kBaseName)) {
      column = i;
      break;
    }
  }
  if (column == relation.schema().size()) {
    return Status::NotFound("attribute '" + implied.attribute +
                            "' does not resolve in " + relation.name());
  }
  ScanEstimate out;
  out.total = relation.size();
  for (const Tuple& row : relation.rows()) {
    if (implied.Admits(row.at(column))) ++out.admitted;
  }
  return out;
}

}  // namespace iqs
