#include "core/semantic_optimizer.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rules/subsumption.h"

namespace iqs {

namespace {

std::string AttrBaseName(const std::string& attribute) {
  size_t pos = attribute.rfind('.');
  return pos == std::string::npos ? attribute : attribute.substr(pos + 1);
}

// Mirrors the executor's literal coercion (numeric literals against CHAR
// columns keep their spelling, int widens to real, strings parse as
// dates) so the rewrite reasons over exactly the values the scan would
// compare.
Result<Value> CoerceForColumn(const Value& literal, const std::string& raw,
                              ValueType type) {
  if (literal.is_null()) return literal;
  if (literal.type() == type) return literal;
  switch (type) {
    case ValueType::kString:
      return Value::String(raw.empty() ? literal.ToString() : raw);
    case ValueType::kReal:
      if (literal.type() == ValueType::kInt) {
        return Value::Real(static_cast<double>(literal.AsInt()));
      }
      break;
    case ValueType::kInt:
      if (literal.type() == ValueType::kReal) return literal;
      if (literal.type() == ValueType::kString) {
        return Value::FromText(ValueType::kInt, literal.AsString());
      }
      break;
    case ValueType::kDate:
      if (literal.type() == ValueType::kString) {
        return Value::FromText(ValueType::kDate, literal.AsString());
      }
      break;
    default:
      break;
  }
  return Status::TypeError("uncoercible literal");
}

// A column resolved to its owning FROM entry and schema slot, the way the
// executor's bind step would resolve it: qualified refs match the entry's
// effective name (alias wins); unqualified refs must resolve in exactly
// one entry.
struct ColumnSite {
  size_t table = 0;
  size_t column = 0;
};

std::optional<ColumnSite> ResolveSite(const Database& db,
                                      const std::vector<TableRef>& from,
                                      const ColumnRef& ref) {
  std::optional<ColumnSite> found;
  for (size_t i = 0; i < from.size(); ++i) {
    if (!ref.qualifier.empty() &&
        !EqualsIgnoreCase(ref.qualifier, from[i].effective_name())) {
      continue;
    }
    Result<const Relation*> rel = db.Get(from[i].name);
    if (!rel.ok()) return std::nullopt;  // executor will error identically
    Result<size_t> idx = (*rel)->schema().IndexOf(ref.name);
    if (!idx.ok()) continue;
    if (found.has_value()) return std::nullopt;  // ambiguous
    found = ColumnSite{i, *idx};
  }
  return found;
}

bool NumericType(ValueType t) {
  return t == ValueType::kInt || t == ValueType::kReal;
}

// A top-level WHERE conjunct as the optimizer understands it. `safe`
// means the conjunct cannot raise at bind or eval time (columns resolve,
// literals coerce, compared domains are comparable) — the precondition
// for any rewrite of the statement. `recognized` additionally means the
// conjunct restricts one column to one interval.
struct BoundConjunct {
  const SqlExpr* expr = nullptr;
  bool safe = false;
  bool recognized = false;
  size_t table = 0;        // owning FROM entry (recognized only)
  std::string attribute;   // canonical schema spelling (recognized only)
  Interval interval;       // admitted values (recognized only)
  bool has_family = false;          // point seed with a complete family
  std::vector<int> family_ids;      // ids of those families' rules
};

BoundConjunct Classify(const Database& db, const std::vector<TableRef>& from,
                       const SqlExpr* expr) {
  BoundConjunct b;
  b.expr = expr;
  if (expr->kind == SqlExpr::Kind::kComparison) {
    if (expr->lhs.kind == SqlOperand::Kind::kColumn &&
        expr->rhs.kind == SqlOperand::Kind::kColumn) {
      // Join / column-column comparison: safe when both sides resolve to
      // comparable domains (ApplyCompare never errors then).
      std::optional<ColumnSite> l = ResolveSite(db, from, expr->lhs.column);
      std::optional<ColumnSite> r = ResolveSite(db, from, expr->rhs.column);
      if (!l.has_value() || !r.has_value()) return b;
      ValueType lt =
          (*db.Get(from[l->table].name))->schema().attribute(l->column).type;
      ValueType rt =
          (*db.Get(from[r->table].name))->schema().attribute(r->column).type;
      if (lt == rt || (NumericType(lt) && NumericType(rt))) b.safe = true;
      return b;
    }
    const SqlOperand* col = nullptr;
    const SqlOperand* lit = nullptr;
    CompareOp op = expr->op;
    if (expr->lhs.kind == SqlOperand::Kind::kColumn &&
        expr->rhs.kind == SqlOperand::Kind::kLiteral) {
      col = &expr->lhs;
      lit = &expr->rhs;
    } else if (expr->rhs.kind == SqlOperand::Kind::kColumn &&
               expr->lhs.kind == SqlOperand::Kind::kLiteral) {
      col = &expr->rhs;
      lit = &expr->lhs;
      switch (op) {  // mirror
        case CompareOp::kLt: op = CompareOp::kGt; break;
        case CompareOp::kLe: op = CompareOp::kGe; break;
        case CompareOp::kGt: op = CompareOp::kLt; break;
        case CompareOp::kGe: op = CompareOp::kLe; break;
        default: break;
      }
    } else {
      return b;  // literal-literal: could TypeError at eval
    }
    std::optional<ColumnSite> site = ResolveSite(db, from, col->column);
    if (!site.has_value()) return b;
    const Relation& rel = **db.Get(from[site->table].name);
    const AttributeDef& def = rel.schema().attribute(site->column);
    Result<Value> coerced = CoerceForColumn(lit->literal, lit->raw, def.type);
    if (!coerced.ok()) return b;
    if (coerced->is_null()) {
      b.safe = true;  // null comparisons are false, never an error
      return b;
    }
    if (op == CompareOp::kNe || op == CompareOp::kLike) {
      b.safe = true;  // total but not interval-representable
      return b;
    }
    Result<Interval> interval = Interval::FromCompare(op, *coerced);
    if (!interval.ok()) {
      b.safe = true;
      return b;
    }
    b.safe = true;
    b.recognized = true;
    b.table = site->table;
    b.attribute = def.name;
    b.interval = *interval;
    return b;
  }
  if (expr->kind == SqlExpr::Kind::kBetween) {
    if (expr->lhs.kind != SqlOperand::Kind::kColumn ||
        expr->low.kind != SqlOperand::Kind::kLiteral ||
        expr->high.kind != SqlOperand::Kind::kLiteral) {
      return b;
    }
    std::optional<ColumnSite> site = ResolveSite(db, from, expr->lhs.column);
    if (!site.has_value()) return b;
    const Relation& rel = **db.Get(from[site->table].name);
    const AttributeDef& def = rel.schema().attribute(site->column);
    Result<Value> lo = CoerceForColumn(expr->low.literal, expr->low.raw,
                                       def.type);
    Result<Value> hi = CoerceForColumn(expr->high.literal, expr->high.raw,
                                       def.type);
    if (!lo.ok() || !hi.ok()) return b;
    b.safe = true;
    if (lo->is_null() || hi->is_null() || *lo > *hi) return b;  // empty/false
    Result<Interval> interval = Interval::Closed(*lo, *hi);
    if (!interval.ok()) return b;
    b.recognized = true;
    b.table = site->table;
    b.attribute = def.name;
    b.interval = *interval;
    return b;
  }
  return b;  // OR / NOT subtrees: not analyzed, may error at eval
}

}  // namespace

bool ImpliedCondition::Admits(const Value& v) const {
  for (const Interval& interval : intervals) {
    if (interval.Contains(v)) return true;
  }
  return false;
}

std::string ImpliedCondition::ToString() const {
  std::string out = attribute + " in ";
  for (size_t i = 0; i < intervals.size(); ++i) {
    if (i > 0) out += " u ";
    out += intervals[i].ToString();
  }
  if (!complete) out += "  [incomplete family]";
  return out;
}

std::vector<ImpliedCondition> SemanticOptimizer::Derive(
    const QueryDescription& query, const RuleSet& rules) const {
  IQS_SPAN("optimizer.derive");
  IQS_COUNTER_INC("optimizer.derive.count");
  std::vector<ImpliedCondition> out;
  for (const Clause& condition : query.conditions) {
    if (!condition.IsPoint()) continue;
    const Value& y = *condition.interval().lo();
    // Group matching rules by scheme: each scheme contributes one
    // implied condition over its own X attribute.
    std::map<std::string, ImpliedCondition> by_scheme;
    for (const Rule& rule : rules.rules()) {
      if (rule.lhs.size() != 1) continue;
      if (!SameAttribute(rule.rhs.clause.attribute(), condition.attribute(),
                         AttributeMatch::kBaseName)) {
        continue;
      }
      if (!rule.rhs.clause.IsPoint() ||
          *rule.rhs.clause.interval().lo() != y) {
        continue;
      }
      ImpliedCondition& implied = by_scheme[rule.scheme];
      if (implied.attribute.empty()) {
        implied.attribute = rule.lhs[0].attribute();
      }
      implied.intervals.push_back(rule.lhs[0].interval());
      implied.rule_ids.push_back(rule.id);
      implied.complete = implied.complete && rule.family_complete;
    }
    for (auto& [scheme, implied] : by_scheme) {
      // A restriction over the condition's own attribute is vacuous.
      if (SameAttribute(implied.attribute, condition.attribute(),
                        AttributeMatch::kBaseName)) {
        IQS_COUNTER_INC("optimizer.clauses_eliminated");
        continue;
      }
      if (!implied.complete) {
        IQS_COUNTER_INC("optimizer.incomplete_families");
      }
      out.push_back(std::move(implied));
    }
  }
  IQS_COUNTER_ADD("optimizer.clauses_added", out.size());
  IQS_SPAN_ANNOTATE("clauses_added", static_cast<int64_t>(out.size()));
  return out;
}

std::vector<ImpliedCondition> SemanticOptimizer::Derive(
    const QueryDescription& query) const {
  std::shared_ptr<const RuleSet> rules = dictionary_->induced_rules_snapshot();
  return Derive(query, *rules);
}

Result<RewritePlan> SemanticOptimizer::Rewrite(
    const SelectStatement& stmt, const RuleSet& rules, SqoMode mode,
    const Database& db, const InferenceEngine& engine) const {
  IQS_SPAN("optimizer.rewrite");
  IQS_COUNTER_INC("optimizer.rewrite.count");
  RewritePlan plan;
  plan.statement = stmt;
  if (mode == SqoMode::kOff || stmt.where == nullptr) return plan;
  for (const TableRef& ref : stmt.from) {
    if (db.IsVirtual(ref.name)) return plan;  // sys.* snapshots have no rules
  }

  std::vector<const SqlExpr*> conjuncts = TopLevelConjuncts(stmt.where.get());
  std::vector<BoundConjunct> bound;
  bound.reserve(conjuncts.size());
  bool all_safe = true;
  for (const SqlExpr* expr : conjuncts) {
    bound.push_back(Classify(db, stmt.from, expr));
    all_safe = all_safe && bound.back().safe;
  }
  // Every rewrite changes which rows get loaded or evaluated, so the pass
  // declines unless no conjunct can raise at eval time: otherwise skipping
  // a row (or an eval) could suppress an error the unoptimized run
  // reports, and on/off answers would diverge.
  if (!all_safe) {
    IQS_COUNTER_INC("optimizer.rewrite.unshaped");
    return plan;
  }

  const size_t n = bound.size();
  std::vector<bool> eliminated(n, false);
  // A conjunct whose implication justified a rewrite is pinned: dropping
  // it later would orphan that justification (mutual implications must
  // keep one side).
  std::vector<bool> load_bearing(n, false);
  std::vector<SqlExprPtr> narrows;
  std::set<std::pair<size_t, std::string>> narrowed;
  std::map<std::pair<size_t, std::string>, bool> null_cache;

  // Nulls do not participate in induction, so "seed ⇒ X ∈ hull" only
  // covers rows with non-null X; eliminating or adding a conjunct over a
  // nullable column could flip a null row in or out of the answer.
  auto column_is_nullable = [&](size_t table, const std::string& attr) {
    auto key = std::make_pair(table, ToLower(attr));
    auto it = null_cache.find(key);
    if (it != null_cache.end()) return it->second;
    bool nullable = true;
    Result<const Relation*> rel = db.Get(stmt.from[table].name);
    if (rel.ok()) {
      Result<size_t> idx = (*rel)->schema().IndexOf(attr);
      if (idx.ok()) {
        nullable = false;
        for (const Tuple& row : (*rel)->rows()) {
          if (row.at(*idx).is_null()) {
            nullable = true;
            break;
          }
        }
      }
    }
    null_cache[key] = nullable;
    return nullable;
  };

  for (size_t ci = 0; ci < n && !plan.proven_empty; ++ci) {
    BoundConjunct& seed = bound[ci];
    if (!seed.recognized || eliminated[ci] || !seed.interval.IsPoint()) {
      continue;
    }
    const Value& y = *seed.interval.lo();
    const TableRef& owner = stmt.from[seed.table];

    // Complete single-LHS rule families on the seed's relation concluding
    // `attribute = y`, grouped by scheme. Inter-object rules carry role
    // qualifiers ("x.Class") and a relationship source; requiring the
    // source relation and bare/matching qualifiers keeps them out.
    struct Family {
      std::string x_attr;
      std::vector<Interval> intervals;
      std::vector<int> ids;
      bool complete = true;
    };
    std::map<std::string, Family> families;
    for (const Rule& rule : rules.rules()) {
      if (rule.lhs.size() != 1) continue;
      if (!EqualsIgnoreCase(rule.source_relation, owner.name)) continue;
      std::string rhs_qual = rule.rhs.clause.Qualifier();
      std::string lhs_qual = rule.lhs[0].Qualifier();
      if (!rhs_qual.empty() && !EqualsIgnoreCase(rhs_qual, owner.name)) {
        continue;
      }
      if (!lhs_qual.empty() && !EqualsIgnoreCase(lhs_qual, owner.name)) {
        continue;
      }
      if (!SameAttribute(rule.rhs.clause.attribute(), seed.attribute,
                         AttributeMatch::kBaseName)) {
        continue;
      }
      if (!rule.rhs.clause.IsPoint() ||
          *rule.rhs.clause.interval().lo() != y) {
        continue;
      }
      Family& f = families[rule.scheme];
      if (f.x_attr.empty()) f.x_attr = rule.lhs[0].attribute();
      f.intervals.push_back(rule.lhs[0].interval());
      f.ids.push_back(rule.id);
      f.complete = f.complete && rule.family_complete;
    }

    for (auto& [scheme, family] : families) {
      // Only a complete family supports the converse reading
      // "attribute = y ⇒ X ∈ (union of the family's LHS intervals)".
      if (!family.complete) {
        IQS_COUNTER_INC("optimizer.incomplete_families");
        continue;
      }
      std::string x_base = AttrBaseName(family.x_attr);
      if (SameAttribute(family.x_attr, seed.attribute,
                        AttributeMatch::kBaseName)) {
        continue;  // vacuous self-restriction
      }
      std::sort(family.ids.begin(), family.ids.end());
      seed.has_family = true;
      seed.family_ids.insert(seed.family_ids.end(), family.ids.begin(),
                             family.ids.end());

      // Closed hull of the union: used by the contradiction test and by
      // narrowing, both of which tolerate the over-approximation.
      std::optional<Interval> hull;
      {
        const Value* lo = nullptr;
        const Value* hi = nullptr;
        bool bounded = true;
        for (const Interval& iv : family.intervals) {
          if (!iv.lo().has_value() || !iv.hi().has_value()) {
            bounded = false;
            break;
          }
          if (lo == nullptr || *iv.lo() < *lo) lo = &*iv.lo();
          if (hi == nullptr || *iv.hi() > *hi) hi = &*iv.hi();
        }
        if (bounded && lo != nullptr) {
          Result<Interval> h = Interval::Closed(*lo, *hi);
          if (h.ok()) hull = *h;
        }
      }

      // (a) elimination and (b) empty-proof against every other conjunct
      // over X on the same FROM entry.
      for (size_t di = 0; di < n && !plan.proven_empty; ++di) {
        if (di == ci || eliminated[di]) continue;
        const BoundConjunct& other = bound[di];
        if (!other.recognized || other.table != seed.table) continue;
        if (!SameAttribute(other.attribute, x_base,
                           AttributeMatch::kBaseName)) {
          continue;
        }
        bool implied = true;
        for (const Interval& iv : family.intervals) {
          if (!other.interval.ContainsInterval(iv)) {
            implied = false;
            break;
          }
        }
        if (implied) {
          if (load_bearing[di] ||
              column_is_nullable(seed.table, other.attribute)) {
            continue;
          }
          eliminated[di] = true;
          load_bearing[ci] = true;
          plan.steps.push_back(
              RewriteStep{RewriteKind::kEliminated, family.ids,
                          "eliminated `" + other.expr->ToString() + "`"});
          continue;
        }
        if (!hull.has_value()) continue;
        std::string qualified = owner.effective_name() + "." + x_base;
        std::vector<Fact> facts;
        facts.push_back(Fact::Range(Clause(qualified, *hull), family.ids,
                                    Fact::Origin::kRule));
        facts.push_back(Fact::Range(Clause(qualified, other.interval)));
        if (engine.DetectContradiction(facts).has_value()) {
          plan.proven_empty = true;
          load_bearing[ci] = true;
          plan.steps.push_back(RewriteStep{
              RewriteKind::kEmptyProven, family.ids,
              "proved empty: `" + other.expr->ToString() +
                  "` is disjoint from rule-implied " + qualified + " in " +
                  hull->ToString()});
        }
      }
      if (plan.proven_empty) break;

      // (c) scan narrowing: hand the hull to the index/predicate layer as
      // an extra BETWEEN conjunct. The full WHERE still applies, so the
      // closed-hull over-approximation of the union is safe.
      if (!hull.has_value()) continue;
      auto key = std::make_pair(seed.table, ToLower(x_base));
      if (narrowed.count(key) > 0) continue;
      Result<const Relation*> rel = db.Get(owner.name);
      if (!rel.ok()) continue;
      Result<size_t> xi = (*rel)->schema().IndexOf(x_base);
      if (!xi.ok()) continue;
      const AttributeDef& x_def = (*rel)->schema().attribute(*xi);
      bool already_tight = false;
      for (size_t di = 0; di < n; ++di) {
        if (eliminated[di] || !bound[di].recognized) continue;
        if (bound[di].table != seed.table) continue;
        if (!SameAttribute(bound[di].attribute, x_base,
                           AttributeMatch::kBaseName)) {
          continue;
        }
        if (hull->ContainsInterval(bound[di].interval)) {
          already_tight = true;
          break;
        }
      }
      if (already_tight) continue;
      if (column_is_nullable(seed.table, x_def.name)) continue;
      auto narrow = std::make_shared<SqlExpr>();
      narrow->kind = SqlExpr::Kind::kBetween;
      narrow->lhs = SqlOperand::Column(
          ColumnRef{owner.effective_name(), x_def.name});
      narrow->low = SqlOperand::Literal(*hull->lo(), hull->lo()->ToString());
      narrow->high = SqlOperand::Literal(*hull->hi(), hull->hi()->ToString());
      plan.steps.push_back(
          RewriteStep{RewriteKind::kNarrowed, family.ids,
                      "narrowed scan: `" + narrow->ToString() + "`"});
      narrows.push_back(std::move(narrow));
      narrowed.insert(key);
      load_bearing[ci] = true;
    }
  }

  // (d) intensional-only answering: every surviving conjunct is a point
  // restriction characterized by a complete family, so the rule base
  // subsumes the predicate and the extensional pass can be skipped.
  if (mode == SqoMode::kIntensional && !plan.proven_empty &&
      stmt.from.size() == 1 && !stmt.has_aggregates() &&
      stmt.group_by.empty() && stmt.having == nullptr && n > 0) {
    bool subsumed = true;
    bool any_seed = false;
    std::vector<int> ids;
    for (size_t i = 0; i < n; ++i) {
      if (eliminated[i]) continue;
      if (!bound[i].recognized || !bound[i].interval.IsPoint() ||
          !bound[i].has_family) {
        subsumed = false;
        break;
      }
      any_seed = true;
      ids.insert(ids.end(), bound[i].family_ids.begin(),
                 bound[i].family_ids.end());
    }
    if (subsumed && any_seed) {
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      plan.intensional_only = true;
      plan.steps.push_back(RewriteStep{
          RewriteKind::kIntensionalOnly, std::move(ids),
          "rule base subsumes the predicate; answered intensionally, "
          "extensional scan skipped"});
    }
  }

  // Rebuild the WHERE clause when conjuncts were dropped or added.
  bool any_eliminated =
      std::find(eliminated.begin(), eliminated.end(), true) !=
      eliminated.end();
  if (any_eliminated || !narrows.empty()) {
    std::vector<SqlExprPtr> kept;
    for (size_t i = 0; i < n; ++i) {
      if (!eliminated[i]) {
        kept.push_back(std::make_shared<SqlExpr>(*conjuncts[i]));
      }
    }
    kept.insert(kept.end(), narrows.begin(), narrows.end());
    SqlExprPtr where;
    for (SqlExprPtr& part : kept) {
      if (where == nullptr) {
        where = std::move(part);
        continue;
      }
      auto conj = std::make_shared<SqlExpr>();
      conj->kind = SqlExpr::Kind::kAnd;
      conj->left = std::move(where);
      conj->right = std::move(part);
      where = std::move(conj);
    }
    plan.statement.where = std::move(where);  // null: WHERE fully eliminated
  }
  IQS_SPAN_ANNOTATE("steps", static_cast<int64_t>(plan.steps.size()));
  return plan;
}

Result<SemanticOptimizer::ScanEstimate> SemanticOptimizer::EstimateScan(
    const ImpliedCondition& implied, const Relation& relation) const {
  // Resolve the implied attribute against the relation by base name.
  size_t column = relation.schema().size();
  for (size_t i = 0; i < relation.schema().size(); ++i) {
    if (SameAttribute(relation.schema().attribute(i).name, implied.attribute,
                      AttributeMatch::kBaseName)) {
      column = i;
      break;
    }
  }
  if (column == relation.schema().size()) {
    return Status::NotFound("attribute '" + implied.attribute +
                            "' does not resolve in " + relation.name());
  }
  ScanEstimate out;
  out.total = relation.size();
  for (const Tuple& row : relation.rows()) {
    if (implied.Admits(row.at(column))) ++out.admitted;
  }
  return out;
}

}  // namespace iqs
