#ifndef IQS_CORE_PERSISTENCE_H_
#define IQS_CORE_PERSISTENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.h"
#include "fault/degrade.h"

namespace iqs {

// Whole-system persistence: the paper's relocation story (§5.2.2 — "a
// database and its associated rule relations can be relocated together.
// When the database is used in a location, the associated schema and
// rules are loaded into the system") as a crash-safe save/load pair.
//
// A saved system directory holds versioned snapshots (DESIGN.md §10):
//   CURRENT             name of the committed snapshot, flipped atomically
//   snapshot-<N>/       one immutable snapshot per save, containing
//     schema.ker          KER DDL (KerCatalog::ToDdl / ParseDdl round trip)
//     manifest.csv        relation name -> csv file, in creation order,
//                         with each column's name, type, and position
//     <relation>.csv      one file per relation, rule relations included
//     MANIFEST            footer: format version, rule/db epochs, and a
//                         byte length + CRC32C per file above
//   snapshot-<N>.tmp/   an in-progress or crashed save (never loaded)
//
// Saves never modify a committed snapshot: the new snapshot is built in a
// tmp directory, fsynced, renamed into place, and only then does CURRENT
// flip; old snapshots are garbage-collected after the flip. Loads verify
// every byte against the footer before parsing and fall back to the
// newest older intact snapshot when the current one is torn or corrupt.
// Directories written by the pre-snapshot flat layout still load.
//
// The induced rules travel inside the database as the four rule
// meta-relations; LoadSystem decodes them back into the dictionary.

struct SaveOptions {
  // Committed snapshots retained after a successful save (the newest —
  // the one CURRENT points at — always counts toward this). Minimum 1.
  size_t keep_snapshots = 2;
};

// What LoadSystem actually did, for callers that surface recovery to the
// user (the shell) or assert on it (tests).
struct LoadReport {
  std::string snapshot;  // snapshot name loaded, "" for a legacy layout
  bool legacy = false;   // flat pre-snapshot directory
  bool fallback = false;  // the CURRENT snapshot was damaged or missing
                          // and an older intact one was loaded instead
  uint64_t format_version = 0;  // 0 for legacy layouts
  uint64_t rule_epoch = 0;      // epochs recorded in the loaded footer
  uint64_t db_epoch = 0;
  // Relations skipped because their file failed verification and no
  // intact snapshot existed (last-resort load; never rule relations).
  std::vector<std::string> quarantined;
  // One event per fallback / quarantine, already recorded in metrics.
  std::vector<fault::DegradationEvent> degradations;
};

// Serializes `system` into a new snapshot under `directory` (created if
// missing), commits it atomically, and garbage-collects old snapshots.
// The induced rules are stored into the database first. On error or
// crash, the previously committed snapshot is untouched.
Status SaveSystem(IqsSystem* system, const std::string& directory,
                  const SaveOptions& save_options = {});

// Rebuilds a system from the newest intact snapshot in `directory`:
// verifies footer checksums, parses schema.ker, loads every relation in
// the manifest, assembles the dictionary, and imports the rule relations
// when present. Falls back across snapshots as described above; fills
// `report` (optional) with what happened. `options` supplies the display
// vocabulary (it is not persisted).
Result<std::unique_ptr<IqsSystem>> LoadSystem(const std::string& directory,
                                              FormatterOptions options = {},
                                              LoadReport* report = nullptr);

}  // namespace iqs

#endif  // IQS_CORE_PERSISTENCE_H_
