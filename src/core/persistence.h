#ifndef IQS_CORE_PERSISTENCE_H_
#define IQS_CORE_PERSISTENCE_H_

#include <string>

#include "core/system.h"

namespace iqs {

// Whole-system persistence: the paper's relocation story (§5.2.2 — "a
// database and its associated rule relations can be relocated together.
// When the database is used in a location, the associated schema and
// rules are loaded into the system") as a single save/load pair.
//
// Layout of a saved system directory:
//   schema.ker          KER DDL (KerCatalog::ToDdl / ParseDdl round trip)
//   manifest.csv        relation name -> csv file, in creation order,
//                       with each column's name and type (so relations
//                       whose object type has a different column order,
//                       or no object type at all, reload faithfully)
//   <relation>.csv      one file per relation, rule relations included
//
// The induced rules travel inside the database as the four rule
// meta-relations; LoadSystem decodes them back into the dictionary.

// Serializes `system` into `directory` (created if missing). The induced
// rules are stored into the database first.
Status SaveSystem(IqsSystem* system, const std::string& directory);

// Rebuilds a system from `directory`: parses schema.ker, loads every
// relation in the manifest, assembles the dictionary, and imports the
// rule relations when present. `options` supplies the display vocabulary
// (it is not persisted).
Result<std::unique_ptr<IqsSystem>> LoadSystem(const std::string& directory,
                                              FormatterOptions options = {});

}  // namespace iqs

#endif  // IQS_CORE_PERSISTENCE_H_
