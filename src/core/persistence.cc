#include "core/persistence.h"

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "fault/degrade.h"
#include "fault/failpoint.h"
#include "ker/ddl_parser.h"
#include "relational/csv.h"
#include "rules/rule_relation.h"

namespace iqs {

namespace {

constexpr char kSchemaFile[] = "schema.ker";
constexpr char kManifestFile[] = "manifest.csv";

Schema ManifestSchema() {
  return Schema({{"Relation", ValueType::kString, false},
                 {"File", ValueType::kString, false},
                 {"Attribute", ValueType::kString, false},
                 {"Type", ValueType::kString, false},
                 {"IsKey", ValueType::kInt, false},
                 {"Position", ValueType::kInt, false}});
}

std::string FileNameFor(const std::string& relation) {
  return relation + ".csv";
}

// One save attempt; the public SaveSystem retries transient faults.
Status SaveSystemOnce(IqsSystem* system, const std::string& directory) {
  IQS_FAILPOINT("persist.save");
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create directory '" + directory +
                                   "': " + ec.message());
  }
  // Rules travel inside the database as meta-relations.
  IQS_RETURN_IF_ERROR(system->StoreRulesInDatabase());

  // Schema as KER DDL.
  {
    std::ofstream schema_file(
        (std::filesystem::path(directory) / kSchemaFile).string());
    if (!schema_file) {
      return Status::Internal("cannot write schema.ker");
    }
    schema_file << system->catalog().ToDdl();
  }

  // Manifest + one CSV per relation.
  Relation manifest("MANIFEST", ManifestSchema());
  for (const std::string& name : system->database().RelationNames()) {
    IQS_ASSIGN_OR_RETURN(const Relation* rel, system->database().Get(name));
    for (size_t i = 0; i < rel->schema().size(); ++i) {
      const AttributeDef& attr = rel->schema().attribute(i);
      manifest.AppendUnchecked(
          Tuple({Value::String(rel->name()),
                 Value::String(FileNameFor(rel->name())),
                 Value::String(attr.name),
                 Value::String(ValueTypeName(attr.type)),
                 Value::Int(attr.is_key ? 1 : 0),
                 Value::Int(static_cast<int64_t>(i))}));
    }
    IQS_RETURN_IF_ERROR(WriteCsvFile(
        *rel,
        (std::filesystem::path(directory) / FileNameFor(rel->name()))
            .string()));
  }
  return WriteCsvFile(
      manifest, (std::filesystem::path(directory) / kManifestFile).string());
}

// One load attempt; the public LoadSystem retries transient faults.
Result<std::unique_ptr<IqsSystem>> LoadSystemOnce(const std::string& directory,
                                                  FormatterOptions options) {
  IQS_FAILPOINT("persist.load");
  std::filesystem::path dir(directory);
  // Schema.
  std::ifstream schema_file((dir / kSchemaFile).string());
  if (!schema_file) {
    return Status::NotFound("no schema.ker in '" + directory + "'");
  }
  std::ostringstream schema_text;
  schema_text << schema_file.rdbuf();
  auto catalog = std::make_unique<KerCatalog>();
  IQS_RETURN_IF_ERROR(ParseDdl(schema_text.str(), catalog.get()));

  // Manifest -> ordered relation descriptors.
  IQS_ASSIGN_OR_RETURN(
      Relation manifest,
      ReadCsvFile("MANIFEST", ManifestSchema(),
                  (dir / kManifestFile).string()));
  struct Descriptor {
    std::string file;
    std::map<int64_t, AttributeDef> attrs;  // position -> definition
  };
  std::vector<std::string> order;
  std::map<std::string, Descriptor> descriptors;
  for (const Tuple& row : manifest.rows()) {
    const std::string& relation = row.at(0).AsString();
    if (descriptors.count(relation) == 0) order.push_back(relation);
    Descriptor& d = descriptors[relation];
    d.file = row.at(1).AsString();
    IQS_ASSIGN_OR_RETURN(ValueType type,
                         ValueTypeFromName(row.at(3).AsString()));
    d.attrs[row.at(5).AsInt()] =
        AttributeDef{row.at(2).AsString(), type, row.at(4).AsInt() != 0};
  }

  auto db = std::make_unique<Database>();
  for (const std::string& relation : order) {
    const Descriptor& d = descriptors[relation];
    std::vector<AttributeDef> attrs;
    for (const auto& [position, attr] : d.attrs) attrs.push_back(attr);
    IQS_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));
    IQS_ASSIGN_OR_RETURN(
        Relation rel,
        ReadCsvFile(relation, schema, (dir / d.file).string()));
    IQS_RETURN_IF_ERROR(db->AddRelation(std::move(rel)));
  }

  bool has_rules = db->Contains(kRuleRelName);
  IQS_ASSIGN_OR_RETURN(std::unique_ptr<IqsSystem> system,
                       IqsSystem::Create(std::move(db), std::move(catalog),
                                         std::move(options)));
  if (has_rules) {
    IQS_RETURN_IF_ERROR(system->LoadRulesFromDatabase());
  }
  return system;
}

}  // namespace

Status SaveSystem(IqsSystem* system, const std::string& directory) {
  return fault::RetryTransient("persist.save", /*max_attempts=*/3,
                               [system, &directory]() {
                                 return SaveSystemOnce(system, directory);
                               });
}

Result<std::unique_ptr<IqsSystem>> LoadSystem(const std::string& directory,
                                              FormatterOptions options) {
  return fault::RetryTransientResult<std::unique_ptr<IqsSystem>>(
      "persist.load", /*max_attempts=*/3, [&directory, &options]() {
        return LoadSystemOnce(directory, options);
      });
}

}  // namespace iqs
