#include "core/persistence.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>

#include "common/crc32c.h"
#include "core/snapshot.h"
#include "fault/failpoint.h"
#include "ker/ddl_parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/csv.h"
#include "rules/rule_relation.h"

namespace iqs {

namespace {

constexpr char kSchemaFile[] = "schema.ker";
constexpr char kManifestFile[] = "manifest.csv";

Schema ManifestSchema() {
  return Schema({{"Relation", ValueType::kString, false},
                 {"File", ValueType::kString, false},
                 {"Attribute", ValueType::kString, false},
                 {"Type", ValueType::kString, false},
                 {"IsKey", ValueType::kInt, false},
                 {"Position", ValueType::kInt, false}});
}

std::string FileNameFor(const std::string& relation) {
  return relation + ".csv";
}

// Files a last-resort (quarantine) load cannot do without: the schema,
// the manifest, and the rule meta-relations. A corrupt rule relation is
// corrupt induced knowledge — recovery must not silently drop it.
std::vector<std::string> EssentialFiles() {
  return {kSchemaFile,
          kManifestFile,
          FileNameFor(kRuleRelName),
          FileNameFor(kAttrMapName),
          FileNameFor(kAttrTableName),
          FileNameFor(kRuleMetaName)};
}

// The id a new snapshot gets: one past everything ever seen in the
// directory — committed snapshots, crashed tmp dirs, and the CURRENT
// target — so a crashed save's leftovers are never reused or clobbered.
uint64_t NextSnapshotId(const std::string& directory) {
  int64_t max_id = -1;
  for (uint64_t id : persist::ListSnapshotIds(directory)) {
    max_id = std::max(max_id, static_cast<int64_t>(id));
  }
  for (const std::string& tmp : persist::ListTmpDirs(directory)) {
    std::string name = tmp.substr(0, tmp.size() - std::strlen(persist::kTmpSuffix));
    max_id = std::max(max_id, persist::ParseSnapshotId(name));
  }
  max_id = std::max(max_id, persist::ParseSnapshotId(
                                persist::ReadCurrent(directory)));
  return static_cast<uint64_t>(max_id + 1);
}

// Removes snapshots beyond `keep` and every leftover tmp dir. Best
// effort: a GC failure never fails the save that just committed.
void CollectGarbage(const std::string& directory, size_t keep) {
  if (keep == 0) keep = 1;
  std::vector<uint64_t> ids = persist::ListSnapshotIds(directory);
  size_t removed = 0;
  while (ids.size() > keep) {
    std::error_code ec;
    std::filesystem::remove_all(
        directory + "/" + persist::SnapshotDirName(ids.front()), ec);
    if (!ec) ++removed;
    ids.erase(ids.begin());
  }
  for (const std::string& tmp : persist::ListTmpDirs(directory)) {
    std::error_code ec;
    std::filesystem::remove_all(directory + "/" + tmp, ec);
    if (!ec) ++removed;
  }
  IQS_COUNTER_ADD("persist.gc.removed", removed);
}

// One save attempt; the public SaveSystem retries transient faults.
Status SaveSystemOnce(IqsSystem* system, const std::string& directory,
                      const SaveOptions& save_options) {
  IQS_FAILPOINT("persist.save");
  IQS_SPAN("persist.save");
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create directory '" + directory +
                                   "': " + ec.message());
  }
  // Rules travel inside the database as meta-relations.
  IQS_RETURN_IF_ERROR(system->StoreRulesInDatabase());

  const uint64_t id = NextSnapshotId(directory);
  const std::string snap_name = persist::SnapshotDirName(id);
  const std::string tmp_dir =
      directory + "/" + snap_name + persist::kTmpSuffix;
  const std::string final_dir = directory + "/" + snap_name;
  std::filesystem::create_directories(tmp_dir, ec);
  if (ec) {
    return Status::Internal("cannot create snapshot directory '" + tmp_dir +
                            "': " + ec.message());
  }

  persist::SnapshotManifest footer;
  footer.rule_epoch = system->dictionary().rule_epoch();
  footer.db_epoch = system->database().epoch();
  // Checksums cover the *intended* bytes; a torn or corrupted write is
  // exactly what the checksum catches at load time.
  auto write_one = [&](const std::string& name,
                       const std::string& content) -> Status {
    footer.files.push_back(persist::FileEntry{
        name, static_cast<uint64_t>(content.size()), Crc32c(content)});
    return persist::WriteFileDurable(tmp_dir + "/" + name, content);
  };

  IQS_RETURN_IF_ERROR(write_one(kSchemaFile, system->catalog().ToDdl()));

  Relation manifest("MANIFEST", ManifestSchema());
  for (const std::string& name : system->database().RelationNames()) {
    IQS_ASSIGN_OR_RETURN(const Relation* rel, system->database().Get(name));
    for (size_t i = 0; i < rel->schema().size(); ++i) {
      const AttributeDef& attr = rel->schema().attribute(i);
      manifest.AppendUnchecked(
          Tuple({Value::String(rel->name()),
                 Value::String(FileNameFor(rel->name())),
                 Value::String(attr.name),
                 Value::String(ValueTypeName(attr.type)),
                 Value::Int(attr.is_key ? 1 : 0),
                 Value::Int(static_cast<int64_t>(i))}));
    }
    IQS_RETURN_IF_ERROR(
        write_one(FileNameFor(rel->name()), RelationToCsv(*rel)));
  }
  IQS_RETURN_IF_ERROR(write_one(kManifestFile, RelationToCsv(manifest)));

  // Footer last: it vouches for everything written above.
  IQS_RETURN_IF_ERROR(persist::WriteFileDurable(
      tmp_dir + "/" + persist::kFooterFile, footer.Serialize()));
  IQS_RETURN_IF_ERROR(persist::FsyncDir(tmp_dir));

  IQS_FAILPOINT("persist.crash.before_rename");
  if (std::rename(tmp_dir.c_str(), final_dir.c_str()) != 0) {
    return Status::Internal("cannot rename '" + tmp_dir + "' to '" +
                            final_dir + "'");
  }
  IQS_RETURN_IF_ERROR(persist::FsyncDir(directory));
  IQS_FAILPOINT("persist.crash.after_rename");

  // The commit point: readers switch to the new snapshot here.
  IQS_RETURN_IF_ERROR(persist::AtomicReplaceFile(
      directory + "/" + persist::kCurrentFile, snap_name + "\n"));
  IQS_COUNTER_INC("persist.save.snapshots");

  // Only after CURRENT flips is anything old expendable.
  CollectGarbage(directory, save_options.keep_snapshots);
  return Status::Ok();
}

// Loads a system from one flat directory of schema.ker + manifest.csv +
// CSVs — a snapshot's contents, or a whole legacy-layout directory.
// When `skip_files` is non-null, relations whose file is listed there
// are quarantined (skipped, names appended to `quarantined`) instead of
// read; everything else is parsed strictly.
Result<std::unique_ptr<IqsSystem>> LoadFromFlatDir(
    const std::string& dir, FormatterOptions options,
    const std::set<std::string>* skip_files,
    std::vector<std::string>* quarantined) {
  const std::string schema_path = dir + "/" + kSchemaFile;
  IQS_ASSIGN_OR_RETURN(std::string schema_text,
                       persist::ReadFileToString(schema_path));
  auto catalog = std::make_unique<KerCatalog>();
  Status parsed_schema = ParseDdl(schema_text, catalog.get());
  if (!parsed_schema.ok()) {
    return Status(parsed_schema.code(), parsed_schema.message() +
                                            " (file '" + schema_path + "')");
  }

  // Manifest -> ordered relation descriptors, validated: a relation's
  // positions must be exactly 0..n-1 with no duplicates, else the
  // manifest (not the data) is the corrupt artifact.
  const std::string manifest_path = dir + "/" + kManifestFile;
  IQS_ASSIGN_OR_RETURN(std::string manifest_text,
                       persist::ReadFileToString(manifest_path));
  Result<Relation> manifest =
      RelationFromCsv("MANIFEST", ManifestSchema(), manifest_text);
  if (!manifest.ok()) {
    return Status(manifest.status().code(),
                  manifest.status().message() + " (file '" + manifest_path +
                      "')");
  }
  struct Descriptor {
    std::string file;
    std::map<int64_t, AttributeDef> attrs;  // position -> definition
  };
  std::vector<std::string> order;
  std::map<std::string, Descriptor> descriptors;
  for (const Tuple& row : manifest->rows()) {
    const std::string& relation = row.at(0).AsString();
    if (descriptors.count(relation) == 0) order.push_back(relation);
    Descriptor& d = descriptors[relation];
    d.file = row.at(1).AsString();
    IQS_ASSIGN_OR_RETURN(ValueType type,
                         ValueTypeFromName(row.at(3).AsString()));
    int64_t position = row.at(5).AsInt();
    if (d.attrs.count(position) != 0) {
      return Status::InvalidArgument(
          "manifest repeats position " + std::to_string(position) +
          " for relation '" + relation + "' (file '" + manifest_path + "')");
    }
    d.attrs[position] =
        AttributeDef{row.at(2).AsString(), type, row.at(4).AsInt() != 0};
  }
  for (const std::string& relation : order) {
    const Descriptor& d = descriptors[relation];
    for (int64_t i = 0; i < static_cast<int64_t>(d.attrs.size()); ++i) {
      if (d.attrs.count(i) == 0) {
        return Status::InvalidArgument(
            "manifest for relation '" + relation +
            "' has non-contiguous positions: missing " + std::to_string(i) +
            " (file '" + manifest_path + "')");
      }
    }
  }

  auto db = std::make_unique<Database>();
  for (const std::string& relation : order) {
    const Descriptor& d = descriptors[relation];
    if (skip_files != nullptr && skip_files->count(d.file) != 0) {
      if (quarantined != nullptr) quarantined->push_back(relation);
      continue;
    }
    std::vector<AttributeDef> attrs;
    for (const auto& [position, attr] : d.attrs) attrs.push_back(attr);
    IQS_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));
    const std::string rel_path = dir + "/" + d.file;
    IQS_ASSIGN_OR_RETURN(std::string rel_text,
                         persist::ReadFileToString(rel_path));
    Result<Relation> rel = RelationFromCsv(relation, schema, rel_text);
    if (!rel.ok()) {
      return Status(rel.status().code(), rel.status().message() +
                                             " (file '" + rel_path + "')");
    }
    IQS_RETURN_IF_ERROR(db->AddRelation(std::move(*rel)));
  }

  bool has_rules = db->Contains(kRuleRelName);
  IQS_ASSIGN_OR_RETURN(std::unique_ptr<IqsSystem> system,
                       IqsSystem::Create(std::move(db), std::move(catalog),
                                         std::move(options)));
  if (has_rules) {
    IQS_RETURN_IF_ERROR(system->LoadRulesFromDatabase());
  }
  return system;
}

// One load attempt; the public LoadSystem retries transient faults.
Result<std::unique_ptr<IqsSystem>> LoadSystemOnce(const std::string& directory,
                                                  FormatterOptions options,
                                                  LoadReport* report) {
  IQS_FAILPOINT("persist.load");
  IQS_SPAN("persist.load");
  const std::string current = persist::ReadCurrent(directory);
  std::vector<uint64_t> ids = persist::ListSnapshotIds(directory);
  if (current.empty() && ids.empty()) {
    // Flat pre-snapshot layout: no footer to verify, parse strictly.
    report->legacy = true;
    IQS_COUNTER_INC("persist.load.legacy");
    return LoadFromFlatDir(directory, std::move(options), nullptr, nullptr);
  }

  // Recovery ladder: the CURRENT target first, then every other
  // committed snapshot newest-first. The first one whose footer and
  // checksums verify is loaded whole.
  std::vector<std::string> candidates;
  if (!current.empty()) candidates.push_back(current);
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    std::string name = persist::SnapshotDirName(*it);
    if (name != current) candidates.push_back(name);
  }

  std::vector<persist::SnapshotHealth> healths;
  for (const std::string& name : candidates) {
    persist::SnapshotHealth health =
        persist::VerifySnapshot(directory + "/" + name);
    if (!health.intact) {
      healths.push_back(std::move(health));
      continue;
    }
    if (name != current) {
      fault::DegradationEvent event;
      event.stage = "persistence";
      event.action = fault::DegradeAction::kSnapshotFallback;
      event.reason = current.empty()
                         ? "CURRENT missing; recovered from '" + name + "'"
                         : "snapshot '" + current +
                               "' failed verification; recovered from '" +
                               name + "'";
      fault::RecordDegradation(event);
      IQS_COUNTER_INC("persist.recovery.fallback");
      report->fallback = true;
      report->degradations.push_back(std::move(event));
    }
    report->snapshot = name;
    report->format_version = health.manifest.format_version;
    report->rule_epoch = health.manifest.rule_epoch;
    report->db_epoch = health.manifest.db_epoch;
    return LoadFromFlatDir(directory + "/" + name, std::move(options),
                           nullptr, nullptr);
  }

  // No intact snapshot anywhere. Last resort: take the newest candidate
  // whose footer still parses, require the essential files to verify,
  // and quarantine the corrupt non-rule relations instead of aborting.
  for (const persist::SnapshotHealth& health : healths) {
    if (!health.footer_ok) continue;
    std::set<std::string> bad(health.bad_files.begin(),
                              health.bad_files.end());
    for (const std::string& essential : EssentialFiles()) {
      if (bad.count(essential) != 0) {
        return Status::Corruption(
            "snapshot '" + directory + "/" + health.name +
            "' is damaged beyond recovery: essential file '" + essential +
            "' failed verification");
      }
    }
    report->snapshot = health.name;
    report->format_version = health.manifest.format_version;
    report->rule_epoch = health.manifest.rule_epoch;
    report->db_epoch = health.manifest.db_epoch;
    IQS_ASSIGN_OR_RETURN(
        std::unique_ptr<IqsSystem> system,
        LoadFromFlatDir(directory + "/" + health.name, std::move(options),
                        &bad, &report->quarantined));
    for (const std::string& relation : report->quarantined) {
      fault::DegradationEvent event;
      event.stage = "persistence";
      event.action = fault::DegradeAction::kQuarantine;
      event.reason = "relation '" + relation + "' quarantined: '" +
                     FileNameFor(relation) + "' failed verification in '" +
                     health.name + "'";
      fault::RecordDegradation(event);
      IQS_COUNTER_INC("persist.recovery.quarantined");
      report->degradations.push_back(std::move(event));
    }
    return system;
  }
  return Status::Corruption("no loadable snapshot in '" + directory +
                            "': every snapshot footer is missing or corrupt");
}

}  // namespace

Status SaveSystem(IqsSystem* system, const std::string& directory,
                  const SaveOptions& save_options) {
  return fault::RetryTransient(
      "persist.save", /*max_attempts=*/3, [system, &directory, &save_options]() {
        return SaveSystemOnce(system, directory, save_options);
      });
}

Result<std::unique_ptr<IqsSystem>> LoadSystem(const std::string& directory,
                                              FormatterOptions options,
                                              LoadReport* report) {
  LoadReport local;
  Result<std::unique_ptr<IqsSystem>> result =
      fault::RetryTransientResult<std::unique_ptr<IqsSystem>>(
          "persist.load", /*max_attempts=*/3, [&directory, &options, &local]() {
            local = LoadReport();
            return LoadSystemOnce(directory, options, &local);
          });
  if (report != nullptr) *report = std::move(local);
  return result;
}

}  // namespace iqs
