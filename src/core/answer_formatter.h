#ifndef IQS_CORE_ANSWER_FORMATTER_H_
#define IQS_CORE_ANSWER_FORMATTER_H_

#include <string>

#include "core/query_processor.h"

namespace iqs {

// Domain vocabulary for natural-language rendering of intensional
// answers. The paper's ship test bed reads "Ship type SSBN has
// displacement greater than 8000"; a payroll application would configure
// noun "Employee".
struct FormatterOptions {
  std::string entity_noun = "Instance";
  // Verb phrase linking entities of two roles in a combined answer
  // ("is equipped with" for INSTALL).
  std::string relationship_phrase = "is associated with";
};

// Renders intensional answers as sentences in the style of the paper's
// A_I examples, plus a structured trace of every statement.
class AnswerFormatter {
 public:
  // `dictionary` must outlive the formatter.
  AnswerFormatter(const DataDictionary* dictionary, FormatterOptions options)
      : dictionary_(dictionary), options_(std::move(options)) {}

  // A one-paragraph, paper-style summary sentence, e.g.
  //   "Ship type SSBN has Displacement > 8000."          (forward)
  //   "Instances with 0101 <= Class <= 0103 are SSBN."   (backward)
  //   "Ship type SSN with 0208 <= Class <= 0215 is equipped with
  //    Sonar = BQS-04."                                  (combined)
  std::string Summary(const QueryResult& result) const;

  // Full rendering: the summary plus one line per statement with
  // provenance and containment direction.
  std::string Render(const QueryResult& result) const;

  // The most specific forward-derived type per role variable (supertypes
  // of another derived type are dropped): {"x" -> "SSN", "y" -> "BQS"}.
  std::vector<std::pair<std::string, std::string>> MostSpecificTypes(
      const IntensionalAnswer& answer) const;

 private:
  const DataDictionary* dictionary_;
  FormatterOptions options_;
};

}  // namespace iqs

#endif  // IQS_CORE_ANSWER_FORMATTER_H_
