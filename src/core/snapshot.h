#ifndef IQS_CORE_SNAPSHOT_H_
#define IQS_CORE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace iqs {
namespace persist {

// Crash-safe snapshot layout (DESIGN.md §10). A system directory holds
//
//   CURRENT               -> "snapshot-000042\n", flipped atomically
//   snapshot-000041/       previous committed snapshot (retained for
//   snapshot-000042/       recovery), each containing schema.ker,
//     schema.ker           manifest.csv, one CSV per relation, and a
//     manifest.csv         MANIFEST footer with per-file byte lengths
//     <REL>.csv ...        and CRC32C checksums
//     MANIFEST
//   snapshot-000043.tmp/   an in-progress or crashed save (never read)
//
// A save builds snapshot-<N>.tmp, fsyncs every file and the directory,
// renames it to snapshot-<N>, fsyncs the parent, then flips CURRENT via
// write-temp + fsync + rename. Readers that find a torn or corrupt
// current snapshot fall back to the newest older snapshot that verifies.

inline constexpr uint64_t kFormatVersion = 1;
inline constexpr char kCurrentFile[] = "CURRENT";
inline constexpr char kFooterFile[] = "MANIFEST";
inline constexpr char kSnapshotPrefix[] = "snapshot-";
inline constexpr char kTmpSuffix[] = ".tmp";

// One persisted file as recorded in the MANIFEST footer.
struct FileEntry {
  std::string name;  // basename inside the snapshot directory
  uint64_t bytes = 0;
  uint32_t crc32c = 0;
};

// The MANIFEST footer: everything LoadSystem needs to verify a snapshot
// before parsing a single CSV. Text format, one token-separated record
// per line (the file name comes last so it may contain spaces):
//
//   IQS_SNAPSHOT 1
//   rule_epoch 7
//   db_epoch 19
//   file 1043 e3069283 schema.ker
//   file 512 0badf00d CLASS.csv
//   ...
struct SnapshotManifest {
  uint64_t format_version = kFormatVersion;
  uint64_t rule_epoch = 0;
  uint64_t db_epoch = 0;
  std::vector<FileEntry> files;

  std::string Serialize() const;
  // Parse failures return Status::Corruption — a damaged footer is
  // indistinguishable from a damaged snapshot.
  static Result<SnapshotManifest> Parse(const std::string& text);

  // Entry for `name`, or nullptr.
  const FileEntry* Find(const std::string& name) const;
};

// Writes `content` to `path` with open/write/fsync/close, surfacing
// errno text path-qualified. This is the single choke point where the
// persist.torn_write / persist.corrupt failpoints apply (matched against
// the basename of `path`): the *intended* bytes are what callers
// checksum, the faulted bytes are what reaches the disk.
Status WriteFileDurable(const std::string& path, const std::string& content);

// Reads a whole file; NotFound when missing, path-qualified errors.
Result<std::string> ReadFileToString(const std::string& path);

// fsyncs a directory so a rename inside it is durable.
Status FsyncDir(const std::string& dir);

// Atomically replaces `path` with `content`: durable write of
// `path.tmp`, rename over `path`, fsync of the parent directory.
Status AtomicReplaceFile(const std::string& path, const std::string& content);

// "snapshot-000042" for id 42. Ids are zero-padded so lexicographic
// order matches numeric order in directory listings.
std::string SnapshotDirName(uint64_t id);

// Id of a committed snapshot directory name, or -1 when `name` is not
// one (tmp dirs and foreign files return -1).
int64_t ParseSnapshotId(const std::string& name);

// Committed snapshot ids under `dir`, ascending. Missing dir -> empty.
std::vector<uint64_t> ListSnapshotIds(const std::string& dir);

// Leftover "snapshot-*.tmp" names under `dir` (crashed saves).
std::vector<std::string> ListTmpDirs(const std::string& dir);

// The snapshot name CURRENT points at, or "" when absent/unreadable.
std::string ReadCurrent(const std::string& dir);

// Verification outcome for one snapshot directory.
struct SnapshotHealth {
  std::string name;           // "snapshot-000042"
  bool intact = false;        // footer parsed and every file verified
  bool footer_ok = false;     // the MANIFEST footer itself parsed
  SnapshotManifest manifest;  // valid when footer_ok
  std::vector<std::string> problems;   // human-readable findings
  std::vector<std::string> bad_files;  // basenames that failed length/CRC
};

// Checks the MANIFEST footer and every listed file's length and CRC32C.
// Never returns an error for damage — damage lands in the report; only
// the snapshot *name* being malformed is the caller's bug.
SnapshotHealth VerifySnapshot(const std::string& snapshot_dir);

// `iqs fsck`: offline verification of a whole system directory.
struct FsckReport {
  std::string directory;
  std::string current;  // CURRENT target, "" when missing
  bool legacy = false;  // flat pre-snapshot layout (no CURRENT/snapshot-*)
  std::vector<SnapshotHealth> snapshots;  // newest first
  std::vector<std::string> orphans;       // *.tmp dirs, uncommitted snapshots,
                                          // dangling CURRENT target

  // True when CURRENT resolves to an intact snapshot and nothing is
  // orphaned (legacy directories are reported healthy but flagged).
  bool healthy() const;
  std::string ToString() const;
};

Result<FsckReport> FsckDirectory(const std::string& dir);

}  // namespace persist
}  // namespace iqs

#endif  // IQS_CORE_SNAPSHOT_H_
