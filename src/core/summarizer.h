#ifndef IQS_CORE_SUMMARIZER_H_
#define IQS_CORE_SUMMARIZER_H_

#include <string>
#include <vector>

#include "dictionary/data_dictionary.h"
#include "relational/relation.h"

namespace iqs {

// Aggregate characterization of an extensional answer — the other kind
// of "summarized answer" the paper's introduction motivates (citing
// Shum & Muntz's aggregate responses, VLDB '88). Where type inference
// characterizes answers by *rules*, the summarizer characterizes them by
// *statistics over the answer itself*: per-type membership counts (using
// the hierarchy's derivation specifications) and per-attribute ranges.
//
//   AnswerSummary s = SummarizeAnswer(answers, dictionary);
//   s.ToString() ->
//     7 rows.
//     by type: SSBN 7/7 (C0103 3, C0102 2, C0101 1, C1301 1)
//     Class: 7 values in [0101, 1301]
//     ...

// Count of answer rows belonging to one type of the hierarchy.
struct TypeBreakdownEntry {
  std::string type_name;
  size_t count = 0;
  int depth = 0;  // distance from the hierarchy root (1 = direct subtype)
};

// Observed statistics of one answer column.
struct ColumnSummary {
  std::string attribute;
  size_t non_null = 0;
  size_t distinct = 0;
  Value min;  // null when the column is empty
  Value max;
};

struct AnswerSummary {
  size_t rows = 0;
  std::vector<TypeBreakdownEntry> by_type;  // depth-1 types first
  std::vector<ColumnSummary> columns;

  std::string ToString() const;
};

// Builds the summary. Type membership is decided per row by evaluating
// each type's derivation specification against the answer's columns
// (base-name attribute matching); types whose derivation attribute is
// not part of the answer are skipped. Zero-count types are omitted.
AnswerSummary SummarizeAnswer(const Relation& answers,
                              const DataDictionary& dictionary);

}  // namespace iqs

#endif  // IQS_CORE_SUMMARIZER_H_
