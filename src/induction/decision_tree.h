#ifndef IQS_INDUCTION_DECISION_TREE_H_
#define IQS_INDUCTION_DECISION_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/relation.h"
#include "rules/rule.h"

namespace iqs {

// An ID3-style decision-tree learner (paper §3.2, citing Quinlan): "this
// approach recursively determines a set of descriptors that classify each
// example and selects the best descriptor from a set of examples based on
// ... theoretical information content. The set of examples is then
// partitioned into subsets according to the values of the descriptor...
// recursively applied until each subset contains only positive examples."
//
// Numeric/date/string descriptors split on a binary threshold
// (value <= t vs value > t, t chosen to maximize information gain);
// when `categorical_splits` is enabled, low-cardinality string
// descriptors instead split n-way on equality.
//
// Paths from the root to pure leaves convert to conjunctive If-then rules
// compatible with the rest of the rule system.
class DecisionTree {
 public:
  struct Config {
    int max_depth = 16;
    // Do not split nodes smaller than this.
    size_t min_samples_split = 2;
    // Strings with at most this many distinct values split n-way.
    size_t categorical_splits = 12;
  };

  // Learns a tree predicting `target` from `features` over `relation`.
  // Rows with a null target are ignored; null feature values route to the
  // majority branch.
  static Result<DecisionTree> Train(const Relation& relation,
                                    const std::string& target,
                                    const std::vector<std::string>& features,
                                    const Config& config);

  // Predicted target value for `tuple` (which must conform to the
  // training relation's schema).
  Result<Value> Classify(const Tuple& tuple) const;

  // Fraction of rows of `relation` classified correctly.
  Result<double> Accuracy(const Relation& relation) const;

  // Converts every path to a pure (or majority) leaf into a rule
  // `if <feature conjunction> then target = v`, with `support` set to the
  // number of training rows in the leaf. Conjoined conditions over the
  // same feature are merged into a single interval clause.
  std::vector<Rule> ExtractRules() const;

  size_t node_count() const;
  int depth() const;

  std::string ToString() const;

 private:
  struct Node {
    // Leaf payload.
    bool is_leaf = false;
    Value prediction;
    size_t samples = 0;
    // Split payload.
    size_t feature = 0;             // column index
    bool categorical = false;
    Value threshold;                // numeric/ordered split: v <= threshold
    std::vector<Value> categories;  // categorical: one child per category
    std::vector<std::unique_ptr<Node>> children;  // 2 for threshold splits
    size_t majority_child = 0;      // route for nulls / unseen categories
  };

  DecisionTree() = default;

  const Node* Descend(const Tuple& tuple) const;
  void CollectRules(const Node& node, std::vector<Clause> path,
                    std::vector<Rule>* out) const;

  std::unique_ptr<Node> root_;
  Schema schema_;
  std::string target_;
  size_t target_index_ = 0;
  std::vector<size_t> feature_indices_;
};

}  // namespace iqs

#endif  // IQS_INDUCTION_DECISION_TREE_H_
