#include "induction/rule_induction.h"

#include <map>
#include <set>

#include "exec/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/algebra.h"

namespace iqs {

Result<std::vector<Rule>> InduceScheme(const Relation& relation,
                                       const std::string& x_attr,
                                       const std::string& y_attr,
                                       const InductionConfig& config) {
  InductionStats stats;
  return InduceSchemeWithStats(relation, x_attr, y_attr, config, &stats);
}

Result<std::vector<Rule>> InduceSchemeWithStats(const Relation& relation,
                                                const std::string& x_attr,
                                                const std::string& y_attr,
                                                const InductionConfig& config,
                                                InductionStats* stats) {
  IQS_SPAN("ils.induce_scheme");
  IQS_COUNTER_INC("ils.schemes_considered");
  *stats = InductionStats();
  IQS_ASSIGN_OR_RETURN(size_t xi, relation.schema().IndexOf(x_attr));
  IQS_ASSIGN_OR_RETURN(size_t yi, relation.schema().IndexOf(y_attr));

  // Step 1: distinct (X, Y) pairs. Nulls do not participate in rules.
  // Step 2 needs per-X grouping, so collect Y values per X directly; the
  // map's value ordering gives us the sorted enumeration of X. The scan
  // partitions into per-chunk maps merged by set union — commutative over
  // ordered containers, so the result is partition-independent.
  const std::vector<Tuple>& all_rows = relation.rows();
  using PairMap = std::map<Value, std::set<Value>>;
  PairMap ys_of_x = exec::ParallelReduce<PairMap>(
      "exec.induce.pairs", all_rows.size(), 512, {},
      [&all_rows, xi, yi](size_t begin, size_t end) {
        PairMap local;
        for (size_t i = begin; i < end; ++i) {
          const Value& x = all_rows[i].at(xi);
          const Value& y = all_rows[i].at(yi);
          if (x.is_null() || y.is_null()) continue;
          local[x].insert(y);
        }
        return local;
      },
      [](PairMap* acc, PairMap&& part) {
        for (auto& [x, ys] : part) {
          (*acc)[x].merge(ys);
        }
      });
  for (const auto& [x, ys] : ys_of_x) {
    stats->distinct_pairs += ys.size();
  }

  // Step 2: an X value with multiple Y values is inconsistent.
  auto is_consistent = [](const std::set<Value>& ys) { return ys.size() == 1; };
  for (const auto& [x, ys] : ys_of_x) {
    if (!is_consistent(ys)) ++stats->inconsistent_values;
  }

  // Step 3: runs of consecutive X values with the same Y. Under
  // kDatabaseDomain, an inconsistent X value breaks the current run;
  // under kRemainingDomain it is skipped.
  struct Run {
    Value x_lo;
    Value x_hi;
    Value y;
  };
  std::vector<Run> runs;
  bool in_run = false;
  Run current;
  auto close_run = [&] {
    if (in_run) runs.push_back(current);
    in_run = false;
  };
  for (const auto& [x, ys] : ys_of_x) {
    if (!is_consistent(ys)) {
      if (config.run_policy == RunPolicy::kDatabaseDomain) close_run();
      continue;
    }
    const Value& y = *ys.begin();
    if (in_run && current.y == y) {
      current.x_hi = x;
    } else {
      close_run();
      current = Run{x, x, y};
      in_run = true;
    }
  }
  close_run();
  stats->runs = runs.size();

  // Step 4: count support = instances satisfying LHS /\ RHS, in one pass
  // over the relation with a binary search over the (sorted, disjoint)
  // runs. (Under kDatabaseDomain the LHS alone implies the RHS for every
  // instance with a non-null Y; under kRemainingDomain counting the
  // conjunction keeps support honest.)
  // Per-partition support counters summed per run index: integer adds,
  // so the totals are partition-independent.
  std::vector<int64_t> support = exec::ParallelReduce<std::vector<int64_t>>(
      "exec.induce.support", all_rows.size(), 512,
      std::vector<int64_t>(runs.size(), 0),
      [&all_rows, &runs, xi, yi](size_t begin, size_t end) {
        std::vector<int64_t> local(runs.size(), 0);
        for (size_t i = begin; i < end; ++i) {
          const Value& x = all_rows[i].at(xi);
          const Value& y = all_rows[i].at(yi);
          if (x.is_null() || y.is_null()) continue;
          // Last run with x_lo <= x.
          size_t lo = 0, hi = runs.size();
          while (lo < hi) {
            size_t mid = lo + (hi - lo) / 2;
            if (runs[mid].x_lo <= x) {
              lo = mid + 1;
            } else {
              hi = mid;
            }
          }
          if (lo == 0) continue;
          const Run& run = runs[lo - 1];
          if (x <= run.x_hi && y == run.y) local[lo - 1] += 1;
        }
        return local;
      },
      [](std::vector<int64_t>* acc, std::vector<int64_t>&& part) {
        for (size_t i = 0; i < part.size(); ++i) (*acc)[i] += part[i];
      });

  // Family completeness: a consequent value y is covered completely iff
  // no X value mapping to y was inconsistent and none of y's runs gets
  // pruned. Only complete families support the converse implication used
  // by semantic query optimization.
  std::set<Value> incomplete_y;
  for (const auto& [x, ys] : ys_of_x) {
    if (!is_consistent(ys)) {
      for (const Value& y : ys) incomplete_y.insert(y);
    }
  }
  for (size_t i = 0; i < runs.size(); ++i) {
    if (config.prune && support[i] < config.min_support) {
      incomplete_y.insert(runs[i].y);
    }
  }

  std::vector<Rule> out;
  out.reserve(runs.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    if (config.prune && support[i] < config.min_support) {
      ++stats->pruned;
      continue;
    }
    Rule rule;
    rule.scheme = x_attr + "->" + y_attr;
    rule.source_relation = relation.name();
    if (run.x_lo == run.x_hi) {
      rule.lhs.push_back(Clause::Equals(x_attr, run.x_lo));
    } else {
      IQS_ASSIGN_OR_RETURN(Clause clause,
                           Clause::Range(x_attr, run.x_lo, run.x_hi));
      rule.lhs.push_back(std::move(clause));
    }
    rule.rhs.clause = Clause::Equals(y_attr, run.y);
    rule.support = support[i];
    rule.family_complete = incomplete_y.count(run.y) == 0;
    out.push_back(std::move(rule));
  }
  IQS_COUNTER_ADD("ils.pairs_considered", stats->distinct_pairs);
  IQS_COUNTER_ADD("ils.inconsistent_values", stats->inconsistent_values);
  IQS_COUNTER_ADD("ils.rules_induced", out.size());
  IQS_COUNTER_ADD("ils.rules_pruned_nc", stats->pruned);
  IQS_SPAN_ANNOTATE("pairs", static_cast<int64_t>(stats->distinct_pairs));
  IQS_SPAN_ANNOTATE("rules", static_cast<int64_t>(out.size()));
  IQS_SPAN_ANNOTATE("pruned", static_cast<int64_t>(stats->pruned));
  return out;
}

}  // namespace iqs
