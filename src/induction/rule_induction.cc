#include "induction/rule_induction.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>

#include "exec/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/algebra.h"

namespace iqs {
namespace {

// A maximal run of consecutive consistent X values sharing one Y value
// (step 3 of §5.2.1). Shared between the row and columnar paths.
struct Run {
  Value x_lo;
  Value x_hi;
  Value y;
};

// Steps 3b/4: family completeness, pruning, and rule emission — shared
// verbatim between the two implementations so their outputs cannot
// drift. `inconsistent_ys` holds the Y values of inconsistent X groups
// in ascending (X, Y) insertion order.
Result<std::vector<Rule>> EmitRules(const std::vector<Run>& runs,
                                    const std::vector<int64_t>& support,
                                    const std::set<Value>& inconsistent_ys,
                                    const std::string& relation_name,
                                    const std::string& x_attr,
                                    const std::string& y_attr,
                                    const InductionConfig& config,
                                    InductionStats* stats) {
  // Family completeness: a consequent value y is covered completely iff
  // no X value mapping to y was inconsistent and none of y's runs gets
  // pruned. Only complete families support the converse implication used
  // by semantic query optimization.
  std::set<Value> incomplete_y = inconsistent_ys;
  for (size_t i = 0; i < runs.size(); ++i) {
    if (config.prune && support[i] < config.min_support) {
      incomplete_y.insert(runs[i].y);
    }
  }

  std::vector<Rule> out;
  out.reserve(runs.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    if (config.prune && support[i] < config.min_support) {
      ++stats->pruned;
      continue;
    }
    Rule rule;
    rule.scheme = x_attr + "->" + y_attr;
    rule.source_relation = relation_name;
    if (run.x_lo == run.x_hi) {
      rule.lhs.push_back(Clause::Equals(x_attr, run.x_lo));
    } else {
      IQS_ASSIGN_OR_RETURN(Clause clause,
                           Clause::Range(x_attr, run.x_lo, run.x_hi));
      rule.lhs.push_back(std::move(clause));
    }
    rule.rhs.clause = Clause::Equals(y_attr, run.y);
    rule.support = support[i];
    rule.family_complete = incomplete_y.count(run.y) == 0;
    out.push_back(std::move(rule));
  }
  return out;
}

void EmitInductionMetrics(const InductionStats& stats, size_t rules) {
  IQS_COUNTER_ADD("ils.pairs_considered", stats.distinct_pairs);
  IQS_COUNTER_ADD("ils.inconsistent_values", stats.inconsistent_values);
  IQS_COUNTER_ADD("ils.rules_induced", rules);
  IQS_COUNTER_ADD("ils.rules_pruned_nc", stats.pruned);
  IQS_SPAN_ANNOTATE("pairs", static_cast<int64_t>(stats.distinct_pairs));
  IQS_SPAN_ANNOTATE("rules", static_cast<int64_t>(rules));
  IQS_SPAN_ANNOTATE("pruned", static_cast<int64_t>(stats.pruned));
}

// --- Columnar hot path -------------------------------------------------
//
// The ids fed to the sort are pre-filtered to rows where both attributes
// are non-null, so the comparators skip the null checks Column::CompareRows
// performs and read the typed arrays directly. Each struct mirrors the
// matching case of CompareRows exactly (same three-way result on the same
// raw representation), which is what keeps the sorted order — and thus
// every downstream artifact — byte-identical to the generic comparator.

struct IntColCmp {
  const int64_t* v;
  int operator()(uint32_t a, uint32_t b) const {
    return v[a] < v[b] ? -1 : (v[a] > v[b] ? 1 : 0);
  }
};

struct RealColCmp {
  const double* v;
  int operator()(uint32_t a, uint32_t b) const {
    double d = v[a] - v[b];
    return d < 0 ? -1 : (d > 0 ? 1 : 0);
  }
};

struct StringColCmp {
  const std::string* v;
  int operator()(uint32_t a, uint32_t b) const {
    int c = v[a].compare(v[b]);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
};

struct DateColCmp {
  const Date* v;
  int operator()(uint32_t a, uint32_t b) const {
    int64_t x = v[a].ToEpochDays(), y = v[b].ToEpochDays();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
};

struct GenericColCmp {
  const Column* col;
  int operator()(uint32_t a, uint32_t b) const {
    return col->CompareRows(a, b);
  }
};

// Sorted ids plus the (X class, Y subclass) segmentation over them, in
// flat arrays: group g's Y subclasses are y_rep/y_count indexes
// [group_begin[g], group_begin[g + 1]). Representatives stay row ids —
// Values are materialized only for the few runs and inconsistent Ys
// that survive to rule emission.
struct Segmented {
  std::vector<uint32_t> ids;
  std::vector<uint32_t> group_x;      // lowest row id of each X class
  std::vector<uint32_t> group_begin;  // offsets into y_rep, +1 sentinel
  std::vector<uint32_t> y_rep;        // first sorted id per Y subclass
  std::vector<uint32_t> y_count;      // instances per Y subclass
};

template <typename XCmp, typename YCmp>
void SortAndSegment(Segmented* seg, XCmp xcmp, YCmp ycmp) {
  std::vector<uint32_t>& ids = seg->ids;
  std::sort(ids.begin(), ids.end(), [&](uint32_t a, uint32_t b) {
    int c = xcmp(a, b);
    if (c != 0) return c < 0;
    c = ycmp(a, b);
    if (c != 0) return c < 0;
    return a < b;
  });
  seg->group_begin.push_back(0);
  for (size_t i = 0; i < ids.size();) {
    size_t gend = i + 1;
    while (gend < ids.size() && xcmp(ids[i], ids[gend]) == 0) ++gend;
    // The group representative is the lowest row index across the whole
    // X class (the first sorted id only minimizes (Y, row)); each Y
    // representative is its subsegment's first id, already the lowest
    // row index there.
    uint32_t min_row = ids[i];
    for (size_t k = i + 1; k < gend; ++k) min_row = std::min(min_row, ids[k]);
    seg->group_x.push_back(min_row);
    for (size_t j = i; j < gend;) {
      size_t send = j + 1;
      while (send < gend && ycmp(ids[j], ids[send]) == 0) ++send;
      seg->y_rep.push_back(ids[j]);
      seg->y_count.push_back(static_cast<uint32_t>(send - j));
      j = send;
    }
    seg->group_begin.push_back(static_cast<uint32_t>(seg->y_rep.size()));
    i = gend;
  }
}

// X-major packed variant for 8-byte-keyed X columns (kInt/kReal/kDate):
// sorting contiguous (key, id) pairs beats the indirect comparator sort
// on cache misses alone, and X ties are resolved afterwards by tiny
// per-segment (Y, row) sorts — the overall order is still (X, Y, row).
// Key equality is "neither sorts before the other", which for doubles
// matches Sign3(a - b) == 0 (so -0.0 and 0.0 stay one X class).
template <typename K, typename KeyFn, typename YCmp>
void SortAndSegmentPacked(Segmented* seg, KeyFn xkey, YCmp ycmp) {
  std::vector<std::pair<K, uint32_t>> keyed;
  keyed.reserve(seg->ids.size());
  for (uint32_t id : seg->ids) keyed.emplace_back(xkey(id), id);
  std::sort(keyed.begin(), keyed.end(),
            [](const std::pair<K, uint32_t>& a, const std::pair<K, uint32_t>& b) {
              return a.first < b.first;
            });
  const size_t n = keyed.size();
  seg->group_begin.push_back(0);
  for (size_t i = 0; i < n;) {
    size_t gend = i + 1;
    while (gend < n && !(keyed[i].first < keyed[gend].first)) ++gend;
    std::sort(keyed.begin() + static_cast<ptrdiff_t>(i),
              keyed.begin() + static_cast<ptrdiff_t>(gend),
              [&](const std::pair<K, uint32_t>& a,
                  const std::pair<K, uint32_t>& b) {
                int c = ycmp(a.second, b.second);
                if (c != 0) return c < 0;
                return a.second < b.second;
              });
    uint32_t min_row = keyed[i].second;
    for (size_t k = i + 1; k < gend; ++k) {
      min_row = std::min(min_row, keyed[k].second);
    }
    seg->group_x.push_back(min_row);
    for (size_t j = i; j < gend;) {
      size_t send = j + 1;
      while (send < gend && ycmp(keyed[j].second, keyed[send].second) == 0) {
        ++send;
      }
      seg->y_rep.push_back(keyed[j].second);
      seg->y_count.push_back(static_cast<uint32_t>(send - j));
      j = send;
    }
    seg->group_begin.push_back(static_cast<uint32_t>(seg->y_rep.size()));
    i = gend;
  }
  for (size_t i = 0; i < n; ++i) seg->ids[i] = keyed[i].second;
}

template <typename K, typename KeyFn>
void SortAndSegmentPackedWithY(Segmented* seg, KeyFn xkey, const Column& ycol) {
  switch (ycol.storage()) {
    case Column::Storage::kInt:
      return SortAndSegmentPacked<K>(seg, xkey, IntColCmp{ycol.ints().data()});
    case Column::Storage::kReal:
      return SortAndSegmentPacked<K>(seg, xkey,
                                     RealColCmp{ycol.reals().data()});
    case Column::Storage::kString:
      return SortAndSegmentPacked<K>(seg, xkey,
                                     StringColCmp{ycol.strings().data()});
    case Column::Storage::kDate:
      return SortAndSegmentPacked<K>(seg, xkey,
                                     DateColCmp{ycol.dates().data()});
    case Column::Storage::kMixed:
      return SortAndSegmentPacked<K>(seg, xkey, GenericColCmp{&ycol});
  }
}

template <typename XCmp>
void SortAndSegmentWithY(Segmented* seg, XCmp xcmp, const Column& ycol) {
  switch (ycol.storage()) {
    case Column::Storage::kInt:
      return SortAndSegment(seg, xcmp, IntColCmp{ycol.ints().data()});
    case Column::Storage::kReal:
      return SortAndSegment(seg, xcmp, RealColCmp{ycol.reals().data()});
    case Column::Storage::kString:
      return SortAndSegment(seg, xcmp, StringColCmp{ycol.strings().data()});
    case Column::Storage::kDate:
      return SortAndSegment(seg, xcmp, DateColCmp{ycol.dates().data()});
    case Column::Storage::kMixed:
      return SortAndSegment(seg, xcmp, GenericColCmp{&ycol});
  }
}

void SortAndSegmentTyped(Segmented* seg, const Column& xcol,
                         const Column& ycol) {
  switch (xcol.storage()) {
    case Column::Storage::kInt:
      return SortAndSegmentPackedWithY<int64_t>(
          seg, [p = xcol.ints().data()](uint32_t id) { return p[id]; }, ycol);
    case Column::Storage::kReal:
      return SortAndSegmentPackedWithY<double>(
          seg, [p = xcol.reals().data()](uint32_t id) { return p[id]; }, ycol);
    case Column::Storage::kString:
      return SortAndSegmentWithY(seg, StringColCmp{xcol.strings().data()},
                                 ycol);
    case Column::Storage::kDate:
      return SortAndSegmentPackedWithY<int64_t>(
          seg,
          [p = xcol.dates().data()](uint32_t id) { return p[id].ToEpochDays(); },
          ycol);
    case Column::Storage::kMixed:
      return SortAndSegmentWithY(seg, GenericColCmp{&xcol}, ycol);
  }
}

// The row path's run-extension and support checks use Value equality
// (`current.y == y`), which for a typed column coincides with
// CompareRows == 0 (same type, and -0.0 == 0.0 both ways). Only kMixed
// columns can hold Compare-equal-but-distinct spellings (Int 5 vs
// Real 5.0), so only they pay for Value materialization.
bool RowsValueEqual(const Column& col, uint32_t a, uint32_t b) {
  if (col.storage() != Column::Storage::kMixed) {
    return col.CompareRows(a, b) == 0;
  }
  return col.Get(a) == col.Get(b);
}

}  // namespace

Result<std::vector<Rule>> InduceScheme(const Relation& relation,
                                       const std::string& x_attr,
                                       const std::string& y_attr,
                                       const InductionConfig& config) {
  InductionStats stats;
  return InduceSchemeWithStats(relation, x_attr, y_attr, config, &stats);
}

Result<std::vector<Rule>> InduceSchemeWithStats(const Relation& relation,
                                                const std::string& x_attr,
                                                const std::string& y_attr,
                                                const InductionConfig& config,
                                                InductionStats* stats) {
  if (ColumnarEnabled()) {
    IQS_ASSIGN_OR_RETURN(ColumnarRelation transposed,
                         ColumnarRelation::Transpose(relation));
    return InduceSchemeColumnarWithStats(transposed, x_attr, y_attr, config,
                                         stats);
  }
  return InduceSchemeRowsWithStats(relation, x_attr, y_attr, config, stats);
}

Result<std::vector<Rule>> InduceSchemeRowsWithStats(
    const Relation& relation, const std::string& x_attr,
    const std::string& y_attr, const InductionConfig& config,
    InductionStats* stats) {
  IQS_SPAN("ils.induce_scheme");
  IQS_COUNTER_INC("ils.schemes_considered");
  *stats = InductionStats();
  IQS_ASSIGN_OR_RETURN(size_t xi, relation.schema().IndexOf(x_attr));
  IQS_ASSIGN_OR_RETURN(size_t yi, relation.schema().IndexOf(y_attr));

  // Step 1: distinct (X, Y) pairs. Nulls do not participate in rules.
  // Step 2 needs per-X grouping, so collect Y values per X directly; the
  // map's value ordering gives us the sorted enumeration of X. The scan
  // partitions into per-chunk maps merged by set union — commutative over
  // ordered containers, so the result is partition-independent.
  const std::vector<Tuple>& all_rows = relation.rows();
  using PairMap = std::map<Value, std::set<Value>>;
  Result<PairMap> paired = exec::ParallelReduce<Result<PairMap>>(
      "exec.induce.pairs", all_rows.size(), 512, PairMap{},
      [&all_rows, xi, yi](size_t begin, size_t end) -> Result<PairMap> {
        PairMap local;
        for (size_t i = begin; i < end; ++i) {
          if (((i - begin) & 1023) == 0) IQS_GOV_CHECKPOINT("ils.segment");
          const Value& x = all_rows[i].at(xi);
          const Value& y = all_rows[i].at(yi);
          if (x.is_null() || y.is_null()) continue;
          local[x].insert(y);
        }
        return local;
      },
      [](Result<PairMap>* acc, Result<PairMap>&& part) {
        if (!acc->ok()) return;
        if (!part.ok()) {
          *acc = std::move(part);
          return;
        }
        for (auto& [x, ys] : *part) {
          (**acc)[x].merge(ys);
        }
      });
  IQS_RETURN_IF_ERROR(paired.status());
  PairMap& ys_of_x = *paired;
  for (const auto& [x, ys] : ys_of_x) {
    stats->distinct_pairs += ys.size();
  }

  // Step 2: an X value with multiple Y values is inconsistent.
  auto is_consistent = [](const std::set<Value>& ys) { return ys.size() == 1; };
  for (const auto& [x, ys] : ys_of_x) {
    if (!is_consistent(ys)) ++stats->inconsistent_values;
  }

  // Step 3: runs of consecutive X values with the same Y. Under
  // kDatabaseDomain, an inconsistent X value breaks the current run;
  // under kRemainingDomain it is skipped.
  std::vector<Run> runs;
  bool in_run = false;
  Run current;
  auto close_run = [&] {
    if (in_run) runs.push_back(current);
    in_run = false;
  };
  for (const auto& [x, ys] : ys_of_x) {
    if (!is_consistent(ys)) {
      if (config.run_policy == RunPolicy::kDatabaseDomain) close_run();
      continue;
    }
    const Value& y = *ys.begin();
    if (in_run && current.y == y) {
      current.x_hi = x;
    } else {
      close_run();
      current = Run{x, x, y};
      in_run = true;
    }
  }
  close_run();
  stats->runs = runs.size();

  // Step 4: count support = instances satisfying LHS /\ RHS, in one pass
  // over the relation with a binary search over the (sorted, disjoint)
  // runs. (Under kDatabaseDomain the LHS alone implies the RHS for every
  // instance with a non-null Y; under kRemainingDomain counting the
  // conjunction keeps support honest.)
  // Per-partition support counters summed per run index: integer adds,
  // so the totals are partition-independent.
  using SupportVec = std::vector<int64_t>;
  Result<SupportVec> supported = exec::ParallelReduce<Result<SupportVec>>(
      "exec.induce.support", all_rows.size(), 512,
      SupportVec(runs.size(), 0),
      [&all_rows, &runs, xi, yi](size_t begin,
                                 size_t end) -> Result<SupportVec> {
        SupportVec local(runs.size(), 0);
        for (size_t i = begin; i < end; ++i) {
          if (((i - begin) & 1023) == 0) IQS_GOV_CHECKPOINT("ils.segment");
          const Value& x = all_rows[i].at(xi);
          const Value& y = all_rows[i].at(yi);
          if (x.is_null() || y.is_null()) continue;
          // Last run with x_lo <= x.
          size_t lo = 0, hi = runs.size();
          while (lo < hi) {
            size_t mid = lo + (hi - lo) / 2;
            if (runs[mid].x_lo <= x) {
              lo = mid + 1;
            } else {
              hi = mid;
            }
          }
          if (lo == 0) continue;
          const Run& run = runs[lo - 1];
          if (x <= run.x_hi && y == run.y) local[lo - 1] += 1;
        }
        return local;
      },
      [](Result<SupportVec>* acc, Result<SupportVec>&& part) {
        if (!acc->ok()) return;
        if (!part.ok()) {
          *acc = std::move(part);
          return;
        }
        for (size_t i = 0; i < part->size(); ++i) (**acc)[i] += (*part)[i];
      });
  IQS_RETURN_IF_ERROR(supported.status());
  SupportVec& support = *supported;

  std::set<Value> inconsistent_ys;
  for (const auto& [x, ys] : ys_of_x) {
    if (!is_consistent(ys)) {
      for (const Value& y : ys) inconsistent_ys.insert(y);
    }
  }
  IQS_ASSIGN_OR_RETURN(
      std::vector<Rule> out,
      EmitRules(runs, support, inconsistent_ys, relation.name(), x_attr,
                y_attr, config, stats));
  EmitInductionMetrics(*stats, out.size());
  return out;
}

Result<std::vector<Rule>> InduceSchemeColumnarWithStats(
    const ColumnarRelation& relation, const std::string& x_attr,
    const std::string& y_attr, const InductionConfig& config,
    InductionStats* stats) {
  IQS_SPAN("ils.induce_scheme");
  IQS_COUNTER_INC("ils.schemes_considered");
  *stats = InductionStats();
  IQS_ASSIGN_OR_RETURN(size_t xi, relation.schema().IndexOf(x_attr));
  IQS_ASSIGN_OR_RETURN(size_t yi, relation.schema().IndexOf(y_attr));
  const Column& xcol = relation.column(xi);
  const Column& ycol = relation.column(yi);

  // Step 1 (columnar): ids of the rows where both attributes are
  // non-null, sorted by (X, Y, row index) with typed in-place compares —
  // no per-row Value materialization, no tree-node allocation. The
  // row-index tie-break makes the first id of every equal-class the
  // lowest row index in it, which is the spelling the row path's
  // first-insertion map/set keeps for Compare-equal-but-distinct values
  // (Int 5 vs Real 5.0, -0.0 vs 0.0). Steps 1+2 share one segmentation
  // pass; representatives stay row ids until rule emission.
  Segmented seg;
  seg.ids.reserve(relation.row_count());
  for (size_t r = 0; r < relation.row_count(); ++r) {
    if ((r & 8191) == 0) IQS_GOV_CHECKPOINT("ils.segment");
    if (xcol.IsNull(r) || ycol.IsNull(r)) continue;
    seg.ids.push_back(static_cast<uint32_t>(r));
  }
  // The sort itself is uninterruptible; bound it with checkpoints on
  // either side so a cancelled scheme never starts it.
  IQS_GOV_CHECKPOINT("ils.segment");
  SortAndSegmentTyped(&seg, xcol, ycol);
  IQS_GOV_CHECKPOINT("ils.segment");
  const size_t n_groups = seg.group_x.size();
  auto group_width = [&seg](size_t g) {
    return seg.group_begin[g + 1] - seg.group_begin[g];
  };
  for (size_t g = 0; g < n_groups; ++g) {
    stats->distinct_pairs += group_width(g);
    if (group_width(g) != 1) ++stats->inconsistent_values;
  }

  // Step 3: identical run construction to the row path, driven by the
  // group enumeration (ascending X), still in id space.
  struct RunRef {
    uint32_t x_lo, x_hi, y;
  };
  std::vector<RunRef> run_refs;
  bool in_run = false;
  RunRef current{0, 0, 0};
  auto close_run = [&] {
    if (in_run) run_refs.push_back(current);
    in_run = false;
  };
  for (size_t g = 0; g < n_groups; ++g) {
    if (group_width(g) != 1) {
      if (config.run_policy == RunPolicy::kDatabaseDomain) close_run();
      continue;
    }
    const uint32_t y = seg.y_rep[seg.group_begin[g]];
    if (in_run && RowsValueEqual(ycol, current.y, y)) {
      current.x_hi = seg.group_x[g];
    } else {
      close_run();
      current = RunRef{seg.group_x[g], seg.group_x[g], y};
      in_run = true;
    }
  }
  close_run();
  stats->runs = run_refs.size();

  // Step 4: support from the segmented counts instead of a second pass
  // over the rows. A row counts for run R iff x_lo <= X <= x_hi and
  // Y == R.y — runs are disjoint and ascending, so each X group lands in
  // at most one run (found by a monotone pointer, the dual of the row
  // path's binary search) and contributes the sizes of its matching Y
  // subsegments. Inconsistent groups inside a run's span count too,
  // exactly as the row path's per-row check admits them.
  std::vector<int64_t> support(run_refs.size(), 0);
  size_t rp = 0;
  for (size_t g = 0; g < n_groups; ++g) {
    while (rp < run_refs.size() &&
           xcol.CompareRows(run_refs[rp].x_hi, seg.group_x[g]) < 0) {
      ++rp;
    }
    if (rp == run_refs.size()) break;
    if (xcol.CompareRows(seg.group_x[g], run_refs[rp].x_lo) < 0) continue;
    for (uint32_t k = seg.group_begin[g]; k < seg.group_begin[g + 1]; ++k) {
      if (RowsValueEqual(ycol, seg.y_rep[k], run_refs[rp].y)) {
        support[rp] += static_cast<int64_t>(seg.y_count[k]);
      }
    }
  }

  // Materialize Values only for what rule emission consumes: the run
  // endpoints and the Y values of inconsistent groups.
  std::vector<Run> runs;
  runs.reserve(run_refs.size());
  for (const RunRef& r : run_refs) {
    runs.push_back(Run{xcol.Get(r.x_lo), xcol.Get(r.x_hi), ycol.Get(r.y)});
  }
  std::set<Value> inconsistent_ys;
  for (size_t g = 0; g < n_groups; ++g) {
    if (group_width(g) != 1) {
      for (uint32_t k = seg.group_begin[g]; k < seg.group_begin[g + 1]; ++k) {
        inconsistent_ys.insert(ycol.Get(seg.y_rep[k]));
      }
    }
  }
  IQS_ASSIGN_OR_RETURN(
      std::vector<Rule> out,
      EmitRules(runs, support, inconsistent_ys, relation.name(), x_attr,
                y_attr, config, stats));
  EmitInductionMetrics(*stats, out.size());
  return out;
}

}  // namespace iqs
