#include "induction/candidate_generator.h"

#include "common/string_util.h"

namespace iqs {

std::vector<std::string> ClassificationAttributes(
    const KerCatalog& catalog, const std::string& object_type) {
  // The derivation specifications of the whole hierarchy forest are
  // scanned, not just this type's own subtypes: in a normalized schema a
  // subtype of SUBMARINE (conceptually) derives over an attribute stored
  // in CLASS ("SSBN isa SUBMARINE with Type = 'SSBN'", where Type is
  // CLASS.Type), so the classification attribute belongs to CLASS.
  std::vector<std::string> out;
  auto def = catalog.GetObjectType(object_type);
  if (!def.ok()) return out;
  for (const std::string& type_name : catalog.hierarchy().AllTypes()) {
    auto node = catalog.hierarchy().Get(type_name);
    if (!node.ok() || !(*node)->derivation.has_value()) continue;
    std::string attr = (*node)->derivation->BaseAttribute();
    const KerAttribute* owned = (*def)->FindAttribute(attr);
    if (owned == nullptr) continue;
    bool seen = false;
    for (const std::string& existing : out) {
      if (EqualsIgnoreCase(existing, owned->name)) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(owned->name);
  }
  return out;
}

Result<std::vector<SchemeCandidate>> IntraObjectCandidates(
    const KerCatalog& catalog, const std::string& object_type) {
  IQS_ASSIGN_OR_RETURN(const ObjectTypeDef* def,
                       catalog.GetObjectType(object_type));
  std::vector<std::string> targets =
      ClassificationAttributes(catalog, object_type);
  std::vector<SchemeCandidate> out;
  for (const std::string& y : targets) {
    for (const KerAttribute& x : def->attributes) {
      if (EqualsIgnoreCase(x.name, y)) continue;
      out.push_back(SchemeCandidate{x.name, y});
    }
  }
  return out;
}

std::vector<std::string> KeyAttributes(const KerCatalog& catalog,
                                       const std::string& object_type) {
  std::vector<std::string> out;
  auto def = catalog.GetObjectType(object_type);
  if (!def.ok()) return out;
  for (const KerAttribute& a : (*def)->attributes) {
    if (a.is_key) out.push_back(a.name);
  }
  return out;
}

}  // namespace iqs
