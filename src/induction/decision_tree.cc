#include "induction/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace iqs {

namespace {

double Entropy(const std::map<Value, size_t>& counts, size_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const auto& [value, count] : counts) {
    if (count == 0) continue;
    double p = static_cast<double>(count) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

struct SplitChoice {
  double gain = -1.0;
  size_t feature_pos = 0;  // index into feature_indices_
  bool categorical = false;
  Value threshold;
  std::vector<Value> categories;
};

}  // namespace

Result<DecisionTree> DecisionTree::Train(
    const Relation& relation, const std::string& target,
    const std::vector<std::string>& features, const Config& config) {
  DecisionTree tree;
  tree.schema_ = relation.schema();
  tree.target_ = target;
  IQS_ASSIGN_OR_RETURN(tree.target_index_, relation.schema().IndexOf(target));
  for (const std::string& f : features) {
    IQS_ASSIGN_OR_RETURN(size_t idx, relation.schema().IndexOf(f));
    if (idx == tree.target_index_) {
      return Status::InvalidArgument("target '" + target +
                                     "' cannot also be a feature");
    }
    tree.feature_indices_.push_back(idx);
  }
  if (tree.feature_indices_.empty()) {
    return Status::InvalidArgument("at least one feature is required");
  }

  std::vector<const Tuple*> rows;
  rows.reserve(relation.size());
  for (const Tuple& t : relation.rows()) {
    if (!t.at(tree.target_index_).is_null()) rows.push_back(&t);
  }
  if (rows.empty()) {
    return Status::InvalidArgument("no rows with a non-null target");
  }

  // Recursive builder.
  auto build = [&](auto&& self, std::vector<const Tuple*> subset,
                   int depth) -> std::unique_ptr<Node> {
    auto node = std::make_unique<Node>();
    std::map<Value, size_t> counts;
    for (const Tuple* t : subset) counts[t->at(tree.target_index_)] += 1;
    // Majority prediction (ties break to the smaller value, which is
    // deterministic).
    size_t best_count = 0;
    for (const auto& [value, count] : counts) {
      if (count > best_count) {
        best_count = count;
        node->prediction = value;
      }
    }
    node->samples = subset.size();
    bool pure = counts.size() == 1;
    if (pure || depth >= config.max_depth ||
        subset.size() < config.min_samples_split) {
      node->is_leaf = true;
      return node;
    }
    double parent_entropy = Entropy(counts, subset.size());

    SplitChoice best;
    for (size_t fpos = 0; fpos < tree.feature_indices_.size(); ++fpos) {
      size_t fidx = tree.feature_indices_[fpos];
      // Distinct non-null feature values with per-value class counts.
      std::map<Value, std::map<Value, size_t>> per_value;
      size_t non_null = 0;
      for (const Tuple* t : subset) {
        const Value& v = t->at(fidx);
        if (v.is_null()) continue;
        per_value[v][t->at(tree.target_index_)] += 1;
        ++non_null;
      }
      if (per_value.size() < 2) continue;

      bool is_string = per_value.begin()->first.type() == ValueType::kString;
      if (is_string && per_value.size() <= config.categorical_splits) {
        // n-way categorical split.
        double children_entropy = 0.0;
        std::vector<Value> categories;
        for (const auto& [v, cls_counts] : per_value) {
          size_t n = 0;
          for (const auto& [cls, c] : cls_counts) n += c;
          children_entropy += static_cast<double>(n) /
                              static_cast<double>(non_null) *
                              Entropy(cls_counts, n);
          categories.push_back(v);
        }
        double gain = parent_entropy - children_entropy;
        if (gain > best.gain) {
          best = SplitChoice{gain, fpos, true, Value(), std::move(categories)};
        }
        continue;
      }
      // Ordered binary split: threshold at each distinct value but the
      // last; running class counts make this O(values * classes).
      std::map<Value, size_t> left_counts;
      size_t left_n = 0;
      std::map<Value, size_t> right_counts;
      size_t right_n = non_null;
      for (const auto& [v, cls_counts] : per_value) {
        for (const auto& [cls, c] : cls_counts) right_counts[cls] += c;
      }
      size_t seen = 0;
      for (const auto& [v, cls_counts] : per_value) {
        ++seen;
        for (const auto& [cls, c] : cls_counts) {
          left_counts[cls] += c;
          left_n += c;
          right_counts[cls] -= c;
          right_n -= c;
        }
        if (seen == per_value.size()) break;  // no split after last value
        double children_entropy =
            static_cast<double>(left_n) / static_cast<double>(non_null) *
                Entropy(left_counts, left_n) +
            static_cast<double>(right_n) / static_cast<double>(non_null) *
                Entropy(right_counts, right_n);
        double gain = parent_entropy - children_entropy;
        if (gain > best.gain + 1e-12) {
          best = SplitChoice{gain, fpos, false, v, {}};
        }
      }
    }

    if (best.gain <= 1e-9) {
      node->is_leaf = true;
      return node;
    }

    node->feature = tree.feature_indices_[best.feature_pos];
    node->categorical = best.categorical;
    node->threshold = best.threshold;
    node->categories = best.categories;

    // Partition rows; null feature values go to the largest child.
    std::vector<std::vector<const Tuple*>> parts(
        best.categorical ? best.categories.size() : 2);
    std::vector<const Tuple*> null_rows;
    for (const Tuple* t : subset) {
      const Value& v = t->at(node->feature);
      if (v.is_null()) {
        null_rows.push_back(t);
        continue;
      }
      if (best.categorical) {
        size_t which = 0;
        for (size_t k = 0; k < best.categories.size(); ++k) {
          if (best.categories[k] == v) {
            which = k;
            break;
          }
        }
        parts[which].push_back(t);
      } else {
        parts[v.Compare(best.threshold) <= 0 ? 0 : 1].push_back(t);
      }
    }
    size_t majority = 0;
    for (size_t k = 1; k < parts.size(); ++k) {
      if (parts[k].size() > parts[majority].size()) majority = k;
    }
    node->majority_child = majority;
    for (const Tuple* t : null_rows) parts[majority].push_back(t);

    for (auto& part : parts) {
      if (part.empty()) {
        // Degenerate empty branch: leaf predicting the parent majority.
        auto leaf = std::make_unique<Node>();
        leaf->is_leaf = true;
        leaf->prediction = node->prediction;
        leaf->samples = 0;
        node->children.push_back(std::move(leaf));
      } else {
        node->children.push_back(self(self, std::move(part), depth + 1));
      }
    }
    return node;
  };

  tree.root_ = build(build, std::move(rows), 0);
  return tree;
}

const DecisionTree::Node* DecisionTree::Descend(const Tuple& tuple) const {
  const Node* node = root_.get();
  while (node != nullptr && !node->is_leaf) {
    const Value& v = tuple.at(node->feature);
    size_t which = node->majority_child;
    if (!v.is_null()) {
      if (node->categorical) {
        bool found = false;
        for (size_t k = 0; k < node->categories.size(); ++k) {
          if (node->categories[k] == v) {
            which = k;
            found = true;
            break;
          }
        }
        if (!found) which = node->majority_child;
      } else {
        which = v.Compare(node->threshold) <= 0 ? 0 : 1;
      }
    }
    node = node->children[which].get();
  }
  return node;
}

Result<Value> DecisionTree::Classify(const Tuple& tuple) const {
  if (tuple.size() != schema_.size()) {
    return Status::InvalidArgument(
        "tuple arity does not match the training schema");
  }
  const Node* leaf = Descend(tuple);
  if (leaf == nullptr) return Status::Internal("empty decision tree");
  return leaf->prediction;
}

Result<double> DecisionTree::Accuracy(const Relation& relation) const {
  if (!(relation.schema() == schema_)) {
    return Status::InvalidArgument("schema does not match training schema");
  }
  size_t correct = 0;
  size_t total = 0;
  for (const Tuple& t : relation.rows()) {
    const Value& truth = t.at(target_index_);
    if (truth.is_null()) continue;
    IQS_ASSIGN_OR_RETURN(Value predicted, Classify(t));
    ++total;
    if (predicted == truth) ++correct;
  }
  if (total == 0) return Status::InvalidArgument("no labeled rows");
  return static_cast<double>(correct) / static_cast<double>(total);
}

void DecisionTree::CollectRules(const Node& node, std::vector<Clause> path,
                                std::vector<Rule>* out) const {
  if (node.is_leaf) {
    if (node.samples == 0) return;  // degenerate empty branch
    Rule rule;
    rule.scheme = "tree->" + target_;
    rule.lhs = std::move(path);
    rule.rhs.clause = Clause::Equals(target_, node.prediction);
    rule.support = static_cast<int64_t>(node.samples);
    out->push_back(std::move(rule));
    return;
  }
  const std::string& feature_name = schema_.attribute(node.feature).name;
  auto extend = [&](const Clause& clause) {
    std::vector<Clause> next = path;
    // Merge with an existing clause over the same attribute.
    for (Clause& existing : next) {
      if (existing.attribute() == clause.attribute()) {
        existing = Clause(existing.attribute(),
                          existing.interval().Intersection(clause.interval()));
        return next;
      }
    }
    next.push_back(clause);
    return next;
  };
  if (node.categorical) {
    for (size_t k = 0; k < node.children.size(); ++k) {
      CollectRules(*node.children[k],
                   extend(Clause::Equals(feature_name, node.categories[k])),
                   out);
    }
  } else {
    CollectRules(*node.children[0],
                 extend(Clause(feature_name, Interval::AtMost(node.threshold))),
                 out);
    CollectRules(
        *node.children[1],
        extend(Clause(feature_name,
                      Interval::AtLeast(node.threshold, /*open=*/true))),
        out);
  }
}

std::vector<Rule> DecisionTree::ExtractRules() const {
  std::vector<Rule> out;
  if (root_ != nullptr) CollectRules(*root_, {}, &out);
  return out;
}

size_t DecisionTree::node_count() const {
  size_t count = 0;
  auto walk = [&](auto&& self, const Node& n) -> void {
    ++count;
    for (const auto& child : n.children) self(self, *child);
  };
  if (root_ != nullptr) walk(walk, *root_);
  return count;
}

int DecisionTree::depth() const {
  auto walk = [](auto&& self, const Node& n) -> int {
    int best = 0;
    for (const auto& child : n.children) {
      best = std::max(best, 1 + self(self, *child));
    }
    return best;
  };
  return root_ == nullptr ? 0 : walk(walk, *root_);
}

std::string DecisionTree::ToString() const {
  std::string out;
  auto walk = [&](auto&& self, const Node& n, int indent) -> void {
    std::string pad(static_cast<size_t>(indent) * 2, ' ');
    if (n.is_leaf) {
      out += pad + "-> " + target_ + " = " + n.prediction.ToString() + "  (" +
             std::to_string(n.samples) + " samples)\n";
      return;
    }
    const std::string& f = schema_.attribute(n.feature).name;
    if (n.categorical) {
      for (size_t k = 0; k < n.children.size(); ++k) {
        out += pad + f + " = " + n.categories[k].ToString() + ":\n";
        self(self, *n.children[k], indent + 1);
      }
    } else {
      out += pad + f + " <= " + n.threshold.ToString() + ":\n";
      self(self, *n.children[0], indent + 1);
      out += pad + f + " > " + n.threshold.ToString() + ":\n";
      self(self, *n.children[1], indent + 1);
    }
  };
  if (root_ != nullptr) walk(walk, *root_, 0);
  return out;
}

}  // namespace iqs
