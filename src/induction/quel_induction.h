#ifndef IQS_INDUCTION_QUEL_INDUCTION_H_
#define IQS_INDUCTION_QUEL_INDUCTION_H_

#include <string>
#include <vector>

#include "induction/induction_config.h"
#include "relational/database.h"
#include "rules/rule.h"

namespace iqs {

// The Rule Induction Algorithm driven by the LITERAL QUEL statements of
// paper §5.2.1 — the paper's prototype "is performed in the ILS which
// uses the relational operations":
//
//   step 1:  range of r is <relation>
//            retrieve into S unique (r.Y, r.X) sort by r.Y
//   step 2:  range of s is S
//            retrieve into T unique (s.Y, s.X)
//              where (r.X = s.X and r.Y != s.Y)
//            range of t is T
//            delete s where (s.X = t.X and s.Y = t.Y)
//   step 3/4: run construction and pruning over the surviving S, exactly
//            as in InduceScheme.
//
// Produces the same rules as the native InduceScheme under
// RunPolicy::kDatabaseDomain (tested in quel_induction_test.cc); it
// exists to demonstrate that the in-memory engine really supports the
// paper's execution strategy, and as the reference implementation the
// optimized path is validated against.
//
// `db` is mutated: the temporaries S and T are created (replacing any
// existing relations of those names) and dropped again on success.
Result<std::vector<Rule>> InduceSchemeViaQuel(Database* db,
                                              const std::string& relation,
                                              const std::string& x_attr,
                                              const std::string& y_attr,
                                              const InductionConfig& config);

}  // namespace iqs

#endif  // IQS_INDUCTION_QUEL_INDUCTION_H_
