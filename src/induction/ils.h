#ifndef IQS_INDUCTION_ILS_H_
#define IQS_INDUCTION_ILS_H_

#include <string>
#include <vector>

#include "induction/induction_config.h"
#include "ker/catalog.h"
#include "relational/database.h"
#include "rules/rule.h"

namespace iqs {

// The Model-based Inductive Learning Subsystem (paper §5.2): induces
// semantic rules by analyzing database schema and contents. Inputs are
// the object instances (relations), the KER schema describing object
// types and hierarchies, and the quality criterion (the support threshold
// Nc in InductionConfig); output is the characterization of classes as a
// RuleSet.
class InductiveLearningSubsystem {
 public:
  // `db` and `catalog` must outlive the subsystem.
  InductiveLearningSubsystem(const Database* db, const KerCatalog* catalog)
      : db_(db), catalog_(catalog) {}

  // Runs schema-guided induction over every object type (intra-object
  // knowledge) and every relationship (inter-object knowledge), in
  // catalog definition order. Rule ids are assigned 1..n in generation
  // order, which reproduces the paper's R1–R17 numbering on the ship
  // test bed.
  Result<RuleSet> InduceAll(const InductionConfig& config) const;

  // Intra-object rules for one object type: schemes from
  // IntraObjectCandidates over the type's relation.
  Result<std::vector<Rule>> InduceIntraObject(
      const std::string& object_type, const InductionConfig& config) const;

  // Inter-object rules for one relationship: the joined view's schemes
  // pair keys+classification attributes of one role with classification
  // attributes of the other roles (keys and classification attributes
  // only — free-text attributes like ship names produce coincidental
  // correlations the schema gives no reason to trust).
  Result<std::vector<Rule>> InduceInterObject(
      const std::string& relationship, const InductionConfig& config) const;

  // Attaches isa readings to induced rules: when a rule's RHS clause
  // matches a subtype's derivation specification, records "var isa T"
  // (e.g. "Type = SSBN" -> "x isa SSBN"). Applied by the Induce*
  // entry points; exposed for rules loaded from rule relations.
  void AttachIsaReadings(std::vector<Rule>* rules) const;

 private:
  const Database* db_;
  const KerCatalog* catalog_;
};

}  // namespace iqs

#endif  // IQS_INDUCTION_ILS_H_
