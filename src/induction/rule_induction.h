#ifndef IQS_INDUCTION_RULE_INDUCTION_H_
#define IQS_INDUCTION_RULE_INDUCTION_H_

#include <string>
#include <vector>

#include "induction/induction_config.h"
#include "relational/column_store.h"
#include "relational/relation.h"
#include "rules/rule.h"

namespace iqs {

// The Rule Induction Algorithm of paper §5.2.1, inducing the rule scheme
// X --> Y over one relation (which may be a joined view for inter-object
// schemes):
//
//   1. Retrieve the distinct (X, Y) value pairs, sorted
//      (`retrieve into S unique (r.Y, r.X) sort by r.Y` in QUEL).
//   2. Remove inconsistent pairs: X values mapped to more than one Y.
//   3. Construct rules: for each maximal run of consecutive X values with
//      the same Y value y, emit `if x1 <= X <= x2 then Y = y` (reducing to
//      `if X = x then Y = y` for single-value runs). Consecutiveness is
//      governed by config.run_policy.
//   4. Prune rules whose support (number of relation instances satisfying
//      the rule) is below config.min_support.
//
// `x_attr`/`y_attr` name columns of `relation`; the produced clauses use
// those names verbatim (role-qualified names like "x.Class" pass through).
// Rules are returned in ascending X order with scheme "X->Y" and
// source_relation = relation.name(); ids are left 0 for the caller's
// RuleSet to assign.
Result<std::vector<Rule>> InduceScheme(const Relation& relation,
                                       const std::string& x_attr,
                                       const std::string& y_attr,
                                       const InductionConfig& config);

// Diagnostic counters for one InduceScheme run, used by the ablation
// benches.
struct InductionStats {
  size_t distinct_pairs = 0;       // |S| after step 1
  size_t inconsistent_values = 0;  // distinct X values removed in step 2
  size_t runs = 0;                 // rules before pruning
  size_t pruned = 0;               // rules dropped in step 4
};

// Dispatches to the columnar implementation when ColumnarEnabled()
// (transposing `relation` on the fly), else to the row reference.
Result<std::vector<Rule>> InduceSchemeWithStats(const Relation& relation,
                                                const std::string& x_attr,
                                                const std::string& y_attr,
                                                const InductionConfig& config,
                                                InductionStats* stats);

// The row-at-a-time reference implementation — always available so the
// differential suite (and the scaling bench) can pit the two paths
// against each other regardless of the process-wide toggle.
Result<std::vector<Rule>> InduceSchemeRowsWithStats(
    const Relation& relation, const std::string& x_attr,
    const std::string& y_attr, const InductionConfig& config,
    InductionStats* stats);

// The columnar implementation (DESIGN.md §14) over a prebuilt snapshot:
// filter both columns to non-null rows, sort ids by (X, Y, row index),
// segment into X groups / Y subsegments. The row-index tie-break pins
// every representative value to the lowest-row-index spelling among
// Compare-equal values — exactly the spelling the reference's
// first-insertion map/set semantics keep — so rules, stats, and error
// text are byte-identical to InduceSchemeRowsWithStats.
Result<std::vector<Rule>> InduceSchemeColumnarWithStats(
    const ColumnarRelation& relation, const std::string& x_attr,
    const std::string& y_attr, const InductionConfig& config,
    InductionStats* stats);

}  // namespace iqs

#endif  // IQS_INDUCTION_RULE_INDUCTION_H_
