#ifndef IQS_INDUCTION_CANDIDATE_GENERATOR_H_
#define IQS_INDUCTION_CANDIDATE_GENERATOR_H_

#include <string>
#include <vector>

#include "ker/catalog.h"

namespace iqs {

// Schema-guided candidate selection (paper §3.2): "we propose to use
// machine learning to acquire database characteristics and use the
// database schema to guide the rule induction process". Candidates are
// attribute pairs (X, Y) whose correlation the schema designer declared
// meaningful by building the type hierarchy around Y.

// One candidate rule scheme X --> Y.
struct SchemeCandidate {
  std::string x_attr;
  std::string y_attr;

  friend bool operator==(const SchemeCandidate&,
                         const SchemeCandidate&) = default;
};

// The classification attributes of `object_type`: attributes of the type
// that appear in the derivation specifications of its subtypes (e.g. Type
// for CLASS, whose subtypes SSBN/SSN derive with Type = "...").
std::vector<std::string> ClassificationAttributes(
    const KerCatalog& catalog, const std::string& object_type);

// Intra-object candidates for `object_type`: every classification
// attribute Y paired with every other attribute X of the type, in
// attribute declaration order.
Result<std::vector<SchemeCandidate>> IntraObjectCandidates(
    const KerCatalog& catalog, const std::string& object_type);

// Key attributes of `object_type` (usually one).
std::vector<std::string> KeyAttributes(const KerCatalog& catalog,
                                       const std::string& object_type);

}  // namespace iqs

#endif  // IQS_INDUCTION_CANDIDATE_GENERATOR_H_
