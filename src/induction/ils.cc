#include "induction/ils.h"

#include <chrono>
#include <memory>
#include <optional>

#include "common/string_util.h"
#include "fault/failpoint.h"
#include "exec/parallel.h"
#include "induction/candidate_generator.h"
#include "induction/inter_object.h"
#include "induction/rule_induction.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace iqs {

namespace {

// Deterministic fan-out shared by the induction entry points: runs
// `fn(i)` (one candidate scheme or one object type each) across the pool,
// every slot filled independently, then concatenates the slot results in
// index order — the same rule order and ids the serial loop produced. The
// first error by slot index wins, matching serial early-exit behaviour.
Result<std::vector<Rule>> InduceSlots(
    const char* region, size_t n,
    const std::function<Result<std::vector<Rule>>(size_t)>& fn) {
  std::vector<std::optional<Result<std::vector<Rule>>>> slots(n);
  exec::ParallelFor(region, n, 1, [&slots, &fn](size_t i) {
    // One governance checkpoint per slot: a cancelled induction run stops
    // taking new schemes and unwinds via the ordered merge below, which
    // is what lets IqsSystem::Induce keep the previous rule base intact.
    if (Status gov = exec::Checkpoint("ils.induce"); !gov.ok()) {
      slots[i].emplace(std::move(gov));
      return;
    }
    slots[i].emplace(fn(i));
  });
  std::vector<Rule> out;
  for (std::optional<Result<std::vector<Rule>>>& slot : slots) {
    IQS_ASSIGN_OR_RETURN(std::vector<Rule> rules, std::move(*slot));
    for (Rule& r : rules) out.push_back(std::move(r));
  }
  return out;
}

}  // namespace

void InductiveLearningSubsystem::AttachIsaReadings(
    std::vector<Rule>* rules) const {
  for (Rule& rule : *rules) {
    if (rule.rhs.HasIsaReading()) continue;
    auto type_name =
        catalog_->hierarchy().FindByDerivation(rule.rhs.clause);
    if (!type_name.ok()) continue;
    rule.rhs.isa_type = *type_name;
    std::string qualifier = rule.rhs.clause.Qualifier();
    // Role-qualified consequents keep their role variable ("y.SonarType"
    // -> "y isa BQS"); everything else describes the generic instance x.
    rule.rhs.isa_variable =
        (!qualifier.empty() && qualifier.size() <= 2) ? qualifier : "x";
  }
}

Result<std::vector<Rule>> InductiveLearningSubsystem::InduceIntraObject(
    const std::string& object_type, const InductionConfig& config) const {
  IQS_ASSIGN_OR_RETURN(std::vector<SchemeCandidate> candidates,
                       IntraObjectCandidates(*catalog_, object_type));
  if (candidates.empty()) return std::vector<Rule>{};
  IQS_ASSIGN_OR_RETURN(const Relation* relation, db_->Get(object_type));
  // One epoch-cached columnar snapshot (DESIGN.md §14) shared by every
  // candidate scheme of this object type — the transpose is paid once
  // per epoch, not once per (X, Y) pair.
  std::shared_ptr<const ColumnarRelation> snapshot;
  if (ColumnarEnabled()) {
    IQS_ASSIGN_OR_RETURN(snapshot, db_->ColumnarSnapshot(object_type));
  }
  IQS_ASSIGN_OR_RETURN(
      std::vector<Rule> out,
      InduceSlots("exec.induce.intra", candidates.size(),
                  [&](size_t i) -> Result<std::vector<Rule>> {
                    if (snapshot != nullptr) {
                      InductionStats stats;
                      return InduceSchemeColumnarWithStats(
                          *snapshot, candidates[i].x_attr,
                          candidates[i].y_attr, config, &stats);
                    }
                    return InduceScheme(*relation, candidates[i].x_attr,
                                        candidates[i].y_attr, config);
                  }));
  AttachIsaReadings(&out);
  return out;
}

Result<std::vector<Rule>> InductiveLearningSubsystem::InduceInterObject(
    const std::string& relationship, const InductionConfig& config) const {
  IQS_ASSIGN_OR_RETURN(std::vector<RoleBinding> roles,
                       RelationshipRoles(*catalog_, relationship));
  IQS_ASSIGN_OR_RETURN(Relation view,
                       BuildRelationshipView(*db_, *catalog_, relationship));

  // Per-role attribute pools, restricted to columns the view materialized.
  struct RolePool {
    std::vector<std::string> sources;  // keys then classification
    std::vector<std::string> targets;  // classification
  };
  std::vector<RolePool> pools(roles.size());
  auto add_unique = [](std::vector<std::string>* list,
                       const std::string& name) {
    for (const std::string& existing : *list) {
      if (EqualsIgnoreCase(existing, name)) return;
    }
    list->push_back(name);
  };
  for (size_t i = 0; i < roles.size(); ++i) {
    for (const std::string& key :
         RoleKeyAttributes(*catalog_, roles[i].variable, roles[i].type_name)) {
      if (view.schema().Contains(key)) add_unique(&pools[i].sources, key);
    }
    for (const std::string& cls : RoleClassificationAttributes(
             *catalog_, roles[i].variable, roles[i].type_name)) {
      if (!view.schema().Contains(cls)) continue;
      add_unique(&pools[i].sources, cls);
      add_unique(&pools[i].targets, cls);
    }
  }

  // Enumerate the candidate (X, Y) pairs in the serial nesting order,
  // then fan them out across the pool.
  std::vector<std::pair<const std::string*, const std::string*>> pairs;
  for (size_t i = 0; i < roles.size(); ++i) {
    for (const std::string& x : pools[i].sources) {
      for (size_t j = 0; j < roles.size(); ++j) {
        if (j == i) continue;
        for (const std::string& y : pools[j].targets) {
          pairs.emplace_back(&x, &y);
        }
      }
    }
  }
  // The joined view is rebuilt per call (it is not a stored relation, so
  // the Database snapshot cache does not apply); transpose it once here
  // and share the columns across every candidate pair.
  std::optional<ColumnarRelation> view_columns;
  if (ColumnarEnabled()) {
    IQS_ASSIGN_OR_RETURN(ColumnarRelation transposed,
                         ColumnarRelation::Transpose(view));
    view_columns.emplace(std::move(transposed));
  }
  IQS_ASSIGN_OR_RETURN(
      std::vector<Rule> out,
      InduceSlots("exec.induce.inter", pairs.size(),
                  [&](size_t p) -> Result<std::vector<Rule>> {
                    std::vector<Rule> rules;
                    if (view_columns.has_value()) {
                      InductionStats stats;
                      IQS_ASSIGN_OR_RETURN(
                          rules, InduceSchemeColumnarWithStats(
                                     *view_columns, *pairs[p].first,
                                     *pairs[p].second, config, &stats));
                    } else {
                      IQS_ASSIGN_OR_RETURN(
                          rules, InduceScheme(view, *pairs[p].first,
                                              *pairs[p].second, config));
                    }
                    for (Rule& r : rules) r.source_relation = relationship;
                    return rules;
                  }));
  AttachIsaReadings(&out);
  return out;
}

Result<RuleSet> InductiveLearningSubsystem::InduceAll(
    const InductionConfig& config) const {
  IQS_TRACE_SCOPE("ils.induce_all");
  // kKeepPrevious: when this fires, InduceAll fails before any work and
  // IqsSystem::Induce leaves the previously installed rule base in place.
  IQS_FAILPOINT("ils.induce");
  IQS_COUNTER_INC("ils.induce_all.count");
  auto start = std::chrono::steady_clock::now();
  // Fan object types (then relationship types) out across the pool; the
  // ordered merge in InduceSlots keeps rule order — and therefore the ids
  // RuleSet assigns — identical to the serial loop. Scheme fan-out inside
  // each type runs inline on the worker (nested regions do not resubmit).
  RuleSet out;
  std::vector<std::string> intra;
  for (const std::string& name : catalog_->ObjectTypeNames()) {
    if (db_->Contains(name)) intra.push_back(name);
  }
  IQS_ASSIGN_OR_RETURN(
      std::vector<Rule> intra_rules,
      InduceSlots("exec.induce.types", intra.size(),
                  [&](size_t i) { return InduceIntraObject(intra[i], config); }));
  out.AddAll(std::move(intra_rules));
  std::vector<std::string> inter;
  for (const std::string& name : catalog_->RelationshipTypeNames()) {
    if (db_->Contains(name)) inter.push_back(name);
  }
  IQS_ASSIGN_OR_RETURN(
      std::vector<Rule> inter_rules,
      InduceSlots("exec.induce.types", inter.size(),
                  [&](size_t i) { return InduceInterObject(inter[i], config); }));
  out.AddAll(std::move(inter_rules));
  IQS_HISTOGRAM_OBSERVE(
      "ils.induce_all.micros",
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  IQS_GAUGE_SET("ils.rule_base_size", out.size());
  IQS_SPAN_ANNOTATE("rules", static_cast<int64_t>(out.size()));
  return out;
}

}  // namespace iqs
