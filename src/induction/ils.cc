#include "induction/ils.h"

#include <chrono>

#include "common/string_util.h"
#include "induction/candidate_generator.h"
#include "induction/inter_object.h"
#include "induction/rule_induction.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace iqs {

void InductiveLearningSubsystem::AttachIsaReadings(
    std::vector<Rule>* rules) const {
  for (Rule& rule : *rules) {
    if (rule.rhs.HasIsaReading()) continue;
    auto type_name =
        catalog_->hierarchy().FindByDerivation(rule.rhs.clause);
    if (!type_name.ok()) continue;
    rule.rhs.isa_type = *type_name;
    std::string qualifier = rule.rhs.clause.Qualifier();
    // Role-qualified consequents keep their role variable ("y.SonarType"
    // -> "y isa BQS"); everything else describes the generic instance x.
    rule.rhs.isa_variable =
        (!qualifier.empty() && qualifier.size() <= 2) ? qualifier : "x";
  }
}

Result<std::vector<Rule>> InductiveLearningSubsystem::InduceIntraObject(
    const std::string& object_type, const InductionConfig& config) const {
  IQS_ASSIGN_OR_RETURN(std::vector<SchemeCandidate> candidates,
                       IntraObjectCandidates(*catalog_, object_type));
  std::vector<Rule> out;
  if (candidates.empty()) return out;
  IQS_ASSIGN_OR_RETURN(const Relation* relation, db_->Get(object_type));
  for (const SchemeCandidate& candidate : candidates) {
    IQS_ASSIGN_OR_RETURN(
        std::vector<Rule> rules,
        InduceScheme(*relation, candidate.x_attr, candidate.y_attr, config));
    for (Rule& r : rules) out.push_back(std::move(r));
  }
  AttachIsaReadings(&out);
  return out;
}

Result<std::vector<Rule>> InductiveLearningSubsystem::InduceInterObject(
    const std::string& relationship, const InductionConfig& config) const {
  IQS_ASSIGN_OR_RETURN(std::vector<RoleBinding> roles,
                       RelationshipRoles(*catalog_, relationship));
  IQS_ASSIGN_OR_RETURN(Relation view,
                       BuildRelationshipView(*db_, *catalog_, relationship));

  // Per-role attribute pools, restricted to columns the view materialized.
  struct RolePool {
    std::vector<std::string> sources;  // keys then classification
    std::vector<std::string> targets;  // classification
  };
  std::vector<RolePool> pools(roles.size());
  auto add_unique = [](std::vector<std::string>* list,
                       const std::string& name) {
    for (const std::string& existing : *list) {
      if (EqualsIgnoreCase(existing, name)) return;
    }
    list->push_back(name);
  };
  for (size_t i = 0; i < roles.size(); ++i) {
    for (const std::string& key :
         RoleKeyAttributes(*catalog_, roles[i].variable, roles[i].type_name)) {
      if (view.schema().Contains(key)) add_unique(&pools[i].sources, key);
    }
    for (const std::string& cls : RoleClassificationAttributes(
             *catalog_, roles[i].variable, roles[i].type_name)) {
      if (!view.schema().Contains(cls)) continue;
      add_unique(&pools[i].sources, cls);
      add_unique(&pools[i].targets, cls);
    }
  }

  std::vector<Rule> out;
  for (size_t i = 0; i < roles.size(); ++i) {
    for (const std::string& x : pools[i].sources) {
      for (size_t j = 0; j < roles.size(); ++j) {
        if (j == i) continue;
        for (const std::string& y : pools[j].targets) {
          IQS_ASSIGN_OR_RETURN(std::vector<Rule> rules,
                               InduceScheme(view, x, y, config));
          for (Rule& r : rules) {
            r.source_relation = relationship;
            out.push_back(std::move(r));
          }
        }
      }
    }
  }
  AttachIsaReadings(&out);
  return out;
}

Result<RuleSet> InductiveLearningSubsystem::InduceAll(
    const InductionConfig& config) const {
  IQS_TRACE_SCOPE("ils.induce_all");
  IQS_COUNTER_INC("ils.induce_all.count");
  auto start = std::chrono::steady_clock::now();
  RuleSet out;
  for (const std::string& name : catalog_->ObjectTypeNames()) {
    if (!db_->Contains(name)) continue;
    IQS_ASSIGN_OR_RETURN(std::vector<Rule> rules,
                         InduceIntraObject(name, config));
    out.AddAll(std::move(rules));
  }
  for (const std::string& name : catalog_->RelationshipTypeNames()) {
    if (!db_->Contains(name)) continue;
    IQS_ASSIGN_OR_RETURN(std::vector<Rule> rules,
                         InduceInterObject(name, config));
    out.AddAll(std::move(rules));
  }
  IQS_HISTOGRAM_OBSERVE(
      "ils.induce_all.micros",
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  IQS_GAUGE_SET("ils.rule_base_size", out.size());
  IQS_SPAN_ANNOTATE("rules", static_cast<int64_t>(out.size()));
  return out;
}

}  // namespace iqs
