#ifndef IQS_INDUCTION_TREE_INDUCTION_H_
#define IQS_INDUCTION_TREE_INDUCTION_H_

#include <string>
#include <vector>

#include "induction/decision_tree.h"
#include "ker/catalog.h"
#include "relational/database.h"

namespace iqs {

// Conjunctive-rule induction through the ID3 learner: the paper's rule
// representation explicitly allows multi-clause premises ("the LHS
// portion can contain many clauses", §5.2.2) but the interval algorithm
// of §5.2.1 only ever emits one clause. Decision-tree paths provide the
// conjunctive counterpart — one rule per leaf, clauses merged per
// feature — for classes that no single attribute separates (the
// overlapping surface types of Table 1).
//
// For each classification attribute Y of `object_type` (per the
// schema-guided candidate logic), trains a tree predicting Y from every
// other non-key attribute and extracts its path rules. Rules with
// support below `min_support` are dropped; isa readings are attached
// from the hierarchy's derivation specifications; scheme is
// "tree->Y".
Result<std::vector<Rule>> InduceIntraObjectViaTree(
    const Database& db, const KerCatalog& catalog,
    const std::string& object_type, const DecisionTree::Config& tree_config,
    int64_t min_support);

}  // namespace iqs

#endif  // IQS_INDUCTION_TREE_INDUCTION_H_
