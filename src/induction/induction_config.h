#ifndef IQS_INDUCTION_INDUCTION_CONFIG_H_
#define IQS_INDUCTION_INDUCTION_CONFIG_H_

#include <cstdint>

namespace iqs {

// How "consecutive sequence of X values" (paper §5.2.1 step 3) is judged
// when building value runs.
enum class RunPolicy {
  // Consecutiveness is relative to ALL distinct X values occurring in the
  // database projection, including values removed as inconsistent in step
  // 2. An intervening value with a different (or inconsistent) Y breaks
  // the run. This is the sound reading: every instance whose X falls in a
  // rule's range then satisfies the rule. It is what splits the paper's
  // R2/R3 around SSN671 and R14/R15 around class 0204.
  kDatabaseDomain,
  // Consecutiveness is relative to the X values remaining after step 2.
  // Runs may then span removed values, producing broader but potentially
  // unsound rules. Provided for the ablation bench only.
  kRemainingDomain,
};

// Knobs of the rule induction algorithm (paper §5.2.1).
struct InductionConfig {
  // Nc, the pruning threshold of step 4: rules satisfied by fewer than
  // min_support database instances are dropped. The paper's §6 rule set
  // is consistent with Nc = 3 (see EXPERIMENTS.md for the one exception).
  int64_t min_support = 3;

  RunPolicy run_policy = RunPolicy::kDatabaseDomain;

  // Step 4 can be disabled entirely (the paper applies it "when the
  // number of rules generated becomes too large").
  bool prune = true;
};

}  // namespace iqs

#endif  // IQS_INDUCTION_INDUCTION_CONFIG_H_
