#include "induction/quel_induction.h"

#include <map>
#include <set>

#include "quel/quel_session.h"

namespace iqs {

namespace {

// Temporary relation names (the paper calls them S and T; prefixed here
// so user relations are never clobbered).
constexpr char kTempS[] = "IQS_TMP_S";
constexpr char kTempT[] = "IQS_TMP_T";

}  // namespace

Result<std::vector<Rule>> InduceSchemeViaQuel(Database* db,
                                              const std::string& relation,
                                              const std::string& x_attr,
                                              const std::string& y_attr,
                                              const InductionConfig& config) {
  if (config.run_policy != RunPolicy::kDatabaseDomain) {
    return Status::InvalidArgument(
        "the QUEL reference path implements the paper's kDatabaseDomain "
        "run policy only");
  }
  IQS_ASSIGN_OR_RETURN(const Relation* base, db->Get(relation));
  IQS_ASSIGN_OR_RETURN(size_t xi, base->schema().IndexOf(x_attr));
  IQS_ASSIGN_OR_RETURN(size_t yi, base->schema().IndexOf(y_attr));
  if (xi == yi) {
    return Status::InvalidArgument("X and Y must be distinct attributes");
  }

  QuelSession session(db);
  // Step 1: retrieve into S unique (r.Y, r.X) sort by r.Y.
  IQS_RETURN_IF_ERROR(
      session.ExecuteText("range of r is " + relation).status());
  IQS_RETURN_IF_ERROR(
      session
          .ExecuteText("retrieve into " + std::string(kTempS) +
                       " unique (r." + y_attr + ", r." + x_attr +
                       ") sort by r." + y_attr)
          .status());
  // Step 2: T := pairs whose X maps to several Y values; delete them
  // from S.
  IQS_RETURN_IF_ERROR(
      session.ExecuteText("range of s is " + std::string(kTempS)).status());
  IQS_RETURN_IF_ERROR(
      session
          .ExecuteText("retrieve into " + std::string(kTempT) +
                       " unique (s." + y_attr + ", s." + x_attr +
                       ") where (r." + x_attr + " = s." + x_attr +
                       " and r." + y_attr + " != s." + y_attr + ")")
          .status());
  IQS_RETURN_IF_ERROR(
      session.ExecuteText("range of t is " + std::string(kTempT)).status());
  IQS_RETURN_IF_ERROR(session
                          .ExecuteText("delete s where (s." + x_attr +
                                       " = t." + x_attr + " and s." + y_attr +
                                       " = t." + y_attr + ")")
                          .status());

  // Step 3: runs over the database's X domain. Consistent X values (and
  // their single Y) come from the surviving S; inconsistent X values
  // from T; both participate in the domain enumeration, with
  // inconsistent values breaking runs.
  IQS_ASSIGN_OR_RETURN(const Relation* s_rel, db->Get(kTempS));
  IQS_ASSIGN_OR_RETURN(const Relation* t_rel, db->Get(kTempT));
  std::map<Value, Value> y_of_x;  // consistent only
  for (const Tuple& row : s_rel->rows()) {
    const Value& y = row.at(0);
    const Value& x = row.at(1);
    if (x.is_null() || y.is_null()) continue;
    y_of_x[x] = y;
  }
  std::set<Value> inconsistent;
  for (const Tuple& row : t_rel->rows()) {
    const Value& x = row.at(1);
    if (!x.is_null()) inconsistent.insert(x);
  }
  std::map<Value, bool> domain;  // x -> consistent?
  for (const auto& [x, y] : y_of_x) domain[x] = true;
  for (const Value& x : inconsistent) domain[x] = false;

  struct Run {
    Value x_lo;
    Value x_hi;
    Value y;
  };
  std::vector<Run> runs;
  bool in_run = false;
  Run current;
  auto close_run = [&] {
    if (in_run) runs.push_back(current);
    in_run = false;
  };
  for (const auto& [x, consistent] : domain) {
    if (!consistent) {
      close_run();
      continue;
    }
    const Value& y = y_of_x[x];
    if (in_run && current.y == y) {
      current.x_hi = x;
    } else {
      close_run();
      current = Run{x, x, y};
      in_run = true;
    }
  }
  close_run();

  // Step 4: support over the base relation, prune, emit. Family
  // completeness mirrors the native path: y values with an inconsistent
  // X, or with a pruned run, are incomplete.
  std::set<Value> incomplete_y;
  for (const Tuple& row : t_rel->rows()) {
    if (!row.at(0).is_null()) incomplete_y.insert(row.at(0));
  }
  std::vector<int64_t> run_support(runs.size(), 0);
  for (size_t i = 0; i < runs.size(); ++i) {
    for (const Tuple& row : base->rows()) {
      const Value& x = row.at(xi);
      const Value& y = row.at(yi);
      if (x.is_null() || y.is_null()) continue;
      if (x >= runs[i].x_lo && x <= runs[i].x_hi && y == runs[i].y) {
        ++run_support[i];
      }
    }
    if (config.prune && run_support[i] < config.min_support) {
      incomplete_y.insert(runs[i].y);
    }
  }
  std::vector<Rule> out;
  for (size_t run_index = 0; run_index < runs.size(); ++run_index) {
    const Run& run = runs[run_index];
    Rule rule;
    rule.scheme = x_attr + "->" + y_attr;
    rule.source_relation = base->name();
    if (run.x_lo == run.x_hi) {
      rule.lhs.push_back(Clause::Equals(x_attr, run.x_lo));
    } else {
      IQS_ASSIGN_OR_RETURN(Clause clause,
                           Clause::Range(x_attr, run.x_lo, run.x_hi));
      rule.lhs.push_back(std::move(clause));
    }
    rule.rhs.clause = Clause::Equals(y_attr, run.y);
    rule.support = run_support[run_index];
    if (config.prune && rule.support < config.min_support) continue;
    rule.family_complete = incomplete_y.count(run.y) == 0;
    out.push_back(std::move(rule));
  }

  IQS_RETURN_IF_ERROR(db->Drop(kTempS));
  IQS_RETURN_IF_ERROR(db->Drop(kTempT));
  return out;
}

}  // namespace iqs
