#include "induction/inter_object.h"

#include <functional>
#include <map>
#include <set>

#include "common/string_util.h"
#include "induction/candidate_generator.h"

namespace iqs {

namespace {

constexpr int kMaxExtensionDepth = 3;

const char* RoleVariableName(size_t index) {
  static constexpr const char* kNames[] = {"x", "y", "z", "w", "u", "v"};
  return index < std::size(kNames) ? kNames[index] : "r";
}

// Appends `entity`'s attributes (and, recursively, attributes reached via
// object-domain references) to `view`, joining on join_column ==
// entity key. Column names become "<var>.<attr>"; existing names win.
Status JoinEntity(const Database& db, const KerCatalog& catalog,
                  const std::string& var, const std::string& entity_type,
                  const std::string& join_column, int depth, Relation* view) {
  if (depth > kMaxExtensionDepth) return Status::Ok();
  IQS_ASSIGN_OR_RETURN(const ObjectTypeDef* def,
                       catalog.GetObjectType(entity_type));
  IQS_ASSIGN_OR_RETURN(const Relation* entity, db.Get(entity_type));
  std::vector<std::string> keys = KeyAttributes(catalog, entity_type);
  if (keys.empty()) {
    return Status::InvalidArgument("object type '" + entity_type +
                                   "' has no key attribute to join on");
  }
  IQS_ASSIGN_OR_RETURN(size_t key_idx, entity->schema().IndexOf(keys[0]));
  IQS_ASSIGN_OR_RETURN(size_t join_idx, view->schema().IndexOf(join_column));

  // Hash the entity rows by key text (Value has no std::hash).
  std::multimap<std::string, size_t> by_key;
  for (size_t r = 0; r < entity->size(); ++r) {
    const Value& k = entity->row(r).at(key_idx);
    if (!k.is_null()) by_key.emplace(k.ToString(), r);
  }

  // New columns: entity attributes not already present under this var.
  std::vector<size_t> added_src;
  std::vector<AttributeDef> new_attrs = view->schema().attributes();
  std::vector<std::string> added_names;
  for (size_t a = 0; a < entity->schema().size(); ++a) {
    std::string name = var + "." + entity->schema().attribute(a).name;
    if (view->schema().Contains(name)) continue;
    added_src.push_back(a);
    new_attrs.push_back(
        AttributeDef{name, entity->schema().attribute(a).type, false});
    added_names.push_back(name);
  }
  IQS_ASSIGN_OR_RETURN(Schema new_schema, Schema::Create(std::move(new_attrs)));
  Relation joined(view->name(), std::move(new_schema));
  for (const Tuple& row : view->rows()) {
    const Value& j = row.at(join_idx);
    if (j.is_null()) continue;
    auto [begin, end] = by_key.equal_range(j.ToString());
    for (auto it = begin; it != end; ++it) {
      if (entity->row(it->second).at(key_idx) != j) continue;
      Tuple extended = row;
      for (size_t a : added_src) {
        extended.Append(entity->row(it->second).at(a));
      }
      joined.AppendUnchecked(std::move(extended));
    }
  }
  *view = std::move(joined);

  // Recurse through the entity's own object-domain attributes (e.g.
  // SUBMARINE.Class references CLASS).
  for (const KerAttribute& a : def->ObjectDomainAttributes(catalog.domains())) {
    std::string column = var + "." + a.name;
    if (!view->schema().Contains(column)) continue;
    if (!catalog.HasObjectType(a.domain) || !db.Contains(a.domain)) continue;
    if (EqualsIgnoreCase(a.domain, entity_type)) continue;  // self loop
    IQS_RETURN_IF_ERROR(
        JoinEntity(db, catalog, var, a.domain, column, depth + 1, view));
  }
  return Status::Ok();
}

// Collects "<var>.<attr>" names via `collect`, following object-domain
// references like JoinEntity does.
void CollectRoleAttributes(
    const KerCatalog& catalog, const std::string& var,
    const std::string& entity_type, int depth, std::set<std::string>* seen,
    std::vector<std::string>* out,
    const std::function<std::vector<std::string>(const std::string&)>&
        collect) {
  if (depth > kMaxExtensionDepth) return;
  if (!seen->insert(ToLower(entity_type)).second) return;
  for (const std::string& attr : collect(entity_type)) {
    std::string name = var + "." + attr;
    bool duplicate = false;
    for (const std::string& existing : *out) {
      if (EqualsIgnoreCase(existing, name)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) out->push_back(name);
  }
  auto def = catalog.GetObjectType(entity_type);
  if (!def.ok()) return;
  for (const KerAttribute& a :
       (*def)->ObjectDomainAttributes(catalog.domains())) {
    if (!catalog.HasObjectType(a.domain)) continue;
    CollectRoleAttributes(catalog, var, a.domain, depth + 1, seen, out,
                          collect);
  }
}

}  // namespace

Result<std::vector<RoleBinding>> RelationshipRoles(
    const KerCatalog& catalog, const std::string& relationship) {
  IQS_ASSIGN_OR_RETURN(const ObjectTypeDef* def,
                       catalog.GetObjectType(relationship));
  std::vector<KerAttribute> object_attrs =
      def->ObjectDomainAttributes(catalog.domains());
  if (object_attrs.empty()) {
    return Status::InvalidArgument("object type '" + relationship +
                                   "' is not a relationship (no " +
                                   "object-domain attributes)");
  }
  std::vector<RoleBinding> out;
  for (size_t i = 0; i < object_attrs.size(); ++i) {
    out.push_back(RoleBinding{RoleVariableName(i), object_attrs[i].domain});
  }
  return out;
}

Result<Relation> BuildRelationshipView(const Database& db,
                                       const KerCatalog& catalog,
                                       const std::string& relationship) {
  IQS_ASSIGN_OR_RETURN(const ObjectTypeDef* def,
                       catalog.GetObjectType(relationship));
  IQS_ASSIGN_OR_RETURN(const Relation* rel, db.Get(relationship));
  IQS_ASSIGN_OR_RETURN(std::vector<RoleBinding> roles,
                       RelationshipRoles(catalog, relationship));

  // Seed the view with the relationship's own columns, qualified.
  std::vector<AttributeDef> attrs;
  for (size_t i = 0; i < rel->schema().size(); ++i) {
    AttributeDef a = rel->schema().attribute(i);
    a.name = def->name + "." + a.name;
    a.is_key = false;
    attrs.push_back(std::move(a));
  }
  IQS_ASSIGN_OR_RETURN(Schema seed_schema, Schema::Create(std::move(attrs)));
  Relation view(def->name + "-view", std::move(seed_schema));
  for (const Tuple& t : rel->rows()) view.AppendUnchecked(t);

  // Join each role's entity.
  std::vector<KerAttribute> object_attrs =
      def->ObjectDomainAttributes(catalog.domains());
  for (size_t i = 0; i < object_attrs.size(); ++i) {
    std::string join_column = def->name + "." + object_attrs[i].name;
    IQS_RETURN_IF_ERROR(JoinEntity(db, catalog, roles[i].variable,
                                   roles[i].type_name, join_column,
                                   /*depth=*/0, &view));
  }
  return view;
}

std::vector<std::string> RoleClassificationAttributes(
    const KerCatalog& catalog, const std::string& variable,
    const std::string& entity_type) {
  std::vector<std::string> out;
  std::set<std::string> seen;
  CollectRoleAttributes(catalog, variable, entity_type, 0, &seen, &out,
                        [&catalog](const std::string& type) {
                          return ClassificationAttributes(catalog, type);
                        });
  return out;
}

std::vector<std::string> RoleKeyAttributes(const KerCatalog& catalog,
                                           const std::string& variable,
                                           const std::string& entity_type) {
  std::vector<std::string> out;
  std::set<std::string> seen;
  CollectRoleAttributes(catalog, variable, entity_type, 0, &seen, &out,
                        [&catalog](const std::string& type) {
                          return KeyAttributes(catalog, type);
                        });
  return out;
}

}  // namespace iqs
