#ifndef IQS_INDUCTION_INTER_OBJECT_H_
#define IQS_INDUCTION_INTER_OBJECT_H_

#include <string>
#include <vector>

#include "ker/catalog.h"
#include "relational/database.h"

namespace iqs {

// Inter-object knowledge (paper §3.1, §6 rules R12–R17) is induced from
// the view joining a relationship with the entities it connects. For the
// ship test bed, INSTALL(Ship, Sonar) joins SUBMARINE and SONAR; the
// entities' own object-domain attributes are followed transitively
// (SUBMARINE.Class references CLASS, pulling in x.Type), mirroring
// attribute inheritance along the type hierarchy.

// The role variables of a relationship, in attribute order: the first
// object-domain attribute binds x, the second y, then z, w, ...
// (paper §6: "x isa SUBMARINE and y isa SONAR").
Result<std::vector<RoleBinding>> RelationshipRoles(
    const KerCatalog& catalog, const std::string& relationship);

// Builds the joined view. Columns are named:
//   "<relationship>.<attr>" for the relationship's own attributes,
//   "<var>.<attr>" for each role entity's attributes, including
//   attributes reached through object-domain references (depth-limited,
//   first-name-wins on collisions).
// Rows without a matching entity are dropped (inner join).
Result<Relation> BuildRelationshipView(const Database& db,
                                       const KerCatalog& catalog,
                                       const std::string& relationship);

// View-qualified classification / key attribute names for one role,
// including attributes reached through object-domain references:
// RoleClassificationAttributes(catalog, "x", "SUBMARINE") ->
// {"x.Class", "x.Type"}.
std::vector<std::string> RoleClassificationAttributes(
    const KerCatalog& catalog, const std::string& variable,
    const std::string& entity_type);
std::vector<std::string> RoleKeyAttributes(const KerCatalog& catalog,
                                           const std::string& variable,
                                           const std::string& entity_type);

}  // namespace iqs

#endif  // IQS_INDUCTION_INTER_OBJECT_H_
