#include "induction/tree_induction.h"

#include "common/string_util.h"
#include "induction/candidate_generator.h"

namespace iqs {

Result<std::vector<Rule>> InduceIntraObjectViaTree(
    const Database& db, const KerCatalog& catalog,
    const std::string& object_type, const DecisionTree::Config& tree_config,
    int64_t min_support) {
  IQS_ASSIGN_OR_RETURN(const ObjectTypeDef* def,
                       catalog.GetObjectType(object_type));
  IQS_ASSIGN_OR_RETURN(const Relation* relation, db.Get(object_type));
  std::vector<std::string> targets =
      ClassificationAttributes(catalog, object_type);

  std::vector<Rule> out;
  for (const std::string& target : targets) {
    // Features: every non-key attribute other than the target. Keys are
    // unique identifiers — splitting on them memorizes rows instead of
    // characterizing classes.
    std::vector<std::string> features;
    for (const KerAttribute& attr : def->attributes) {
      if (attr.is_key) continue;
      if (EqualsIgnoreCase(attr.name, target)) continue;
      if (!relation->schema().Contains(attr.name)) continue;
      features.push_back(attr.name);
    }
    if (features.empty()) continue;
    auto tree = DecisionTree::Train(*relation, target, features, tree_config);
    if (!tree.ok()) continue;  // e.g. no labeled rows
    for (Rule& rule : tree->ExtractRules()) {
      if (rule.support < min_support) continue;
      rule.source_relation = relation->name();
      // Attach the isa reading like the interval path does.
      auto type_name =
          catalog.hierarchy().FindByDerivation(rule.rhs.clause);
      if (type_name.ok()) {
        rule.rhs.isa_type = *type_name;
        rule.rhs.isa_variable = "x";
      }
      out.push_back(std::move(rule));
    }
  }
  return out;
}

}  // namespace iqs
