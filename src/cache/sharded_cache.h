#ifndef IQS_CACHE_SHARDED_CACHE_H_
#define IQS_CACHE_SHARDED_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace iqs {
namespace cache {

// Lifetime totals of one cache. Counters are relaxed atomics (mirroring
// obs::Counter): exact under quiescence, monotone under concurrency.
struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;

  double hit_ratio() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

// A sharded LRU map from string keys to shared immutable values. Lookups
// and inserts hash the key to one of `shards` independent shards, each a
// doubly-linked recency list plus an index, guarded by its own mutex —
// concurrent readers on different shards never contend, and no lock is
// ever held across user code (values are handed out as shared_ptr, so an
// entry evicted mid-read stays alive for the reader holding it).
//
// Capacity is enforced per shard (total capacity / shard count, at least
// one entry each), so the steady-state size stays within `capacity` of
// the configured total. There are no TTLs anywhere: correctness comes
// from versioned keys (the caller embeds epoch counters in the key, see
// query_cache.h), never from time.
template <typename V>
class ShardedLruCache {
 public:
  explicit ShardedLruCache(size_t capacity = 1024, size_t shard_count = 8)
      : shards_(shard_count == 0 ? 1 : shard_count) {
    set_capacity(capacity);
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  // The cached value, or null on miss. A hit refreshes recency.
  std::shared_ptr<const V> Lookup(const std::string& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    shard.entries.splice(shard.entries.begin(), shard.entries, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->second;
  }

  // Inserts (or refreshes) `key`, evicting least-recently-used entries
  // beyond the shard capacity. Null values are ignored.
  void Insert(const std::string& key, std::shared_ptr<const V> value) {
    if (value == nullptr) return;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.entries.splice(shard.entries.begin(), shard.entries, it->second);
      return;
    }
    shard.entries.emplace_front(key, std::move(value));
    shard.index[key] = shard.entries.begin();
    inserts_.fetch_add(1, std::memory_order_relaxed);
    size_t cap = per_shard_capacity_.load(std::memory_order_relaxed);
    while (shard.entries.size() > cap) {
      shard.index.erase(shard.entries.back().first);
      shard.entries.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.entries.clear();
      shard.index.clear();
    }
  }

  // Total capacity across shards; each shard gets an equal slice (>= 1).
  // Shrinking trims each shard on its next insert, not eagerly.
  void set_capacity(size_t capacity) {
    capacity_.store(capacity, std::memory_order_relaxed);
    size_t per_shard = capacity / shards_.size();
    per_shard_capacity_.store(per_shard == 0 ? 1 : per_shard,
                              std::memory_order_relaxed);
  }
  size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

  size_t size() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.entries.size();
    }
    return total;
  }

  CacheCounters counters() const {
    CacheCounters c;
    c.hits = hits_.load(std::memory_order_relaxed);
    c.misses = misses_.load(std::memory_order_relaxed);
    c.inserts = inserts_.load(std::memory_order_relaxed);
    c.evictions = evictions_.load(std::memory_order_relaxed);
    return c;
  }

  void ResetCounters() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    inserts_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used.
    std::list<std::pair<std::string, std::shared_ptr<const V>>> entries;
    std::unordered_map<
        std::string,
        typename std::list<
            std::pair<std::string, std::shared_ptr<const V>>>::iterator>
        index;
  };

  Shard& ShardFor(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  std::vector<Shard> shards_;
  std::atomic<size_t> capacity_{0};
  std::atomic<size_t> per_shard_capacity_{1};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace cache
}  // namespace iqs

#endif  // IQS_CACHE_SHARDED_CACHE_H_
