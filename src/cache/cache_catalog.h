#ifndef IQS_CACHE_CACHE_CATALOG_H_
#define IQS_CACHE_CACHE_CATALOG_H_

#include "cache/query_cache.h"
#include "relational/virtual_relation.h"

namespace iqs {
namespace cache {

// Catalog provider for the versioned query cache (DESIGN.md §11):
// sys.cache has one row per cache (plan, answer) with capacity,
// occupancy, and lifetime hit/miss/insert/eviction counters.
class CacheCatalogProvider : public VirtualRelationProvider {
 public:
  // `cache` must outlive the provider (both owned by IqsSystem).
  explicit CacheCatalogProvider(const QueryCache* cache) : cache_(cache) {}

  std::vector<std::string> RelationNames() const override;
  Result<Relation> Materialize(const std::string& name) const override;

 private:
  const QueryCache* cache_;
};

}  // namespace cache
}  // namespace iqs

#endif  // IQS_CACHE_CACHE_CATALOG_H_
