#include "cache/query_cache.h"

#include <cctype>
#include <cstdio>

namespace iqs {
namespace cache {

std::string NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool in_literal = false;
  bool pending_space = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    char c = sql[i];
    if (in_literal) {
      out.push_back(c);
      if (c == '\'') in_literal = false;
      continue;
    }
    if (c == '\'') {
      if (pending_space && !out.empty()) out.push_back(' ');
      pending_space = false;
      out.push_back(c);
      in_literal = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string AnswerKey(const QueryDescription& description, InferenceMode mode,
                      uint64_t rule_epoch, uint64_t database_epoch) {
  // The description's string form is canonical for the inference inputs:
  // it spells out every condition interval and the object types in FROM
  // order. Epochs version everything else inference reads (rule base,
  // active domains, data).
  return "r" + std::to_string(rule_epoch) + "/d" +
         std::to_string(database_epoch) + "/" + InferenceModeName(mode) +
         "/" + description.ToString();
}

std::string QueryCache::StatsText() const {
  auto line = [](const char* name, const CacheCounters& c, size_t size,
                 size_t capacity) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "  %-7s size=%zu/%zu hits=%llu misses=%llu inserts=%llu "
                  "evictions=%llu hit_ratio=%.2f\n",
                  name, size, capacity,
                  static_cast<unsigned long long>(c.hits),
                  static_cast<unsigned long long>(c.misses),
                  static_cast<unsigned long long>(c.inserts),
                  static_cast<unsigned long long>(c.evictions),
                  c.hit_ratio());
    return std::string(buf);
  };
  std::string out = "cache: ";
  out += enabled() ? "on" : "off";
  out += "\n";
  out += line("plans", plans_.counters(), plans_.size(), plans_.capacity());
  out += line("answers", answers_.counters(), answers_.size(),
              answers_.capacity());
  return out;
}

}  // namespace cache
}  // namespace iqs
