#include "cache/cache_catalog.h"

#include "common/string_util.h"

namespace iqs {
namespace cache {

namespace {

Schema CacheSchema() {
  return Schema({{"cache", ValueType::kString, false},
                 {"enabled", ValueType::kInt, false},
                 {"capacity", ValueType::kInt, false},
                 {"size", ValueType::kInt, false},
                 {"hits", ValueType::kInt, false},
                 {"misses", ValueType::kInt, false},
                 {"inserts", ValueType::kInt, false},
                 {"evictions", ValueType::kInt, false},
                 {"hit_ratio", ValueType::kReal, false}});
}

template <typename CacheT>
Tuple CacheRow(const std::string& which, bool enabled, const CacheT& cache) {
  CacheCounters c = cache.counters();
  return Tuple{Value::String(which),
               Value::Int(enabled ? 1 : 0),
               Value::Int(static_cast<int64_t>(cache.capacity())),
               Value::Int(static_cast<int64_t>(cache.size())),
               Value::Int(static_cast<int64_t>(c.hits)),
               Value::Int(static_cast<int64_t>(c.misses)),
               Value::Int(static_cast<int64_t>(c.inserts)),
               Value::Int(static_cast<int64_t>(c.evictions)),
               Value::Real(c.hit_ratio())};
}

}  // namespace

std::vector<std::string> CacheCatalogProvider::RelationNames() const {
  return {"sys.cache"};
}

Result<Relation> CacheCatalogProvider::Materialize(
    const std::string& name) const {
  if (!EqualsIgnoreCase(name, "sys.cache")) {
    return Status::NotFound("cache catalog does not serve '" + name + "'");
  }
  Relation rel(name, CacheSchema());
  bool enabled = cache_->enabled();
  rel.AppendUnchecked(CacheRow("plan", enabled, cache_->plans()));
  rel.AppendUnchecked(CacheRow("answer", enabled, cache_->answers()));
  return rel;
}

}  // namespace cache
}  // namespace iqs
