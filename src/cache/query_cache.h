#ifndef IQS_CACHE_QUERY_CACHE_H_
#define IQS_CACHE_QUERY_CACHE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/sharded_cache.h"
#include "fault/degrade.h"
#include "inference/engine.h"
#include "sql/sql_ast.h"
#include "sql/sqo_rewrite.h"

namespace iqs {
namespace cache {

// The versioned caching layer in front of the intensional pipeline
// (DESIGN.md §9). Two caches, both invalidated by versioning rather than
// time:
//
//  * the plan cache maps normalized query text to the parsed statement,
//    short-circuiting the SQL parser on repeat traffic;
//  * the intensional-answer cache maps
//        (canonical predicate, inference mode, rule-base epoch, db epoch)
//    to the inferred description, short-circuiting the whole inference
//    match — the expensive half of serving an intensional answer.
//
// Epoch counters are bumped by DataDictionary on every rule-base install
// (re-induction, rule import, active-domain recompute) and by Database on
// every data mutation, so a stale entry's key can never be constructed
// again: entries are never *served* stale, only *aged out* by LRU.

// A memoized inference outcome: the answer plus the degradation events
// the inference stage absorbed while producing it (replayed on a hit so
// a cached answer renders byte-identically to its original).
struct CachedAnswer {
  IntensionalAnswer answer;
  std::vector<fault::DegradationEvent> degradations;
};

// A memoized parse plus (optionally) the semantic rewrite computed from
// it. The statement alone is version-independent — parsing depends only
// on the text. The rewrite is data- and rule-dependent, so it carries the
// sqo mode and the rule/db epochs it was derived under; the processor
// replays it only when all three still match, otherwise it re-optimizes
// and refreshes the entry. A stale rewrite is therefore never replayed —
// the statement half of the hit still saves the parse.
struct CachedPlan {
  SelectStatement statement;
  std::optional<RewritePlan> rewrite;
  SqoMode rewrite_mode = SqoMode::kOff;
  uint64_t rewrite_rule_epoch = 0;
  uint64_t rewrite_db_epoch = 0;
};

// Canonical form of `sql` for plan-cache keying: whitespace runs outside
// single-quoted literals collapse to one space, keywords fold to lower
// case outside literals, leading/trailing space is trimmed. Semantically
// identical spellings ("SELECT  X" / "select x\n") share one plan.
std::string NormalizeSql(const std::string& sql);

// Cache key of an intensional answer: the canonical predicate (the
// query description's string form plus the inference mode) versioned by
// the rule-base and database epochs it was derived under.
std::string AnswerKey(const QueryDescription& description, InferenceMode mode,
                      uint64_t rule_epoch, uint64_t database_epoch);

// One processor's cache pair plus its knobs. Thread-safe: the shards
// carry their own mutexes and the knobs are atomics, so concurrent
// queries, invalidation storms, and shell toggles need no external lock.
class QueryCache {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  QueryCache()
      : plans_(kDefaultCapacity), answers_(kDefaultCapacity) {}

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Applies to both caches.
  void set_capacity(size_t capacity) {
    plans_.set_capacity(capacity);
    answers_.set_capacity(capacity);
  }
  size_t capacity() const { return plans_.capacity(); }

  void Clear() {
    plans_.Clear();
    answers_.Clear();
  }

  ShardedLruCache<CachedPlan>& plans() { return plans_; }
  ShardedLruCache<CachedAnswer>& answers() { return answers_; }
  const ShardedLruCache<CachedPlan>& plans() const { return plans_; }
  const ShardedLruCache<CachedAnswer>& answers() const { return answers_; }

  // Aligned stats block for the shell's `cache` command.
  std::string StatsText() const;

 private:
  std::atomic<bool> enabled_{true};
  ShardedLruCache<CachedPlan> plans_;
  ShardedLruCache<CachedAnswer> answers_;
};

}  // namespace cache
}  // namespace iqs

#endif  // IQS_CACHE_QUERY_CACHE_H_
