#include "baseline/constraint_answerer.h"

#include "rules/subsumption.h"

namespace iqs {

Result<IntensionalAnswer> ConstraintBaseline::Answer(
    const QueryDescription& query, InferenceMode mode) const {
  return engine_.InferWith(query, mode, dictionary_->declared_rules());
}

std::optional<std::string> ConstraintBaseline::DetectEmptyAnswer(
    const QueryDescription& query) const {
  for (const std::string& type_name : query.object_types) {
    auto def = dictionary_->catalog().GetObjectType(type_name);
    if (!def.ok()) continue;
    for (const KerConstraint& constraint : (*def)->constraints) {
      if (constraint.kind != KerConstraint::Kind::kDomainRange) continue;
      if (!constraint.allowed_set.empty()) continue;  // set constraints
      for (const Clause& condition : query.conditions) {
        if (!SameAttribute(constraint.domain_clause.attribute(),
                           condition.attribute(),
                           AttributeMatch::kBaseName)) {
          continue;
        }
        if (!constraint.domain_clause.interval().Intersects(
                condition.interval())) {
          return "condition '" + condition.ToConditionString() +
                 "' contradicts the declared constraint '" +
                 constraint.ToString() + "' of " + (*def)->name +
                 "; the answer is empty";
        }
      }
    }
  }
  return std::nullopt;
}

Result<ConstraintBaseline::Comparison> ConstraintBaseline::Compare(
    const QueryDescription& query, InferenceMode mode) const {
  Comparison out;
  IQS_ASSIGN_OR_RETURN(IntensionalAnswer baseline, Answer(query, mode));
  IQS_ASSIGN_OR_RETURN(
      IntensionalAnswer induced,
      engine_.InferWith(query, mode, *dictionary_->induced_rules_snapshot()));
  auto count_type_facts = [](const IntensionalAnswer& answer) {
    size_t count = 0;
    for (const IntensionalStatement& s : answer.statements()) {
      for (const Fact& f : s.facts) {
        if (f.kind == Fact::Kind::kType) ++count;
      }
    }
    return count;
  };
  out.baseline_statements = baseline.size();
  out.induced_statements = induced.size();
  out.baseline_type_facts = count_type_facts(baseline);
  out.induced_type_facts = count_type_facts(induced);
  return out;
}

}  // namespace iqs
