#ifndef IQS_BASELINE_CONSTRAINT_ANSWERER_H_
#define IQS_BASELINE_CONSTRAINT_ANSWERER_H_

#include <optional>
#include <string>

#include "dictionary/data_dictionary.h"
#include "inference/engine.h"

namespace iqs {

// The comparison baseline for experiment E9 (DESIGN.md): intensional
// answers derived from *declared integrity constraints only*, in the
// style of Motro (VLDB '89), which the paper's conclusion positions
// itself against: "type inference with induced rules is a more effective
// technique to derive intensional answers than using integrity
// constraints".
//
// The baseline sees the with-constraints the schema designer wrote
// (Appendix B) — never the rules the ILS induced from the data — and runs
// the same inference machinery over them, so any difference in answer
// quality is attributable to the knowledge source.
class ConstraintBaseline {
 public:
  // `dictionary` must outlive the baseline.
  explicit ConstraintBaseline(const DataDictionary* dictionary)
      : dictionary_(dictionary), engine_(dictionary) {}

  // Intensional answer from declared constraints alone.
  Result<IntensionalAnswer> Answer(const QueryDescription& query,
                                   InferenceMode mode) const;

  // Constraint-based query nullity test (a hallmark of
  // integrity-constraint answering): when a query condition contradicts a
  // declared domain-range constraint, the answer is provably empty and
  // the violated constraint is returned as the explanation.
  std::optional<std::string> DetectEmptyAnswer(
      const QueryDescription& query) const;

  // Statements derived for `query` by this baseline vs. by the induced
  // rules, for side-by-side comparison benches.
  struct Comparison {
    size_t baseline_statements = 0;
    size_t induced_statements = 0;
    size_t baseline_type_facts = 0;
    size_t induced_type_facts = 0;
  };
  Result<Comparison> Compare(const QueryDescription& query,
                             InferenceMode mode) const;

 private:
  const DataDictionary* dictionary_;
  InferenceEngine engine_;
};

}  // namespace iqs

#endif  // IQS_BASELINE_CONSTRAINT_ANSWERER_H_
