#include "testbed/ship_db.h"

namespace iqs {

namespace {

struct ShipRow {
  const char* id;
  const char* name;
  const char* cls;
};
constexpr ShipRow kShips[] = {
    {"SSBN130", "Typhoon", "1301"},
    {"SSBN623", "Nathaniel Hale", "0103"},
    {"SSBN629", "Daniel Boone", "0103"},
    {"SSBN635", "Sam Rayburn", "0103"},
    {"SSBN644", "Lewis and Clark", "0102"},
    {"SSBN658", "Mariano G. Vallejo", "0102"},
    {"SSBN730", "Rhode Island", "0101"},
    {"SSN582", "Bonefish", "0215"},
    {"SSN584", "Seadragon", "0212"},
    {"SSN592", "Snook", "0209"},
    {"SSN601", "Robert E. Lee", "0208"},
    {"SSN604", "Haddo", "0205"},
    {"SSN610", "Thomas A. Edison", "0207"},
    {"SSN614", "Greenling", "0205"},
    {"SSN648", "Aspro", "0204"},
    {"SSN660", "Sand Lance", "0204"},
    {"SSN666", "Hawkbill", "0204"},
    {"SSN671", "Narwhal", "0203"},
    {"SSN673", "Flying Fish", "0204"},
    {"SSN679", "Silversides", "0204"},
    {"SSN686", "L. Mendel Rivers", "0204"},
    {"SSN692", "Omaha", "0201"},
    {"SSN698", "Bremerton", "0201"},
    {"SSN704", "Baltimore", "0201"},
};

struct ClassRow {
  const char* cls;
  const char* class_name;
  const char* type;
  int displacement;
};
constexpr ClassRow kClasses[] = {
    {"0101", "Ohio", "SSBN", 16600},
    {"0102", "Benjamin Franklin", "SSBN", 7250},
    {"0103", "Lafayette", "SSBN", 7250},
    {"0201", "LosAngeles", "SSN", 6000},
    {"0203", "Narwhal", "SSN", 4450},
    {"0204", "Sturgeon", "SSN", 3640},
    {"0205", "Thresher", "SSN", 3750},
    {"0207", "Ethan Allen", "SSN", 6955},
    {"0208", "George Washington", "SSN", 6019},
    {"0209", "Skipjack", "SSN", 3075},
    {"0212", "Skate", "SSN", 2360},
    {"0215", "Barbel", "SSN", 2145},
    {"1301", "Typhoon", "SSBN", 30000},
};

struct TypeRow {
  const char* type;
  const char* type_name;
};
constexpr TypeRow kTypes[] = {
    {"SSBN", "ballistic nuclear missile sub"},
    {"SSN", "nuclear submarine"},
};

struct SonarRow {
  const char* sonar;
  const char* sonar_type;
};
constexpr SonarRow kSonars[] = {
    {"BQQ-2", "BQQ"},   {"BQQ-5", "BQQ"},   {"BQQ-8", "BQQ"},
    {"BQS-04", "BQS"},  {"BQS-12", "BQS"},  {"BQS-13", "BQS"},
    {"BQS-15", "BQS"},  {"TACTAS", "TACTAS"},
};

struct InstallRow {
  const char* ship;
  const char* sonar;
};
constexpr InstallRow kInstalls[] = {
    {"SSBN130", "BQQ-2"},  {"SSBN623", "BQQ-5"},  {"SSBN629", "BQQ-5"},
    {"SSBN635", "BQS-12"}, {"SSBN644", "BQQ-5"},  {"SSBN658", "BQS-12"},
    {"SSBN730", "BQQ-5"},  {"SSN582", "BQS-04"},  {"SSN584", "BQS-04"},
    {"SSN592", "BQS-04"},  {"SSN601", "BQS-04"},  {"SSN604", "BQQ-2"},
    {"SSN610", "BQQ-5"},   {"SSN614", "BQQ-2"},   {"SSN648", "BQQ-2"},
    {"SSN660", "BQQ-5"},   {"SSN666", "BQQ-8"},   {"SSN671", "BQQ-2"},
    {"SSN673", "BQS-12"},  {"SSN679", "BQS-13"},  {"SSN686", "BQQ-2"},
    {"SSN692", "BQS-15"},  {"SSN698", "TACTAS"},  {"SSN704", "BQQ-5"},
};

// The SSN class codes present in the hierarchy (Appendix C).
constexpr const char* kSsnClasses[] = {"0201", "0203", "0204", "0205",
                                       "0207", "0208", "0209", "0212",
                                       "0215"};
constexpr const char* kSsbnClasses[] = {"0101", "0102", "0103", "1301"};

Result<Clause> RangeClause(const std::string& attr, Value lo, Value hi) {
  return Clause::Range(attr, std::move(lo), std::move(hi));
}

// Appendix-B constraint rule: if lo <= attr <= hi then rhs_attr = value.
Result<KerConstraint> MakeConstraintRule(const std::string& lhs_attr,
                                         Value lo, Value hi,
                                         const std::string& rhs_attr,
                                         Value rhs_value,
                                         std::vector<RoleBinding> roles = {}) {
  KerConstraint c;
  c.kind = KerConstraint::Kind::kRule;
  IQS_ASSIGN_OR_RETURN(Clause lhs,
                       RangeClause(lhs_attr, std::move(lo), std::move(hi)));
  c.rule.lhs.push_back(std::move(lhs));
  c.rule.rhs.clause = Clause::Equals(rhs_attr, std::move(rhs_value));
  c.rule.scheme = "declared";
  c.roles = std::move(roles);
  return c;
}

}  // namespace

Result<std::unique_ptr<KerCatalog>> BuildShipCatalog() {
  auto catalog = std::make_unique<KerCatalog>();

  // Domains (Appendix B.1).
  for (auto [name, parent] :
       {std::pair<const char*, const char*>{"NAME", "CHAR[20]"},
        {"CLASS_NAME", "NAME"},
        {"SHIP_NAME", "NAME"},
        {"TYPE_NAME", "CHAR[30]"},
        {"SONAR_NAME", "CHAR[8]"}}) {
    DomainDef def;
    def.name = name;
    def.parent = parent;
    IQS_RETURN_IF_ERROR(catalog->domains().Define(std::move(def)));
  }

  // Object types (Appendix B.2). SUBMARINE first so induced rules number
  // R1.. in the paper's order; its Class attribute forward-references the
  // CLASS object type.
  {
    ObjectTypeDef def;
    def.name = "SUBMARINE";
    def.attributes = {{"Id", "CHAR[7]", true},
                      {"Name", "SHIP_NAME", false},
                      {"Class", "CLASS", false}};
    IQS_RETURN_IF_ERROR(catalog->DefineObjectType(std::move(def)));
  }
  {
    ObjectTypeDef def;
    def.name = "CLASS";
    def.attributes = {{"Class", "CHAR[4]", true},
                      {"Type", "TYPE", false},
                      {"ClassName", "CLASS_NAME", false},
                      {"Displacement", "integer", false}};
    // Appendix-B declared constraints (the baseline's knowledge):
    //   Displacement in [2000..30000]   (Figure 1)
    //   if "0101" <= Class <= "0103" then Type = "SSBN"
    //   if "0201" <= Class <= "0216" then Type = "SSN"
    //   if 2145 <= x.Displacement <= 6955 then x isa SSN
    //   if 7250 <= x.Displacement <= 30000 then x isa SSBN
    KerConstraint disp_range;
    disp_range.kind = KerConstraint::Kind::kDomainRange;
    IQS_ASSIGN_OR_RETURN(disp_range.domain_clause,
                         RangeClause("Displacement", Value::Int(2000),
                                     Value::Int(30000)));
    def.constraints.push_back(std::move(disp_range));
    IQS_ASSIGN_OR_RETURN(
        KerConstraint c1,
        MakeConstraintRule("Class", Value::String("0101"),
                           Value::String("0103"), "Type",
                           Value::String("SSBN")));
    IQS_ASSIGN_OR_RETURN(
        KerConstraint c2,
        MakeConstraintRule("Class", Value::String("0201"),
                           Value::String("0216"), "Type",
                           Value::String("SSN")));
    IQS_ASSIGN_OR_RETURN(
        KerConstraint c3,
        MakeConstraintRule("Displacement", Value::Int(2145), Value::Int(6955),
                           "Type", Value::String("SSN"),
                           {RoleBinding{"x", "CLASS"}}));
    IQS_ASSIGN_OR_RETURN(
        KerConstraint c4,
        MakeConstraintRule("Displacement", Value::Int(7250),
                           Value::Int(30000), "Type", Value::String("SSBN"),
                           {RoleBinding{"x", "CLASS"}}));
    def.constraints.push_back(std::move(c1));
    def.constraints.push_back(std::move(c2));
    def.constraints.push_back(std::move(c3));
    def.constraints.push_back(std::move(c4));
    IQS_RETURN_IF_ERROR(catalog->DefineObjectType(std::move(def)));
  }
  {
    ObjectTypeDef def;
    def.name = "TYPE";
    def.attributes = {{"Type", "CHAR[4]", true},
                      {"TypeName", "TYPE_NAME", false}};
    IQS_RETURN_IF_ERROR(catalog->DefineObjectType(std::move(def)));
  }
  {
    ObjectTypeDef def;
    def.name = "SONAR";
    def.attributes = {{"Sonar", "CHAR[8]", true},
                      {"SonarType", "SONAR_NAME", false}};
    // Declared structure rules of Appendix B (x isa SONAR):
    IQS_ASSIGN_OR_RETURN(
        KerConstraint c1,
        MakeConstraintRule("Sonar", Value::String("BQQ-2"),
                           Value::String("BQQ-8"), "SonarType",
                           Value::String("BQQ"),
                           {RoleBinding{"x", "SONAR"}}));
    IQS_ASSIGN_OR_RETURN(
        KerConstraint c2,
        MakeConstraintRule("Sonar", Value::String("BQS-04"),
                           Value::String("BQS-15"), "SonarType",
                           Value::String("BQS"),
                           {RoleBinding{"x", "SONAR"}}));
    IQS_ASSIGN_OR_RETURN(
        KerConstraint c3,
        MakeConstraintRule("Sonar", Value::String("TACTAS"),
                           Value::String("TACTAS"), "SonarType",
                           Value::String("TACTAS"),
                           {RoleBinding{"x", "SONAR"}}));
    def.constraints.push_back(std::move(c1));
    def.constraints.push_back(std::move(c2));
    def.constraints.push_back(std::move(c3));
    IQS_RETURN_IF_ERROR(catalog->DefineObjectType(std::move(def)));
  }
  {
    ObjectTypeDef def;
    def.name = "INSTALL";
    def.attributes = {{"Ship", "SUBMARINE", true},
                      {"Sonar", "SONAR", false}};
    // Declared inter-object constraints (x isa SUBMARINE, y isa SONAR).
    std::vector<RoleBinding> roles{RoleBinding{"x", "SUBMARINE"},
                                   RoleBinding{"y", "SONAR"}};
    IQS_ASSIGN_OR_RETURN(
        KerConstraint c1,
        MakeConstraintRule("x.Class", Value::String("0203"),
                           Value::String("0203"), "y.SonarType",
                           Value::String("BQQ"), roles));
    IQS_ASSIGN_OR_RETURN(
        KerConstraint c2,
        MakeConstraintRule("x.Class", Value::String("0205"),
                           Value::String("0207"), "y.SonarType",
                           Value::String("BQQ"), roles));
    IQS_ASSIGN_OR_RETURN(
        KerConstraint c3,
        MakeConstraintRule("x.Class", Value::String("0208"),
                           Value::String("0215"), "y.SonarType",
                           Value::String("BQS"), roles));
    IQS_ASSIGN_OR_RETURN(
        KerConstraint c4,
        MakeConstraintRule("y.Sonar", Value::String("BQS-04"),
                           Value::String("BQS-04"), "x.Type",
                           Value::String("SSN"), roles));
    def.constraints.push_back(std::move(c1));
    def.constraints.push_back(std::move(c2));
    def.constraints.push_back(std::move(c3));
    def.constraints.push_back(std::move(c4));
    IQS_RETURN_IF_ERROR(catalog->DefineObjectType(std::move(def)));
  }

  // Type hierarchy (Figure 2): SUBMARINE > {SSBN, SSN} > classes; SONAR >
  // {BQQ, BQS, TACTAS}.
  IQS_RETURN_IF_ERROR(catalog->DefineContains("SUBMARINE", {"SSBN", "SSN"}));
  IQS_RETURN_IF_ERROR(
      catalog->SetDerivation("SSBN", Clause::Equals("Type",
                                                    Value::String("SSBN"))));
  IQS_RETURN_IF_ERROR(
      catalog->SetDerivation("SSN", Clause::Equals("Type",
                                                   Value::String("SSN"))));
  for (const char* cls : kSsbnClasses) {
    IQS_RETURN_IF_ERROR(catalog->DefineSubtype(
        std::string("C") + cls, "SSBN",
        Clause::Equals("Class", Value::String(cls))));
  }
  for (const char* cls : kSsnClasses) {
    IQS_RETURN_IF_ERROR(catalog->DefineSubtype(
        std::string("C") + cls, "SSN",
        Clause::Equals("Class", Value::String(cls))));
  }
  IQS_RETURN_IF_ERROR(
      catalog->DefineContains("SONAR", {"BQQ", "BQS", "TACTAS"}));
  IQS_RETURN_IF_ERROR(catalog->SetDerivation(
      "BQQ", Clause::Equals("SonarType", Value::String("BQQ"))));
  IQS_RETURN_IF_ERROR(catalog->SetDerivation(
      "BQS", Clause::Equals("SonarType", Value::String("BQS"))));
  IQS_RETURN_IF_ERROR(catalog->SetDerivation(
      "TACTAS", Clause::Equals("SonarType", Value::String("TACTAS"))));
  return catalog;
}

Result<std::unique_ptr<Database>> BuildShipDatabase() {
  auto db = std::make_unique<Database>();
  {
    IQS_ASSIGN_OR_RETURN(
        Relation * rel,
        db->CreateRelation("SUBMARINE",
                           Schema({{"Id", ValueType::kString, true},
                                   {"Name", ValueType::kString, false},
                                   {"Class", ValueType::kString, false}})));
    for (const ShipRow& row : kShips) {
      IQS_RETURN_IF_ERROR(rel->Insert(Tuple({Value::String(row.id),
                                             Value::String(row.name),
                                             Value::String(row.cls)})));
    }
  }
  {
    IQS_ASSIGN_OR_RETURN(
        Relation * rel,
        db->CreateRelation(
            "CLASS", Schema({{"Class", ValueType::kString, true},
                             {"ClassName", ValueType::kString, false},
                             {"Type", ValueType::kString, false},
                             {"Displacement", ValueType::kInt, false}})));
    for (const ClassRow& row : kClasses) {
      IQS_RETURN_IF_ERROR(rel->Insert(Tuple({Value::String(row.cls),
                                             Value::String(row.class_name),
                                             Value::String(row.type),
                                             Value::Int(row.displacement)})));
    }
  }
  {
    IQS_ASSIGN_OR_RETURN(
        Relation * rel,
        db->CreateRelation("TYPE",
                           Schema({{"Type", ValueType::kString, true},
                                   {"TypeName", ValueType::kString, false}})));
    for (const TypeRow& row : kTypes) {
      IQS_RETURN_IF_ERROR(rel->Insert(
          Tuple({Value::String(row.type), Value::String(row.type_name)})));
    }
  }
  {
    IQS_ASSIGN_OR_RETURN(
        Relation * rel,
        db->CreateRelation("SONAR",
                           Schema({{"Sonar", ValueType::kString, true},
                                   {"SonarType", ValueType::kString,
                                    false}})));
    for (const SonarRow& row : kSonars) {
      IQS_RETURN_IF_ERROR(rel->Insert(
          Tuple({Value::String(row.sonar), Value::String(row.sonar_type)})));
    }
  }
  {
    IQS_ASSIGN_OR_RETURN(
        Relation * rel,
        db->CreateRelation("INSTALL",
                           Schema({{"Ship", ValueType::kString, true},
                                   {"Sonar", ValueType::kString, false}})));
    for (const InstallRow& row : kInstalls) {
      IQS_RETURN_IF_ERROR(rel->Insert(
          Tuple({Value::String(row.ship), Value::String(row.sonar)})));
    }
  }
  return db;
}

Result<std::unique_ptr<IqsSystem>> BuildShipSystem() {
  IQS_ASSIGN_OR_RETURN(std::unique_ptr<Database> db, BuildShipDatabase());
  IQS_ASSIGN_OR_RETURN(std::unique_ptr<KerCatalog> catalog,
                       BuildShipCatalog());
  FormatterOptions options;
  options.entity_noun = "Ship";
  options.relationship_phrase = "is equipped with";
  return IqsSystem::Create(std::move(db), std::move(catalog),
                           std::move(options));
}

std::string ShipSchemaDdl() {
  return R"(
/* Appendix B: a KER representation of the naval ship database schema. */

domain: NAME isa CHAR[20]
domain: CLASS_NAME isa NAME
domain: SHIP_NAME isa NAME
domain: TYPE_NAME isa CHAR[30]
domain: SONAR_NAME isa CHAR[8]

object type SUBMARINE
  has key: Id    domain: CHAR[7]
  has:     Name  domain: SHIP_NAME
  has:     Class domain: CLASS

object type CLASS
  has key: Class        domain: CHAR[4]
  has:     Type         domain: TYPE
  has:     ClassName    domain: CLASS_NAME
  has:     Displacement domain: INTEGER
  with
    Displacement in [2000..30000]
    if "0101" <= Class <= "0103" then Type = "SSBN"
    if "0201" <= Class <= "0216" then Type = "SSN"

object type TYPE
  has key: Type     domain: CHAR[4]
  has:     TypeName domain: TYPE_NAME

object type SONAR
  has key: Sonar     domain: CHAR[8]
  has:     SonarType domain: SONAR_NAME

object type INSTALL
  has key: Ship  domain: SUBMARINE
  has:     Sonar domain: SONAR
  with
    /* x isa SUBMARINE and y isa SONAR */
    if x isa SUBMARINE and y isa SONAR and x.Class = "0203" then y.SonarType = "BQQ"
    if x isa SUBMARINE and y isa SONAR and "0205" <= x.Class <= "0207" then y.SonarType = "BQQ"
    if x isa SUBMARINE and y isa SONAR and "0208" <= x.Class <= "0215" then y.SonarType = "BQS"
    if x isa SUBMARINE and y isa SONAR and y.Sonar = "BQS-04" then x.Type = "SSN"

SUBMARINE contains SSBN, SSN
SSBN isa SUBMARINE with Type = "SSBN"
SSN  isa SUBMARINE with Type = "SSN"

C0101 isa SSBN with Class = "0101"
C0102 isa SSBN with Class = "0102"
C0103 isa SSBN with Class = "0103"
C1301 isa SSBN with Class = "1301"
C0201 isa SSN with Class = "0201"
C0203 isa SSN with Class = "0203"
C0204 isa SSN with Class = "0204"
C0205 isa SSN with Class = "0205"
C0207 isa SSN with Class = "0207"
C0208 isa SSN with Class = "0208"
C0209 isa SSN with Class = "0209"
C0212 isa SSN with Class = "0212"
C0215 isa SSN with Class = "0215"

SONAR contains BQQ, BQS, TACTAS
BQQ isa SONAR with SonarType = "BQQ"
BQS isa SONAR with SonarType = "BQS"
TACTAS isa SONAR with SonarType = "TACTAS"
)";
}

std::string Example1Sql() {
  return "SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE "
         "FROM SUBMARINE, CLASS "
         "WHERE SUBMARINE.CLASS = CLASS.CLASS "
         "AND CLASS.DISPLACEMENT > 8000";
}

std::string Example2Sql() {
  return "SELECT SUBMARINE.NAME, SUBMARINE.CLASS "
         "FROM SUBMARINE, CLASS "
         "WHERE SUBMARINE.CLASS = CLASS.CLASS "
         "AND CLASS.TYPE = 'SSBN'";
}

std::string Example3Sql() {
  return "SELECT SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE "
         "FROM SUBMARINE, CLASS, INSTALL "
         "WHERE SUBMARINE.CLASS = CLASS.CLASS "
         "AND SUBMARINE.ID = INSTALL.SHIP "
         "AND INSTALL.SONAR = 'BQS-04'";
}

}  // namespace iqs
