#ifndef IQS_TESTBED_SHIP_DB_H_
#define IQS_TESTBED_SHIP_DB_H_

#include <memory>
#include <string>

#include "core/system.h"
#include "ker/catalog.h"
#include "relational/database.h"

namespace iqs {

// The naval ship test bed of paper §6 / Appendices B and C: the nuclear
// submarine portion of the SDC (UNISYS) generic naval database built from
// Jane's Fighting Ships. Five relations:
//
//   SUBMARINE = (Id, Name, Class)           24 ships
//   CLASS     = (Class, ClassName, Type, Displacement)   13 classes
//   TYPE      = (Type, TypeName)             2 types
//   SONAR     = (Sonar, SonarType)           8 sonars
//   INSTALL   = (Ship, Sonar)               24 installations
//
// and the conceptual type hierarchy of Figure 2:
//
//   SUBMARINE contains SSBN, SSN        (derived over CLASS.Type)
//   SSBN contains C0101 C0102 C0103 C1301   (derived over Class)
//   SSN  contains C0201 ... C0215
//   SONAR contains BQQ, BQS, TACTAS     (derived over SonarType)

// Builds the KER schema: domains, the five object types (with the
// Appendix-B with-constraints, which serve as the declared integrity
// constraints for the baseline), and the type hierarchy with derivation
// specifications.
Result<std::unique_ptr<KerCatalog>> BuildShipCatalog();

// Builds the extensional database with the Appendix C instance.
Result<std::unique_ptr<Database>> BuildShipDatabase();

// The full assembled system (schema + data + dictionary), with the ship
// vocabulary ("Ship ... is equipped with ...") configured for answer
// formatting. Induction has NOT been run yet — call Induce().
Result<std::unique_ptr<IqsSystem>> BuildShipSystem();

// The Appendix-B schema as KER DDL text (parseable by ParseDdl); used to
// exercise the DDL front end against the programmatic construction.
std::string ShipSchemaDdl();

// The paper's three example queries (§6).
std::string Example1Sql();  // submarines with displacement > 8000
std::string Example2Sql();  // names/classes of the SSBN ships
std::string Example3Sql();  // submarines equipped with sonar BQS-04

}  // namespace iqs

#endif  // IQS_TESTBED_SHIP_DB_H_
