#include "testbed/fleet_generator.h"

#include <map>

namespace iqs {

const std::vector<FleetTypeSpec>& Table1Specs() {
  static const std::vector<FleetTypeSpec>* kSpecs =
      new std::vector<FleetTypeSpec>{
          {"Subsurface", "SSBN", "Ballistic Nuclear Missile Submarine", 7250,
           16600},
          {"Subsurface", "SSN", "Nuclear Submarine", 1720, 6000},
          {"Surface", "CVN", "Attack Aircraft Carrier", 75700, 81600},
          {"Surface", "CV", "Aircraft Carrier", 41900, 61000},
          {"Surface", "BB", "Battleship", 45000, 45000},
          {"Surface", "CGN", "Guided Nuclear Missile Crusier", 7600, 14200},
          {"Surface", "CG", "Guided Missile Crusier", 5670, 13700},
          {"Surface", "CA", "Gun Cruiser", 17000, 17000},
          {"Surface", "DDG", "Guided Missile Destroyer", 3370, 8300},
          {"Surface", "DD", "Destroyer", 2425, 7810},
          {"Surface", "FFG", "Guided Missile Frigate", 3605, 3605},
          {"Surface", "FF", "Frigate", 2360, 3011},
      };
  return *kSpecs;
}

uint64_t SplitMix64::Next() {
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

int64_t SplitMix64::NextInRange(int64_t lo, int64_t hi) {
  if (hi <= lo) return lo;
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Next() % span);
}

Result<std::unique_ptr<Database>> GenerateFleet(size_t ships_per_type,
                                                uint64_t seed) {
  auto db = std::make_unique<Database>();
  IQS_ASSIGN_OR_RETURN(
      Relation * ships,
      db->CreateRelation(
          "BATTLESHIP", Schema({{"Id", ValueType::kString, true},
                                {"Name", ValueType::kString, false},
                                {"Type", ValueType::kString, false},
                                {"Category", ValueType::kString, false},
                                {"Displacement", ValueType::kInt, false}})));
  IQS_ASSIGN_OR_RETURN(
      Relation * types,
      db->CreateRelation("SHIPTYPE",
                         Schema({{"Type", ValueType::kString, true},
                                 {"TypeName", ValueType::kString, false},
                                 {"Category", ValueType::kString, false}})));
  SplitMix64 rng(seed);
  int hull = 100;
  for (const FleetTypeSpec& spec : Table1Specs()) {
    IQS_RETURN_IF_ERROR(types->Insert(Tuple({Value::String(spec.type),
                                             Value::String(spec.type_name),
                                             Value::String(spec.category)})));
    for (size_t i = 0; i < ships_per_type; ++i) {
      int64_t displacement;
      if (i == 0) {
        displacement = spec.displacement_lo;  // force the range endpoints
      } else if (i == 1 && ships_per_type > 1) {
        displacement = spec.displacement_hi;
      } else {
        displacement =
            rng.NextInRange(spec.displacement_lo, spec.displacement_hi);
      }
      char id[32];
      std::snprintf(id, sizeof(id), "%s%04d", spec.type, hull);
      char name[32];
      std::snprintf(name, sizeof(name), "Hull %d", hull);
      ++hull;
      IQS_RETURN_IF_ERROR(
          ships->Insert(Tuple({Value::String(id), Value::String(name),
                               Value::String(spec.type),
                               Value::String(spec.category),
                               Value::Int(displacement)})));
    }
  }
  return db;
}

Result<std::unique_ptr<KerCatalog>> BuildFleetCatalog() {
  auto catalog = std::make_unique<KerCatalog>();
  {
    ObjectTypeDef def;
    def.name = "BATTLESHIP";
    def.attributes = {{"Id", "CHAR[12]", true},
                      {"Name", "CHAR[20]", false},
                      {"Type", "CHAR[4]", false},
                      {"Category", "CHAR[12]", false},
                      {"Displacement", "integer", false}};
    IQS_RETURN_IF_ERROR(catalog->DefineObjectType(std::move(def)));
  }
  {
    ObjectTypeDef def;
    def.name = "SHIPTYPE";
    def.attributes = {{"Type", "CHAR[4]", true},
                      {"TypeName", "CHAR[40]", false},
                      {"Category", "CHAR[12]", false}};
    IQS_RETURN_IF_ERROR(catalog->DefineObjectType(std::move(def)));
  }
  IQS_RETURN_IF_ERROR(
      catalog->DefineContains("BATTLESHIP", {"SUBSURFACE", "SURFACE"}));
  IQS_RETURN_IF_ERROR(catalog->SetDerivation(
      "SUBSURFACE", Clause::Equals("Category", Value::String("Subsurface"))));
  IQS_RETURN_IF_ERROR(catalog->SetDerivation(
      "SURFACE", Clause::Equals("Category", Value::String("Surface"))));
  for (const FleetTypeSpec& spec : Table1Specs()) {
    std::string parent =
        std::string(spec.category) == "Subsurface" ? "SUBSURFACE" : "SURFACE";
    IQS_RETURN_IF_ERROR(catalog->DefineSubtype(
        std::string("T_") + spec.type, parent,
        Clause::Equals("Type", Value::String(spec.type))));
  }
  return catalog;
}

Result<std::vector<TypeCharacteristics>> InduceCharacteristics(
    const Database& db) {
  IQS_ASSIGN_OR_RETURN(const Relation* ships, db.Get("BATTLESHIP"));
  IQS_ASSIGN_OR_RETURN(size_t type_idx, ships->schema().IndexOf("Type"));
  IQS_ASSIGN_OR_RETURN(size_t disp_idx,
                       ships->schema().IndexOf("Displacement"));
  std::map<std::string, TypeCharacteristics> by_type;
  std::vector<std::string> order;
  for (const Tuple& t : ships->rows()) {
    const std::string& type = t.at(type_idx).AsString();
    int64_t displacement = t.at(disp_idx).AsInt();
    auto it = by_type.find(type);
    if (it == by_type.end()) {
      order.push_back(type);
      by_type[type] =
          TypeCharacteristics{type, displacement, displacement};
    } else {
      it->second.displacement_lo =
          std::min(it->second.displacement_lo, displacement);
      it->second.displacement_hi =
          std::max(it->second.displacement_hi, displacement);
    }
  }
  std::vector<TypeCharacteristics> out;
  out.reserve(order.size());
  for (const std::string& type : order) out.push_back(by_type[type]);
  return out;
}

}  // namespace iqs
