#include "testbed/employee_db.h"

namespace iqs {

namespace {

struct EmployeeRow {
  const char* id;
  const char* name;
  int age;
  const char* position;
  int salary;
};

// Salary bands: SECRETARY 30000-44000, ENGINEER 60000-89000,
// MANAGER 95000-140000. Ages are assigned so that, sorted by age, no
// two adjacent employees share a position — age runs never reach the
// support threshold and Age schemes prune away entirely.
constexpr EmployeeRow kEmployees[] = {
    {"E001", "Ada Moore", 21, "ENGINEER", 72000},
    {"E002", "Ben Ortiz", 22, "MANAGER", 120000},
    {"E003", "Cara Diaz", 23, "SECRETARY", 38000},
    {"E004", "Dan Engel", 24, "ENGINEER", 84000},
    {"E005", "Eve Faber", 25, "SECRETARY", 31000},
    {"E006", "Fred Gold", 26, "MANAGER", 140000},
    {"E007", "Gina Hall", 27, "ENGINEER", 60000},
    {"E008", "Hugo Iyer", 28, "MANAGER", 95000},
    {"E009", "Iris Jang", 29, "SECRETARY", 30000},
    {"E010", "Jack Kent", 30, "ENGINEER", 89000},
    {"E011", "Kim Lopez", 31, "SECRETARY", 44000},
    {"E012", "Leo Marsh", 32, "ENGINEER", 78000},
    {"E013", "Mia North", 33, "MANAGER", 132000},
    {"E014", "Ned Owens", 34, "ENGINEER", 66000},
    {"E015", "Opal Park", 35, "SECRETARY", 36000},
    {"E016", "Pete Quan", 36, "MANAGER", 110000},
    {"E017", "Rita Sole", 37, "ENGINEER", 64000},
    {"E018", "Sam Trent", 38, "MANAGER", 128000},
};

struct DepartmentRow {
  const char* dept;
  const char* dept_name;
  const char* division;
};
constexpr DepartmentRow kDepartments[] = {
    {"D10", "Compilers", "R&D"},
    {"D20", "Databases", "R&D"},
    {"D30", "Payroll", "Operations"},
    {"D40", "Facilities", "Operations"},
};

struct WorksInRow {
  const char* emp;
  const char* dept;
};
constexpr WorksInRow kWorksIn[] = {
    {"E001", "D10"}, {"E002", "D10"}, {"E003", "D30"}, {"E004", "D20"},
    {"E005", "D40"}, {"E006", "D20"}, {"E007", "D10"}, {"E008", "D30"},
    {"E009", "D30"}, {"E010", "D20"}, {"E011", "D40"}, {"E012", "D10"},
    {"E013", "D20"}, {"E014", "D20"}, {"E015", "D30"}, {"E016", "D40"},
    {"E017", "D10"}, {"E018", "D20"},
};

}  // namespace

Result<std::unique_ptr<Database>> BuildEmployeeDatabase() {
  auto db = std::make_unique<Database>();
  IQS_ASSIGN_OR_RETURN(
      Relation * employees,
      db->CreateRelation("EMPLOYEE",
                         Schema({{"EmpId", ValueType::kString, true},
                                 {"Name", ValueType::kString, false},
                                 {"Age", ValueType::kInt, false},
                                 {"Position", ValueType::kString, false},
                                 {"Salary", ValueType::kInt, false}})));
  for (const EmployeeRow& row : kEmployees) {
    IQS_RETURN_IF_ERROR(employees->Insert(
        Tuple({Value::String(row.id), Value::String(row.name),
               Value::Int(row.age), Value::String(row.position),
               Value::Int(row.salary)})));
  }
  IQS_ASSIGN_OR_RETURN(
      Relation * departments,
      db->CreateRelation("DEPARTMENT",
                         Schema({{"Dept", ValueType::kString, true},
                                 {"DeptName", ValueType::kString, false},
                                 {"Division", ValueType::kString, false}})));
  for (const DepartmentRow& row : kDepartments) {
    IQS_RETURN_IF_ERROR(departments->Insert(
        Tuple({Value::String(row.dept), Value::String(row.dept_name),
               Value::String(row.division)})));
  }
  IQS_ASSIGN_OR_RETURN(
      Relation * works_in,
      db->CreateRelation("WORKS_IN",
                         Schema({{"Emp", ValueType::kString, true},
                                 {"Dept", ValueType::kString, false}})));
  for (const WorksInRow& row : kWorksIn) {
    IQS_RETURN_IF_ERROR(works_in->Insert(
        Tuple({Value::String(row.emp), Value::String(row.dept)})));
  }
  return db;
}

Result<std::unique_ptr<KerCatalog>> BuildEmployeeCatalog() {
  auto catalog = std::make_unique<KerCatalog>();
  {
    ObjectTypeDef def;
    def.name = "EMPLOYEE";
    def.attributes = {{"EmpId", "CHAR[6]", true},
                      {"Name", "CHAR[20]", false},
                      {"Age", "integer", false},
                      {"Position", "CHAR[12]", false},
                      {"Salary", "integer", false}};
    // Declared constraint: Age in [18..65] (the paper's §5.2.2 example
    // clause "(18, Employee.Age, 65)").
    KerConstraint age_range;
    age_range.kind = KerConstraint::Kind::kDomainRange;
    IQS_ASSIGN_OR_RETURN(
        age_range.domain_clause,
        Clause::Range("Age", Value::Int(18), Value::Int(65)));
    def.constraints.push_back(std::move(age_range));
    IQS_RETURN_IF_ERROR(catalog->DefineObjectType(std::move(def)));
  }
  {
    ObjectTypeDef def;
    def.name = "DEPARTMENT";
    def.attributes = {{"Dept", "CHAR[4]", true},
                      {"DeptName", "CHAR[20]", false},
                      {"Division", "CHAR[12]", false}};
    IQS_RETURN_IF_ERROR(catalog->DefineObjectType(std::move(def)));
  }
  {
    ObjectTypeDef def;
    def.name = "WORKS_IN";
    def.attributes = {{"Emp", "EMPLOYEE", true},
                      {"Dept", "DEPARTMENT", false}};
    IQS_RETURN_IF_ERROR(catalog->DefineObjectType(std::move(def)));
  }
  IQS_RETURN_IF_ERROR(catalog->DefineContains(
      "EMPLOYEE", {"ENGINEER", "MANAGER", "SECRETARY"}));
  IQS_RETURN_IF_ERROR(catalog->SetDerivation(
      "ENGINEER", Clause::Equals("Position", Value::String("ENGINEER"))));
  IQS_RETURN_IF_ERROR(catalog->SetDerivation(
      "MANAGER", Clause::Equals("Position", Value::String("MANAGER"))));
  IQS_RETURN_IF_ERROR(catalog->SetDerivation(
      "SECRETARY", Clause::Equals("Position", Value::String("SECRETARY"))));
  // Department hierarchy: divisions partition departments, giving the
  // WORKS_IN relationship a classification attribute on its second role
  // (inter-object schemes like x.Position -> y.Division).
  IQS_RETURN_IF_ERROR(
      catalog->DefineContains("DEPARTMENT", {"RND_DEPT", "OPS_DEPT"}));
  IQS_RETURN_IF_ERROR(catalog->SetDerivation(
      "RND_DEPT", Clause::Equals("Division", Value::String("R&D"))));
  IQS_RETURN_IF_ERROR(catalog->SetDerivation(
      "OPS_DEPT", Clause::Equals("Division", Value::String("Operations"))));
  return catalog;
}

Result<std::unique_ptr<IqsSystem>> BuildEmployeeSystem() {
  IQS_ASSIGN_OR_RETURN(std::unique_ptr<Database> db, BuildEmployeeDatabase());
  IQS_ASSIGN_OR_RETURN(std::unique_ptr<KerCatalog> catalog,
                       BuildEmployeeCatalog());
  FormatterOptions options;
  options.entity_noun = "Employee";
  options.relationship_phrase = "works in";
  return IqsSystem::Create(std::move(db), std::move(catalog),
                           std::move(options));
}

}  // namespace iqs
