#ifndef IQS_TESTBED_EMPLOYEE_DB_H_
#define IQS_TESTBED_EMPLOYEE_DB_H_

#include <memory>

#include "core/system.h"

namespace iqs {

// A second, non-naval domain exercising the public API end to end (the
// paper's §5.2.2 uses Employee.Age / Employee.Position in its rule
// examples). Schema:
//
//   EMPLOYEE = (EmpId, Name, Age, Position, Salary)
//   DEPARTMENT = (Dept, DeptName, Division)
//   WORKS_IN = (Emp, Dept)
//
// Hierarchy: EMPLOYEE contains ENGINEER, MANAGER, SECRETARY (derived over
// Position). Salaries are banded by position (non-overlapping), so the
// ILS induces Salary -> Position range rules; ages are uncorrelated, so
// Age schemes prune away — a useful negative example.
Result<std::unique_ptr<Database>> BuildEmployeeDatabase();
Result<std::unique_ptr<KerCatalog>> BuildEmployeeCatalog();
Result<std::unique_ptr<IqsSystem>> BuildEmployeeSystem();

}  // namespace iqs

#endif  // IQS_TESTBED_EMPLOYEE_DB_H_
