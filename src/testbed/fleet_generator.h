#ifndef IQS_TESTBED_FLEET_GENERATOR_H_
#define IQS_TESTBED_FLEET_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ker/catalog.h"
#include "relational/database.h"

namespace iqs {

// Synthetic navy-battleship generator driven by Table 1 of the paper
// ("Classification Characteristics of Navy Battleships"): 12 ship types
// in two categories, each with a displacement range. Used for
//  * experiment E6 (recovering Table 1's ranges by induction),
//  * the Nc-sweep and scaling benches (E7, E10), where the 24-ship
//    Appendix C instance is too small.

struct FleetTypeSpec {
  const char* category;   // "Subsurface" / "Surface"
  const char* type;       // "SSBN", "CVN", ...
  const char* type_name;  // "Ballistic Nuclear Missile Submarine", ...
  int displacement_lo;    // tons, inclusive
  int displacement_hi;    // tons, inclusive
};

// The 12 rows of Table 1, in the paper's order.
const std::vector<FleetTypeSpec>& Table1Specs();

// Generates a fleet database with `ships_per_type` ships of each Table-1
// type. Relations:
//   BATTLESHIP = (Id, Name, Type, Category, Displacement)
//   SHIPTYPE   = (Type, TypeName, Category)
// Displacements are sampled uniformly from the type's range with both
// endpoints forced to occur (so induced characteristics can match Table 1
// exactly); generation is deterministic in `seed`.
Result<std::unique_ptr<Database>> GenerateFleet(size_t ships_per_type,
                                                uint64_t seed);

// KER schema for the fleet: hierarchy BATTLESHIP > {SUBSURFACE, SURFACE}
// (derived over Category) > one subtype per ship type (derived over
// Type).
Result<std::unique_ptr<KerCatalog>> BuildFleetCatalog();

// Observed [min, max] displacement per ship type — the induced
// "classification characteristics" of Table 1.
struct TypeCharacteristics {
  std::string type;
  int64_t displacement_lo = 0;
  int64_t displacement_hi = 0;
};
Result<std::vector<TypeCharacteristics>> InduceCharacteristics(
    const Database& db);

// A tiny deterministic PRNG (xorshift64*) so benches and tests are
// reproducible without <random>'s implementation-defined distributions.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}
  uint64_t Next();
  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

 private:
  uint64_t state_;
};

}  // namespace iqs

#endif  // IQS_TESTBED_FLEET_GENERATOR_H_
