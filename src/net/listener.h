#ifndef IQS_NET_LISTENER_H_
#define IQS_NET_LISTENER_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace iqs {
namespace net {

// A bound, listening TCP socket. Accept() multiplexes the listen fd with
// a wake fd (the server's shutdown pipe) so a blocked accept loop can be
// interrupted without signals or timeouts.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Binds `host:port` (port 0 picks an ephemeral port — the norm for
  // tests) and starts listening. SO_REUSEADDR is set so rapid test
  // restarts do not trip TIME_WAIT.
  Status Open(const std::string& host, uint16_t port);

  // Blocks until a connection arrives (returns its fd), `wake_fd`
  // becomes readable (returns Unavailable "listener woken"), or the
  // socket fails. The caller owns the returned fd.
  Result<int> Accept(int wake_fd);

  void Close();

  bool listening() const { return fd_ >= 0; }
  // The actual bound port (resolves port 0 to the kernel's choice).
  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace iqs

#endif  // IQS_NET_LISTENER_H_
