#include "net/client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace iqs {
namespace net {

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(other.fd_),
      timeout_ms_(other.timeout_ms_),
      decoder_(std::move(other.decoder_)) {
  other.fd_ = -1;
}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    timeout_ms_ = other.timeout_ms_;
    decoder_ = std::move(other.decoder_);
    other.fd_ = -1;
  }
  return *this;
}

Status BlockingClient::Connect(const std::string& host, uint16_t port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("client host must be an IPv4 address, "
                                   "got '" + host + "'");
  }
  // Non-blocking connect + poll bounds the handshake by the client
  // timeout; the socket is restored to blocking afterwards so send()
  // keeps its simple semantics.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  auto fail = [&](const std::string& what) {
    const Status s = Status::Unavailable("connect " + host + ":" +
                                         std::to_string(port) + ": " + what);
    ::close(fd);
    return s;
  };
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) return fail(std::strerror(errno));
    pollfd pfd{fd, POLLOUT, 0};
    int n;
    do {
      n = ::poll(&pfd, 1, timeout_ms_);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return fail(std::string("poll: ") + std::strerror(errno));
    if (n == 0) return fail("timed out");
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      return fail(std::strerror(so_error != 0 ? so_error : errno));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  fd_ = fd;
  decoder_ = FrameDecoder(kDefaultMaxFrameBytes);
  return Status::Ok();
}

void BlockingClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status BlockingClient::SendFrame(const std::string& payload) {
  return SendRaw(EncodeFrame(payload));
}

Status BlockingClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::Unavailable("client not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t wrote = ::send(fd_, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("send: ") +
                                 std::strerror(errno));
    }
    sent += static_cast<size_t>(wrote);
  }
  return Status::Ok();
}

Result<std::string> BlockingClient::ReadFrame(int timeout_ms) {
  if (fd_ < 0) return Status::Unavailable("client not connected");
  if (timeout_ms < 0) timeout_ms = timeout_ms_;
  for (;;) {
    std::string payload;
    Status error;
    switch (decoder_.Next(&payload, &error)) {
      case FrameDecoder::Event::kFrame:
        return payload;
      case FrameDecoder::Event::kBadFrame:
        // The server never produces malformed frames; a bad inbound
        // frame means the stream is corrupt beyond use.
        return Status::Internal("malformed response frame: " +
                                error.message());
      case FrameDecoder::Event::kNeedMore:
        break;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("poll: ") +
                                 std::strerror(errno));
    }
    if (n == 0) return Status::Unavailable("response timeout");
    char buf[64 * 1024];
    const ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
    if (got == 0) {
      return decoder_.AtFrameBoundary()
                 ? Status::NotFound("server closed the connection")
                 : Status::Unavailable("stream ended mid-frame");
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("recv: ") +
                                 std::strerror(errno));
    }
    decoder_.Append(buf, static_cast<size_t>(got));
  }
}

Result<std::string> BlockingClient::Call(const std::string& payload,
                                         int timeout_ms) {
  if (Status s = SendFrame(payload); !s.ok()) return s;
  return ReadFrame(timeout_ms);
}

}  // namespace net
}  // namespace iqs
