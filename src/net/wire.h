#ifndef IQS_NET_WIRE_H_
#define IQS_NET_WIRE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace iqs {
namespace net {

// Wire framing (DESIGN.md §13): every protocol message — request and
// response alike — is one frame:
//
//   +-----------------+---------------------+
//   | length (4B, BE) | payload (JSON text) |
//   +-----------------+---------------------+
//
// The length counts payload bytes only and must satisfy
// 1 <= length <= max_frame_bytes. A violation is a *recoverable* framing
// error: the decoder reports it, the server answers with a typed error
// response, and the stream resynchronizes (an oversized frame's payload
// is discarded byte-for-byte; a zero-length frame has nothing to skip).
// Only a stream that ends or times out mid-frame closes the connection,
// because the remaining byte count is unknowable.

inline constexpr size_t kDefaultMaxFrameBytes = 1 << 20;  // 1 MiB
inline constexpr size_t kFrameHeaderBytes = 4;

// Header + payload. Payloads above 2^32-1 bytes cannot be framed; the
// router never produces one (responses embed tables, not relations).
std::string EncodeFrame(const std::string& payload);

// Incremental frame decoder for one connection's inbound byte stream.
// Feed arbitrary chunks; poll Next() for complete frames. The decoder
// never throws and never over-reads: a torn TCP segmentation (1-byte
// reads included) reassembles identically to a single write, which the
// fuzz suite drives hard.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  // Appends raw bytes received from the peer.
  void Append(const char* data, size_t n);
  void Append(const std::string& bytes) {
    Append(bytes.data(), bytes.size());
  }

  enum class Event {
    kNeedMore,  // no complete frame buffered yet
    kFrame,     // *payload holds one complete frame's payload
    kBadFrame,  // *error describes a recoverable framing violation
  };

  // Extracts the next event. After kBadFrame the decoder has already
  // resynchronized itself (oversized payloads enter skip mode and are
  // discarded as bytes arrive), so callers keep feeding and polling.
  Event Next(std::string* payload, Status* error);

  // True while the decoder sits between frames (nothing buffered, not
  // skipping): an EOF here is a clean close, an EOF anywhere else is a
  // truncated frame.
  bool AtFrameBoundary() const {
    return buffer_.empty() && skip_remaining_ == 0;
  }

  // Bytes buffered but not yet consumed (diagnostics).
  size_t buffered() const { return buffer_.size(); }

 private:
  // Not const so decoders stay assignable (client reconnect resets one).
  size_t max_frame_bytes_;
  std::string buffer_;
  uint64_t skip_remaining_ = 0;  // oversized-frame payload left to discard
};

}  // namespace net
}  // namespace iqs

#endif  // IQS_NET_WIRE_H_
