#ifndef IQS_NET_SERVER_H_
#define IQS_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/system.h"
#include "net/listener.h"
#include "net/router.h"
#include "net/wire.h"

namespace iqs {
namespace net {

// Operator-facing knobs of one server instance; every field maps to an
// iqs_serverd flag.
struct ServerConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 picks an ephemeral port (tests)

  // Admission control: at most `max_sessions` connections are served
  // concurrently; the next `queue_depth` wait in accept order for a slot;
  // beyond that a typed kOverloaded response is written and the
  // connection closed — load is shed at the door, not by stalling every
  // client a little (DESIGN.md §13).
  size_t max_sessions = 64;
  size_t queue_depth = 16;

  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  int read_timeout_ms = 5000;   // mid-frame: peer started a frame, then stalled
  int write_timeout_ms = 5000;  // per blocked send
  int idle_timeout_ms = 60000;  // between frames: quiet sessions are reaped
  int drain_timeout_ms = 5000;  // graceful-drain bound on Shutdown

  // Gates `set failpoint` over the wire (see RouterConfig).
  bool allow_failpoints = false;

  // Resource governance (DESIGN.md §15): per-query defaults seeded into
  // every session (0 = none; sessions/requests can override), and the
  // sweep period of the watchdog thread that cancels — never kills —
  // queries past their deadline. Started in Start(), stopped in
  // Shutdown().
  int64_t default_deadline_ms = 0;
  uint64_t max_query_memory_kb = 0;
  int watchdog_period_ms = 50;
};

// The iqs_serverd core: accept loop + one thread per admitted session,
// all over a borrowed IqsSystem. Borrowed is the point — the golden
// harness serves the very system it compares against, so the wire and
// in-process answers come from one engine instance.
//
// Lifecycle: Start() binds and spawns the accept thread; Shutdown()
// drains gracefully — stop accepting, wake every session's poll, let
// in-flight requests finish and their responses flush, join everything.
// Shutdown() is idempotent and also runs from the destructor, so a
// server object can simply go out of scope in tests.
class IqsServer {
 public:
  // `system` must outlive the server.
  IqsServer(IqsSystem* system, ServerConfig config);
  ~IqsServer();

  IqsServer(const IqsServer&) = delete;
  IqsServer& operator=(const IqsServer&) = delete;

  Status Start();
  void Shutdown();

  // The actual port (after Start resolves port 0).
  uint16_t port() const { return listener_.port(); }

  // Lifetime counters, for tests and the `sys.*` surfaces.
  uint64_t sessions_served() const {
    return sessions_served_.load(std::memory_order_relaxed);
  }
  uint64_t overload_rejections() const {
    return overload_rejections_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void SessionLoop(int fd, uint64_t session_id);
  // Called with mu_ held: admit `fd` now (spawn its thread) or queue it;
  // returns false when both are full (caller sheds it).
  bool AdmitOrQueueLocked(int fd);
  void SpawnSessionLocked(int fd);
  void ReapFinishedLocked();

  IqsSystem* system_;
  const ServerConfig config_;
  RequestRouter router_;

  Listener listener_;
  int wake_pipe_[2] = {-1, -1};  // [read, write]; written once on Shutdown
  std::atomic<bool> shutting_down_{false};
  std::thread accept_thread_;

  std::mutex shutdown_mu_;  // serializes Shutdown (destructor re-entry)

  std::mutex mu_;
  uint64_t next_session_id_ = 0;
  size_t active_sessions_ = 0;
  std::deque<int> pending_;  // admitted-but-waiting connection fds
  std::unordered_map<uint64_t, std::thread> session_threads_;
  std::vector<uint64_t> finished_;  // ids ready to join

  std::atomic<uint64_t> sessions_served_{0};
  std::atomic<uint64_t> overload_rejections_{0};
};

}  // namespace net
}  // namespace iqs

#endif  // IQS_NET_SERVER_H_
