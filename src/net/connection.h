#ifndef IQS_NET_CONNECTION_H_
#define IQS_NET_CONNECTION_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/wire.h"

namespace iqs {
namespace net {

// One accepted socket plus its inbound frame decoder. All I/O is
// poll-bounded: a read waits at most the idle timeout between frames and
// the (usually shorter) read timeout once a frame has started arriving —
// that split is what distinguishes a quiet-but-healthy client from one
// that tore mid-frame. Writes block at most the write timeout per
// syscall.
class Connection {
 public:
  // Takes ownership of `fd`.
  Connection(int fd, size_t max_frame_bytes)
      : fd_(fd), decoder_(max_frame_bytes) {}
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  enum class ReadEvent {
    kFrame,     // *payload holds one request payload
    kBadFrame,  // recoverable framing violation; *error says what
    kClosed,    // peer closed (or read failed); connection is done
    kTimeout,   // idle/read timeout expired; connection is done
    kWoken,     // wake_fd fired (server drain); connection is done
  };

  // Returns the next inbound event. Frames already buffered are served
  // without touching the socket, so a client that batches requests into
  // one write still gets every response. The "net.frame.read" failpoint
  // fires here, modeling a torn request stream: it closes the
  // connection, as a real torn read would.
  ReadEvent ReadFrame(std::string* payload, Status* error,
                      int idle_timeout_ms, int read_timeout_ms, int wake_fd);

  // Frames `payload` and writes it fully. The "net.frame.write"
  // failpoint models a dropped response: the write is skipped (counted
  // in net.write.skipped) but the connection survives — kSkipAndLog
  // semantics, matching a response lost in flight rather than a broken
  // socket.
  Status WriteFrame(const std::string& payload, int write_timeout_ms);

 private:
  int fd_;
  FrameDecoder decoder_;
};

}  // namespace net
}  // namespace iqs

#endif  // IQS_NET_CONNECTION_H_
