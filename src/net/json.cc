#include "net/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace iqs {
namespace net {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Int(int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kInt;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::Double(double d) {
  JsonValue v;
  v.kind_ = Kind::kDouble;
  v.double_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

// Recursive-descent parser over the whole input. Positions are byte
// offsets; errors carry the offset so a conformance failure names the
// exact malformed byte.
class Parser {
 public:
  Parser(const std::string& text, size_t max_depth)
      : s_(text), max_depth_(max_depth) {}

  Result<JsonValue> Run() {
    SkipWs();
    JsonValue value;
    IQS_RETURN_IF_ERROR(ParseValue(0, &value));
    SkipWs();
    if (pos_ != s_.size()) {
      return Err("trailing bytes after the JSON value");
    }
    return value;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::ParseError("json: " + what + " at byte " +
                              std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  Status ParseValue(size_t depth, JsonValue* out) {
    if (depth > max_depth_) return Err("nesting too deep");
    switch (Peek()) {
      case '{':
        return ParseObject(depth, out);
      case '[':
        return ParseArray(depth, out);
      case '"': {
        std::string s;
        IQS_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::Str(std::move(s));
        return Status::Ok();
      }
      case 't':
        IQS_RETURN_IF_ERROR(Literal("true"));
        *out = JsonValue::Bool(true);
        return Status::Ok();
      case 'f':
        IQS_RETURN_IF_ERROR(Literal("false"));
        *out = JsonValue::Bool(false);
        return Status::Ok();
      case 'n':
        IQS_RETURN_IF_ERROR(Literal("null"));
        *out = JsonValue::Null();
        return Status::Ok();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(size_t depth, JsonValue* out) {
    ++pos_;  // {
    *out = JsonValue::Object();
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      SkipWs();
      std::string key;
      IQS_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (Peek() != ':') return Err("expected ':' in object");
      ++pos_;
      SkipWs();
      JsonValue value;
      IQS_RETURN_IF_ERROR(ParseValue(depth + 1, &value));
      out->Set(std::move(key), std::move(value));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return Status::Ok();
      }
      return Err("expected ',' or '}' in object");
    }
  }

  Status ParseArray(size_t depth, JsonValue* out) {
    ++pos_;  // [
    *out = JsonValue::Array();
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      SkipWs();
      JsonValue value;
      IQS_RETURN_IF_ERROR(ParseValue(depth + 1, &value));
      out->Append(std::move(value));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return Status::Ok();
      }
      return Err("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    if (Peek() != '"') return Err("expected string");
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c < 0x20) return Err("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) break;
        char e = s_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            Status hex = ReadHex4(&code);
            if (!hex.ok()) return hex;
            // A surrogate pair combines into one supplementary code
            // point encoded as four UTF-8 bytes (RFC 8259 §7). Emitting
            // the two halves as separate 3-byte sequences would be
            // CESU-8, which downstream UTF-8 consumers reject. An
            // unpaired surrogate half becomes U+FFFD.
            if (code >= 0xD800 && code <= 0xDBFF) {
              size_t save = pos_;
              unsigned low = 0;
              if (pos_ + 2 <= s_.size() && s_[pos_] == '\\' &&
                  s_[pos_ + 1] == 'u') {
                pos_ += 2;
                if (ReadHex4(&low).ok() && low >= 0xDC00 && low <= 0xDFFF) {
                  unsigned cp =
                      0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                  out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
                  out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
                  out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
                  out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
                  break;
                }
                // Not a low surrogate: leave the escape for the loop to
                // parse on its own and replace the lone high half.
                pos_ = save;
              }
              code = 0xFFFD;
            } else if (code >= 0xDC00 && code <= 0xDFFF) {
              code = 0xFFFD;  // low half with no preceding high half
            }
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            --pos_;
            return Err("bad escape character");
        }
        continue;
      }
      out->push_back(static_cast<char>(c));
      ++pos_;
    }
    return Err("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
      pos_ = start;
      return Err("expected a JSON value");
    }
    // No leading zeros: "0" or [1-9][0-9]*.
    if (Peek() == '0') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Err("leading zero in number");
      }
    } else {
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    bool integral = true;
    if (Peek() == '.') {
      integral = false;
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Err("expected digit after decimal point");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      integral = false;
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Err("expected digit in exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    const std::string text = s_.substr(start, pos_ - start);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno == ERANGE) {
        // An integral token outside int64 must not degrade silently to a
        // double — the nearest representable double changes the value
        // (9223372036854775808 would read back as ...5808.0 == 2^63),
        // and callers storing Int columns would corrupt them.
        return Err("number out of int64 range");
      }
      if (errno == 0 && end != nullptr && *end == '\0') {
        *out = JsonValue::Int(static_cast<int64_t>(v));
        return Status::Ok();
      }
    }
    errno = 0;
    double d = std::strtod(text.c_str(), nullptr);
    if (errno != 0 && !std::isfinite(d)) {
      return Err("number out of range");
    }
    *out = JsonValue::Double(d);
    return Status::Ok();
  }

  // Four hex digits of a \u escape at pos_; advances past them only on
  // success.
  Status ReadHex4(unsigned* code) {
    if (pos_ + 4 > s_.size()) return Err("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      char h = s_[pos_ + i];
      unsigned digit;
      if (h >= '0' && h <= '9') {
        digit = h - '0';
      } else if (h >= 'a' && h <= 'f') {
        digit = h - 'a' + 10;
      } else if (h >= 'A' && h <= 'F') {
        digit = h - 'A' + 10;
      } else {
        return Err("bad hex digit in \\u escape");
      }
      value = value * 16 + digit;
    }
    pos_ += 4;
    *code = value;
    return Status::Ok();
  }

  Status Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) {
        return Err(std::string("bad literal (expected '") + word + "')");
      }
      ++pos_;
    }
    return Status::Ok();
  }

  const std::string& s_;
  const size_t max_depth_;
  size_t pos_ = 0;
};

std::string DumpDouble(double d) {
  if (!std::isfinite(d)) return "null";  // JSON has no Inf/NaN
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

}  // namespace

Result<JsonValue> JsonValue::Parse(const std::string& text,
                                   size_t max_depth) {
  return Parser(text, max_depth).Run();
}

std::string JsonEscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

std::string JsonValue::Dump() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kDouble:
      return DumpDouble(double_);
    case Kind::kString:
      return "\"" + JsonEscapeString(string_) + "\"";
    case Kind::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ",";
        out += items_[i].Dump();
      }
      return out + "]";
    }
    case Kind::kObject: {
      std::string out = "{";
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ",";
        out += "\"" + JsonEscapeString(members_[i].first) +
               "\":" + members_[i].second.Dump();
      }
      return out + "}";
    }
  }
  return "null";
}

void JsonWriter::Comma() {
  if (need_comma_) out_ += ",";
  need_comma_ = false;
}

JsonWriter& JsonWriter::BeginObject() {
  Comma();
  out_ += "{";
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += "}";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray(const std::string& key) {
  Key(key);
  out_ += "[";
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += "]";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  Comma();
  out_ += "\"" + JsonEscapeString(key) + "\":";
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  Comma();
  out_ += "\"" + JsonEscapeString(value) + "\"";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  Comma();
  out_ += json;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  Comma();
  out_ += std::to_string(value);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  Comma();
  out_ += std::to_string(value);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  Comma();
  out_ += DumpDouble(value);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Comma();
  out_ += value ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Comma();
  out_ += "null";
  need_comma_ = true;
  return *this;
}

}  // namespace net
}  // namespace iqs
