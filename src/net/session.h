#ifndef IQS_NET_SESSION_H_
#define IQS_NET_SESSION_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "core/query_processor.h"
#include "fault/degrade.h"
#include "inference/engine.h"
#include "sql/sqo_rewrite.h"

namespace iqs {
namespace net {

// Per-connection session state (DESIGN.md §13). Every connection gets its
// own Session the moment admission control admits it; `set` verbs mutate
// only this object, so two clients with different modes can interleave
// requests against one IqsSystem without observing each other — the
// options travel to the processor per call via QueryOptions, never
// through processor-wide knobs.
//
// A Session is owned by its connection, but is no longer strictly
// thread-confined: long verbs (query/explain/induce) run on the session's
// handler thread while `cancel` frames are routed inline on the read
// thread (DESIGN.md §15). The request counters are atomic for that
// overlap; everything else is still serialized — the read loop joins the
// handler before dispatching any non-cancel verb, so `set` mutations and
// option reads never race.
struct Session {
  uint64_t id = 0;

  // `set mode forward|backward|combined`
  InferenceMode mode = InferenceMode::kCombined;
  // `set sqo on|off|intensional`
  SqoMode sqo = SqoMode::kOff;
  // `set cache on|off` — false bypasses the shared plan/answer caches
  // for this session's queries only.
  bool use_cache = true;

  // `set deadline_ms N` / `set max_memory_kb N` — per-query governance
  // defaults (0 = none), seeded from the server's --default-deadline-ms /
  // --max-query-memory-kb flags and overridable per request.
  int64_t deadline_ms = 0;
  uint64_t max_memory_kb = 0;

  // Lifetime request counters for the `session` verb. Atomic: an inline
  // `cancel` bumps them while the handler thread serves a query.
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> errors{0};

  // Sliding-window error budget over this client's query outcomes.
  fault::ErrorBudget budget{/*window=*/64, /*threshold=*/0.5};

  // The per-call options this session's current settings translate to.
  // The wire identity (request id) is stamped on top by the router.
  QueryOptions query_options() const {
    QueryOptions options;
    options.mode = mode;
    options.sqo = sqo;
    options.use_cache = use_cache;
    options.deadline_ms = deadline_ms;
    options.max_memory_kb = max_memory_kb;
    options.session_id = id;
    return options;
  }
};

}  // namespace net
}  // namespace iqs

#endif  // IQS_NET_SESSION_H_
