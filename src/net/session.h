#ifndef IQS_NET_SESSION_H_
#define IQS_NET_SESSION_H_

#include <cstdint>
#include <string>

#include "core/query_processor.h"
#include "fault/degrade.h"
#include "inference/engine.h"
#include "sql/sqo_rewrite.h"

namespace iqs {
namespace net {

// Per-connection session state (DESIGN.md §13). Every connection gets its
// own Session the moment admission control admits it; `set` verbs mutate
// only this object, so two clients with different modes can interleave
// requests against one IqsSystem without observing each other — the
// options travel to the processor per call via QueryOptions, never
// through processor-wide knobs.
//
// A Session is confined to its connection thread; nothing here needs
// locking. The error budget tracks this client's recent outcomes over a
// sliding window (fault::ErrorBudget semantics: exhaustion is a signal
// surfaced in responses, not a gate — extensional answers are always
// worth serving).
struct Session {
  uint64_t id = 0;

  // `set mode forward|backward|combined`
  InferenceMode mode = InferenceMode::kCombined;
  // `set sqo on|off|intensional`
  SqoMode sqo = SqoMode::kOff;
  // `set cache on|off` — false bypasses the shared plan/answer caches
  // for this session's queries only.
  bool use_cache = true;

  // Lifetime request counters for the `session` verb.
  uint64_t requests = 0;
  uint64_t errors = 0;

  // Sliding-window error budget over this client's query outcomes.
  fault::ErrorBudget budget{/*window=*/64, /*threshold=*/0.5};

  // The per-call options this session's current settings translate to.
  QueryOptions query_options() const {
    QueryOptions options;
    options.mode = mode;
    options.sqo = sqo;
    options.use_cache = use_cache;
    return options;
  }
};

}  // namespace net
}  // namespace iqs

#endif  // IQS_NET_SESSION_H_
