#include "net/router.h"

#include <set>
#include <string>
#include <vector>

#include "core/snapshot.h"
#include "exec/exec_context.h"
#include "exec/thread_pool.h"
#include "fault/failpoint.h"
#include "induction/induction_config.h"
#include "net/json.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"

namespace iqs {
namespace net {
namespace {

// Protocol revision reported by `ping`. Bump on any incompatible change
// to the frame format or response shapes.
constexpr int64_t kProtocolVersion = 1;

// {"ok":false,"error":{"code":...,"message":...}}, id echoed when the
// request carried one.
std::string ErrorResponse(const Status& status, const std::string& id_json) {
  JsonWriter w;
  w.BeginObject();
  if (!id_json.empty()) w.RawField("id", id_json);
  w.Field("ok", false);
  w.Key("error").BeginObject();
  w.Field("code", std::string(StatusCodeName(status.code())));
  w.Field("message", status.message());
  w.EndObject();
  w.EndObject();
  return w.Take();
}

// Pulls a required string member; error mentions the verb for context.
Result<std::string> RequiredString(const JsonValue& request,
                                   const std::string& verb,
                                   const std::string& key) {
  const JsonValue* v = request.Find(key);
  if (v == nullptr || !v->is_string()) {
    return Status::InvalidArgument(verb + " requires a string \"" + key +
                                   "\" member");
  }
  return v->AsString();
}

Result<InferenceMode> ParseMode(const std::string& name) {
  if (name == "forward") return InferenceMode::kForward;
  if (name == "backward") return InferenceMode::kBackward;
  if (name == "combined") return InferenceMode::kCombined;
  return Status::InvalidArgument("unknown inference mode '" + name +
                                 "' (forward|backward|combined)");
}

Result<SqoMode> ParseSqo(const std::string& name) {
  if (name == "off") return SqoMode::kOff;
  if (name == "on") return SqoMode::kOn;
  if (name == "intensional") return SqoMode::kIntensional;
  return Status::InvalidArgument("unknown sqo mode '" + name +
                                 "' (on|off|intensional)");
}

void WriteSessionOptions(JsonWriter& w, const Session& session) {
  w.Key("options").BeginObject();
  w.Field("mode", std::string(InferenceModeName(session.mode)));
  w.Field("sqo", std::string(SqoModeName(session.sqo)));
  w.Field("cache", session.use_cache);
  w.Field("deadline_ms", session.deadline_ms);
  w.Field("max_memory_kb", session.max_memory_kb);
  w.EndObject();
}

// Pulls an optional non-negative integer member (for the per-request
// deadline_ms / max_memory_kb overrides); leaves *out untouched when the
// member is absent.
Status OptionalNonNegative(const JsonValue& request, const std::string& key,
                           int64_t* out) {
  const JsonValue* v = request.Find(key);
  if (v == nullptr) return Status::Ok();
  if (!v->is_number() || v->AsInt() < 0) {
    return Status::InvalidArgument("\"" + key +
                                   "\" must be a non-negative number");
  }
  *out = v->AsInt();
  return Status::Ok();
}

void WriteBudget(JsonWriter& w, const Session& session) {
  const fault::ErrorBudget::Snapshot b = session.budget.snapshot();
  w.Key("budget").BeginObject();
  w.Field("ok", b.ok);
  w.Field("degraded", b.degraded);
  w.Field("failed", b.failed);
  w.Key("window_ratio").Double(b.window_ratio);
  w.Field("exhausted", b.exhausted);
  w.EndObject();
}

}  // namespace

std::string RequestRouter::FramingError(const Status& status) {
  return ErrorResponse(status, /*id_json=*/"");
}

std::string RequestRouter::Handle(const std::string& payload,
                                  Session& session) const {
  session.requests++;
  IQS_COUNTER_INC("net.requests");

  auto parsed = JsonValue::Parse(payload);
  if (!parsed.ok()) {
    session.errors++;
    IQS_COUNTER_INC("net.requests.error");
    return ErrorResponse(parsed.status(), "");
  }
  if (!parsed->is_object()) {
    session.errors++;
    IQS_COUNTER_INC("net.requests.error");
    return ErrorResponse(
        Status::InvalidArgument("request must be a JSON object"), "");
  }

  // Echo the id verbatim (any JSON value) in success and error alike, so
  // clients can pipeline requests and match responses.
  std::string id_json;
  if (const JsonValue* id = parsed->Find("id")) id_json = id->Dump();

  const JsonValue* verb_member = parsed->Find("verb");
  if (verb_member == nullptr || !verb_member->is_string()) {
    session.errors++;
    IQS_COUNTER_INC("net.requests.error");
    return ErrorResponse(
        Status::InvalidArgument("request has no string \"verb\" member"),
        id_json);
  }
  const std::string& verb = verb_member->AsString();

  // Per-verb counters use the closed verb set — a fuzzed stream of novel
  // verbs must not grow the metrics registry without bound. Dynamic
  // names also cannot use the caching macros.
  static const std::set<std::string> kVerbs = {
      "ping",    "query", "explain", "describe", "induce", "rules",
      "fsck",    "metrics", "sys",   "set",      "session", "cancel"};
  const std::string counter_verb =
      kVerbs.count(verb) ? verb : std::string("unknown");
  auto fail = [&](const Status& status) {
    session.errors++;
    IQS_COUNTER_INC("net.requests.error");
    obs::GlobalMetrics()
        .GetCounter("net.verb." + counter_verb + ".error")
        ->Increment(1);
    return ErrorResponse(status, id_json);
  };
  obs::GlobalMetrics().GetCounter("net.verb." + counter_verb)->Increment(1);

  // ---- ping ----------------------------------------------------------
  if (verb == "ping") {
    JsonWriter w;
    w.BeginObject();
    if (!id_json.empty()) w.RawField("id", id_json);
    w.Field("ok", true);
    w.Field("pong", true);
    w.Field("protocol", kProtocolVersion);
    w.EndObject();
    return w.Take();
  }

  // ---- query / explain -----------------------------------------------
  if (verb == "query" || verb == "explain") {
    auto sql = RequiredString(*parsed, verb, "sql");
    if (!sql.ok()) return fail(sql.status());

    QueryOptions options = session.query_options();
    if (const JsonValue* m = parsed->Find("mode")) {
      if (!m->is_string()) {
        return fail(Status::InvalidArgument("\"mode\" must be a string"));
      }
      auto mode = ParseMode(m->AsString());
      if (!mode.ok()) return fail(mode.status());
      options.mode = *mode;
    }
    // Per-request governance overrides, on top of the session defaults.
    // The request id (echoed in responses) is also the cancel handle.
    if (Status s = OptionalNonNegative(*parsed, "deadline_ms",
                                       &options.deadline_ms);
        !s.ok()) {
      return fail(s);
    }
    int64_t max_memory_kb = static_cast<int64_t>(options.max_memory_kb);
    if (Status s =
            OptionalNonNegative(*parsed, "max_memory_kb", &max_memory_kb);
        !s.ok()) {
      return fail(s);
    }
    options.max_memory_kb = static_cast<uint64_t>(max_memory_kb);
    options.request_id = id_json;

    auto result = system_->Query(*sql, options);
    if (!result.ok()) {
      session.budget.RecordFailed();
      return fail(result.status());
    }
    if (result->degraded()) {
      session.budget.RecordDegraded();
    } else {
      session.budget.RecordOk();
    }

    // Non-const Explain records format_micros before stats serialize, so
    // the wire stats match what the shell would print.
    const std::string explain = system_->Explain(*result);

    JsonWriter w;
    w.BeginObject();
    if (!id_json.empty()) w.RawField("id", id_json);
    w.Field("ok", true);
    w.Field("mode", std::string(InferenceModeName(options.mode)));
    w.Field("sqo",
            std::string(SqoModeName(options.sqo.value_or(SqoMode::kOff))));
    w.Field("rows", static_cast<uint64_t>(result->extensional.size()));
    w.Field("table", result->extensional.ToTable());
    w.Field("explain", explain);
    w.Field("rule_epoch", result->rule_epoch);
    w.Field("db_epoch", result->db_epoch);
    w.BeginArray("rewrites");
    for (const RewriteStep& step : result->rewrites) w.String(step.ToString());
    w.EndArray();
    w.BeginArray("degradations");
    for (const auto& event : result->degradations) w.String(event.ToString());
    w.EndArray();
    w.Field("degraded", result->degraded());
    w.RawField("stats", result->stats.ToJson());
    if (verb == "explain") w.Field("stats_text", result->stats.ToString());
    const auto budget = session.budget.snapshot();
    if (budget.exhausted) w.Field("budget_exhausted", true);
    w.EndObject();
    return w.Take();
  }

  // ---- describe ------------------------------------------------------
  if (verb == "describe") {
    const Database& db = system_->database();
    const JsonValue* rel_member = parsed->Find("relation");
    if (rel_member == nullptr) {
      JsonWriter w;
      w.BeginObject();
      if (!id_json.empty()) w.RawField("id", id_json);
      w.Field("ok", true);
      w.BeginArray("relations");
      for (const std::string& name : db.RelationNames()) w.String(name);
      w.EndArray();
      w.BeginArray("virtual");
      for (const std::string& name : db.VirtualRelationNames()) {
        w.String(name);
      }
      w.EndArray();
      w.Field("db_epoch", db.epoch());
      w.EndObject();
      return w.Take();
    }
    if (!rel_member->is_string()) {
      return fail(Status::InvalidArgument("\"relation\" must be a string"));
    }
    const std::string& name = rel_member->AsString();
    const Relation* relation = nullptr;
    Relation materialized;
    if (db.IsVirtual(name)) {
      auto snapshot = db.MaterializeVirtual(name);
      if (!snapshot.ok()) return fail(snapshot.status());
      materialized = std::move(*snapshot);
      relation = &materialized;
    } else {
      auto found = db.Get(name);
      if (!found.ok()) return fail(found.status());
      relation = *found;
    }
    JsonWriter w;
    w.BeginObject();
    if (!id_json.empty()) w.RawField("id", id_json);
    w.Field("ok", true);
    w.Field("relation", relation->name());
    w.Field("schema", relation->schema().ToString());
    w.BeginArray("columns");
    for (const AttributeDef& attr : relation->schema().attributes()) {
      w.BeginObject();
      w.Field("name", attr.name);
      w.Field("type", std::string(ValueTypeName(attr.type)));
      w.Field("key", attr.is_key);
      w.EndObject();
    }
    w.EndArray();
    w.Field("rows", static_cast<uint64_t>(relation->size()));
    w.EndObject();
    return w.Take();
  }

  // ---- induce --------------------------------------------------------
  if (verb == "induce") {
    InductionConfig config;
    if (const JsonValue* nc = parsed->Find("nc")) {
      if (!nc->is_number()) {
        return fail(Status::InvalidArgument("\"nc\" must be a number"));
      }
      config.min_support = nc->AsInt();
    }
    {
      std::lock_guard<std::mutex> lock(induce_mu_);
      if (Status s = system_->Induce(config); !s.ok()) return fail(s);
    }
    JsonWriter w;
    w.BeginObject();
    if (!id_json.empty()) w.RawField("id", id_json);
    w.Field("ok", true);
    w.Field("rules",
            static_cast<uint64_t>(system_->dictionary().induced_rules().size()));
    w.Field("nc", static_cast<int64_t>(config.min_support));
    w.Field("rule_epoch", system_->dictionary().rule_epoch());
    w.Field("db_epoch", system_->database().epoch());
    w.EndObject();
    return w.Take();
  }

  // ---- rules ---------------------------------------------------------
  if (verb == "rules") {
    JsonWriter w;
    w.BeginObject();
    if (!id_json.empty()) w.RawField("id", id_json);
    w.Field("ok", true);
    w.Field("count",
            static_cast<uint64_t>(system_->dictionary().induced_rules().size()));
    w.Field("text", system_->dictionary().induced_rules().ToString());
    w.Field("rule_epoch", system_->dictionary().rule_epoch());
    w.EndObject();
    return w.Take();
  }

  // ---- fsck ----------------------------------------------------------
  if (verb == "fsck") {
    auto dir = RequiredString(*parsed, verb, "dir");
    if (!dir.ok()) return fail(dir.status());
    auto report = persist::FsckDirectory(*dir);
    if (!report.ok()) return fail(report.status());
    JsonWriter w;
    w.BeginObject();
    if (!id_json.empty()) w.RawField("id", id_json);
    w.Field("ok", true);
    w.Field("healthy", report->healthy());
    w.Field("report", report->ToString());
    w.EndObject();
    return w.Take();
  }

  // ---- metrics -------------------------------------------------------
  if (verb == "metrics") {
    std::string format = "json";
    if (const JsonValue* f = parsed->Find("format")) {
      if (!f->is_string()) {
        return fail(Status::InvalidArgument("\"format\" must be a string"));
      }
      format = f->AsString();
    }
    const obs::MetricsSnapshot snapshot = obs::GlobalMetrics().Snapshot();
    JsonWriter w;
    w.BeginObject();
    if (!id_json.empty()) w.RawField("id", id_json);
    w.Field("ok", true);
    w.Field("format", format);
    if (format == "json") {
      w.RawField("metrics", snapshot.ToJson());
    } else if (format == "text") {
      w.Field("metrics_text", snapshot.ToText());
    } else if (format == "prom") {
      w.Field("metrics_prom", obs::RenderPrometheus(snapshot));
    } else {
      return fail(Status::InvalidArgument("unknown metrics format '" +
                                          format + "' (json|text|prom)"));
    }
    w.EndObject();
    return w.Take();
  }

  // ---- sys -----------------------------------------------------------
  if (verb == "sys") {
    const Database& db = system_->database();
    const JsonValue* rel_member = parsed->Find("relation");
    if (rel_member == nullptr) {
      JsonWriter w;
      w.BeginObject();
      if (!id_json.empty()) w.RawField("id", id_json);
      w.Field("ok", true);
      w.BeginArray("relations");
      for (const std::string& name : db.VirtualRelationNames()) {
        w.String(name);
      }
      w.EndArray();
      w.EndObject();
      return w.Take();
    }
    if (!rel_member->is_string()) {
      return fail(Status::InvalidArgument("\"relation\" must be a string"));
    }
    auto snapshot = db.MaterializeVirtual(rel_member->AsString());
    if (!snapshot.ok()) return fail(snapshot.status());
    JsonWriter w;
    w.BeginObject();
    if (!id_json.empty()) w.RawField("id", id_json);
    w.Field("ok", true);
    w.Field("relation", rel_member->AsString());
    w.Field("rows", static_cast<uint64_t>(snapshot->size()));
    w.Field("table", snapshot->ToTable());
    w.EndObject();
    return w.Take();
  }

  // ---- set -----------------------------------------------------------
  if (verb == "set") {
    auto option = RequiredString(*parsed, verb, "option");
    if (!option.ok()) return fail(option.status());

    std::string scope = "session";
    std::string applied;
    if (*option == "mode") {
      auto value = RequiredString(*parsed, verb, "value");
      if (!value.ok()) return fail(value.status());
      auto mode = ParseMode(*value);
      if (!mode.ok()) return fail(mode.status());
      session.mode = *mode;
      applied = *value;
    } else if (*option == "sqo") {
      auto value = RequiredString(*parsed, verb, "value");
      if (!value.ok()) return fail(value.status());
      auto sqo = ParseSqo(*value);
      if (!sqo.ok()) return fail(sqo.status());
      session.sqo = *sqo;
      applied = *value;
    } else if (*option == "cache") {
      auto value = RequiredString(*parsed, verb, "value");
      if (!value.ok()) return fail(value.status());
      if (*value != "on" && *value != "off") {
        return fail(Status::InvalidArgument("\"cache\" takes on|off"));
      }
      session.use_cache = (*value == "on");
      applied = *value;
    } else if (*option == "deadline_ms" || *option == "max_memory_kb") {
      const JsonValue* n = parsed->Find("value");
      if (n == nullptr || !n->is_number() || n->AsInt() < 0) {
        return fail(Status::InvalidArgument(
            "\"" + *option + "\" takes a non-negative number (0 = none)"));
      }
      if (*option == "deadline_ms") {
        session.deadline_ms = n->AsInt();
      } else {
        session.max_memory_kb = static_cast<uint64_t>(n->AsInt());
      }
      applied = std::to_string(n->AsInt());
    } else if (*option == "threads") {
      const JsonValue* n = parsed->Find("value");
      if (n == nullptr || !n->is_number() || n->AsInt() < 1 ||
          n->AsInt() > 512) {
        return fail(Status::InvalidArgument(
            "\"threads\" takes a number between 1 and 512"));
      }
      // The pool is process-wide; in-flight parallel regions keep the old
      // pool alive through their shared_ptr, so a resize is safe to issue
      // while other sessions run queries.
      exec::SetGlobalThreadCount(static_cast<size_t>(n->AsInt()));
      scope = "process";
      applied = std::to_string(n->AsInt());
    } else if (*option == "failpoint") {
      if (!config_.allow_failpoints) {
        return fail(Status::InvalidArgument(
            "failpoint arming is disabled; start iqs_serverd with "
            "--allow-failpoints"));
      }
      auto name = RequiredString(*parsed, verb, "name");
      if (!name.ok()) return fail(name.status());
      auto value = RequiredString(*parsed, verb, "value");
      if (!value.ok()) return fail(value.status());
      if (Status s = fault::FailpointRegistry::Global().Set(*name, *value);
          !s.ok()) {
        return fail(s);
      }
      scope = "process";
      applied = *name + "=" + *value;
    } else {
      return fail(Status::InvalidArgument(
          "unknown option '" + *option +
          "' (mode|sqo|cache|deadline_ms|max_memory_kb|threads|failpoint)"));
    }

    JsonWriter w;
    w.BeginObject();
    if (!id_json.empty()) w.RawField("id", id_json);
    w.Field("ok", true);
    w.Field("option", *option);
    w.Field("value", applied);
    w.Field("scope", scope);
    w.EndObject();
    return w.Take();
  }

  // ---- session -------------------------------------------------------
  if (verb == "session") {
    JsonWriter w;
    w.BeginObject();
    if (!id_json.empty()) w.RawField("id", id_json);
    w.Field("ok", true);
    w.Field("session_id", session.id);
    w.Field("requests", session.requests.load(std::memory_order_relaxed));
    w.Field("errors", session.errors.load(std::memory_order_relaxed));
    WriteSessionOptions(w, session);
    WriteBudget(w, session);
    w.EndObject();
    return w.Take();
  }

  // ---- cancel --------------------------------------------------------
  // Cooperatively cancels this session's in-flight request whose id
  // equals "target" (any JSON value, compared by canonical spelling).
  // The server routes cancel frames inline while the handler thread is
  // mid-query, which is the whole point: the cancelled query unwinds
  // with a typed kCancelled on its own thread and still gets a
  // well-formed error response. cancelled=false means no such request
  // is running (already finished, or never existed) — not an error.
  if (verb == "cancel") {
    const JsonValue* target = parsed->Find("target");
    if (target == nullptr) {
      return fail(Status::InvalidArgument(
          "cancel requires a \"target\" member (the request id to abort)"));
    }
    const bool cancelled = exec::GovernanceRegistry::Global().CancelQuery(
        session.id, target->Dump(), StatusCode::kCancelled,
        "cancelled by client request");
    obs::GlobalMetrics()
        .GetCounter(cancelled ? "net.cancel.hit" : "net.cancel.miss")
        ->Increment(1);
    JsonWriter w;
    w.BeginObject();
    if (!id_json.empty()) w.RawField("id", id_json);
    w.Field("ok", true);
    w.Field("cancelled", cancelled);
    w.EndObject();
    return w.Take();
  }

  return fail(Status::InvalidArgument(
      "unknown verb '" + verb +
      "' (ping|query|explain|describe|induce|rules|fsck|metrics|sys|set|"
      "session|cancel)"));
}

}  // namespace net
}  // namespace iqs
