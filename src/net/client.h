#ifndef IQS_NET_CLIENT_H_
#define IQS_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "net/wire.h"

namespace iqs {
namespace net {

// Minimal blocking protocol client: one socket, framed request/response.
// This is the only client implementation in the tree — iqs_client, the
// protocol conformance suite, the stress harness, and the server bench
// all speak through it, so a framing bug cannot hide in a test-only
// copy.
class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient() { Close(); }

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;

  Status Connect(const std::string& host, uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  // Frames `payload` and writes it fully.
  Status SendFrame(const std::string& payload);

  // Writes bytes with no framing — the conformance and fuzz suites use
  // this to put malformed data on the wire.
  Status SendRaw(const std::string& bytes);

  // Blocks up to `timeout_ms` for one response frame. NotFound on clean
  // EOF at a frame boundary (server closed the session), Unavailable on
  // timeout or a torn stream.
  Result<std::string> ReadFrame(int timeout_ms = 10000);

  // SendFrame + ReadFrame.
  Result<std::string> Call(const std::string& payload,
                           int timeout_ms = 10000);

 private:
  int fd_ = -1;
  FrameDecoder decoder_{kDefaultMaxFrameBytes};
};

}  // namespace net
}  // namespace iqs

#endif  // IQS_NET_CLIENT_H_
