#ifndef IQS_NET_CLIENT_H_
#define IQS_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "net/wire.h"

namespace iqs {
namespace net {

// Minimal blocking protocol client: one socket, framed request/response.
// This is the only client implementation in the tree — iqs_client, the
// protocol conformance suite, the stress harness, and the server bench
// all speak through it, so a framing bug cannot hide in a test-only
// copy.
class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient() { Close(); }

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;

  // Connects within the client timeout: the TCP handshake is bounded by
  // poll, not left to the kernel's minutes-long default, so a black-holed
  // server address fails fast with kUnavailable.
  Status Connect(const std::string& host, uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  // Default bound for Connect and every ReadFrame/Call that does not
  // pass an explicit timeout (iqs_client's --timeout-ms lands here).
  void set_timeout_ms(int timeout_ms) { timeout_ms_ = timeout_ms; }
  int timeout_ms() const { return timeout_ms_; }

  // Frames `payload` and writes it fully.
  Status SendFrame(const std::string& payload);

  // Writes bytes with no framing — the conformance and fuzz suites use
  // this to put malformed data on the wire.
  Status SendRaw(const std::string& bytes);

  // Blocks up to `timeout_ms` for one response frame (negative = use the
  // client default). NotFound on clean EOF at a frame boundary (server
  // closed the session), Unavailable on timeout or a torn stream.
  Result<std::string> ReadFrame(int timeout_ms = -1);

  // SendFrame + ReadFrame.
  Result<std::string> Call(const std::string& payload, int timeout_ms = -1);

 private:
  int fd_ = -1;
  int timeout_ms_ = 10000;
  FrameDecoder decoder_{kDefaultMaxFrameBytes};
};

}  // namespace net
}  // namespace iqs

#endif  // IQS_NET_CLIENT_H_
