#ifndef IQS_NET_ROUTER_H_
#define IQS_NET_ROUTER_H_

#include <mutex>
#include <string>

#include "core/system.h"
#include "net/session.h"

namespace iqs {
namespace net {

// Router-level knobs, copied from the server flags.
struct RouterConfig {
  // `set failpoint` over the wire is refused unless the operator started
  // the server with --allow-failpoints: arming fault injection is a
  // process-wide act no ordinary client should reach.
  bool allow_failpoints = false;
};

// Maps one request payload to one response payload (DESIGN.md §13). The
// router is deliberately socket-free: it is a pure function of (request
// JSON, session state), which is what lets the protocol suite and the
// fuzz harness drive every verb and every malformed payload without a
// server, and guarantees the in-process and over-the-wire answer paths
// share one implementation.
//
// Handle() never throws and always returns a well-formed response
// object: {"ok":true,...} or {"ok":false,"error":{"code","message"}},
// echoing the request's "id" member when one was sent. Malformed JSON,
// a missing/unknown verb, or bad arguments are *responses*, not
// connection errors — only the framing layer can condemn a connection.
//
// One router serves every session of a server concurrently. It owns no
// mutable state besides the induce mutex (re-induction swaps the shared
// rule base; serializing it keeps concurrent `induce` verbs from
// interleaving their ILS scans against a mutating dictionary).
class RequestRouter {
 public:
  // `system` must outlive the router and is shared with any in-process
  // callers (the golden harness serves the very system it compares
  // against).
  explicit RequestRouter(IqsSystem* system, RouterConfig config = {})
      : system_(system), config_(config) {}

  // Handles one decoded frame payload. Updates session counters and its
  // error budget as a side effect.
  std::string Handle(const std::string& payload, Session& session) const;

  // Response payload for a recoverable framing violation (empty or
  // oversized frame). No id: the frame never parsed far enough to have
  // one.
  static std::string FramingError(const Status& status);

 private:
  IqsSystem* system_;
  RouterConfig config_;
  mutable std::mutex induce_mu_;
};

}  // namespace net
}  // namespace iqs

#endif  // IQS_NET_ROUTER_H_
