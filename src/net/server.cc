#include "net/server.h"

#include <fcntl.h>
#include <unistd.h>

#include <utility>

#include "exec/exec_context.h"
#include "fault/failpoint.h"
#include "net/connection.h"
#include "net/json.h"
#include "obs/metrics.h"

namespace iqs {
namespace net {

namespace {

// True when the frame is a `cancel` request — the one verb the read loop
// handles inline, concurrent with the handler thread, so it can land
// mid-query (DESIGN.md §15). A frame that fails to parse is not a cancel;
// it goes to the handler like any other request and gets its typed parse
// error there.
bool IsCancelFrame(const std::string& payload) {
  Result<JsonValue> parsed = JsonValue::Parse(payload);
  if (!parsed.ok() || !parsed->is_object()) return false;
  const JsonValue* verb = parsed->Find("verb");
  return verb != nullptr && verb->is_string() && verb->AsString() == "cancel";
}

}  // namespace

IqsServer::IqsServer(IqsSystem* system, ServerConfig config)
    : system_(system),
      config_(std::move(config)),
      router_(system, RouterConfig{config_.allow_failpoints}) {}

IqsServer::~IqsServer() {
  Shutdown();
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

Status IqsServer::Start() {
  if (::pipe(wake_pipe_) != 0) {
    return Status::Internal("pipe: cannot create shutdown pipe");
  }
  for (int fd : wake_pipe_) {
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    ::fcntl(fd, F_SETFL, O_NONBLOCK);
  }
  if (Status s = listener_.Open(config_.host, config_.port); !s.ok()) {
    return s;
  }
  accept_thread_ = std::thread(&IqsServer::AcceptLoop, this);
  // The watchdog enforces deadlines even when a query never reaches its
  // next checkpoint promptly: it cancels (never kills) overdue contexts,
  // and the query unwinds at its next checkpoint.
  exec::GovernanceRegistry::Global().StartWatchdog(
      std::chrono::milliseconds(config_.watchdog_period_ms));
  IQS_COUNTER_INC("net.server.starts");
  return Status::Ok();
}

void IqsServer::AcceptLoop() {
  for (;;) {
    auto fd = listener_.Accept(wake_pipe_[0]);
    if (!fd.ok()) {
      if (shutting_down_.load(std::memory_order_acquire)) return;
      IQS_COUNTER_INC("net.accept.error");
      // The listener itself failed (not a per-connection error, those
      // retry inside Accept). Nothing to serve anymore.
      return;
    }
    // net.accept models a connection dropped at the door (kSkipAndLog):
    // the client sees a close, the server keeps accepting.
    if (Status s = fault::Hit("net.accept"); !s.ok()) {
      IQS_COUNTER_INC("net.accept.skipped");
      ::close(*fd);
      continue;
    }
    // net.overload forces the shed path without needing max_sessions
    // real connections (kFailFast: the typed rejection is the contract).
    const bool forced_shed = !fault::Hit("net.overload").ok();

    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ReapFinishedLocked();
      if (shutting_down_.load(std::memory_order_acquire)) {
        ::close(*fd);
        return;
      }
      if (!forced_shed) admitted = AdmitOrQueueLocked(*fd);
    }
    if (admitted) continue;

    // Shed: a typed kOverloaded response, then close. Written outside
    // mu_ so a slow reader cannot stall admission of other clients.
    overload_rejections_.fetch_add(1, std::memory_order_relaxed);
    IQS_COUNTER_INC("net.overloaded");
    Connection doomed(*fd, config_.max_frame_bytes);
    (void)doomed.WriteFrame(
        RequestRouter::FramingError(Status::Overloaded(
            "server at capacity (" + std::to_string(config_.max_sessions) +
            " sessions, " + std::to_string(config_.queue_depth) +
            " queued); retry later")),
        config_.write_timeout_ms);
  }
}

bool IqsServer::AdmitOrQueueLocked(int fd) {
  if (active_sessions_ < config_.max_sessions) {
    SpawnSessionLocked(fd);
    return true;
  }
  if (pending_.size() < config_.queue_depth) {
    pending_.push_back(fd);
    IQS_GAUGE_SET("net.sessions.queued", pending_.size());
    return true;
  }
  return false;
}

void IqsServer::SpawnSessionLocked(int fd) {
  const uint64_t id = ++next_session_id_;
  ++active_sessions_;
  sessions_served_.fetch_add(1, std::memory_order_relaxed);
  IQS_GAUGE_SET("net.sessions.active", active_sessions_);
  session_threads_.emplace(id,
                           std::thread(&IqsServer::SessionLoop, this, fd, id));
}

void IqsServer::ReapFinishedLocked() {
  for (uint64_t id : finished_) {
    auto it = session_threads_.find(id);
    if (it == session_threads_.end()) continue;
    // The owner pushed its id as its last act under mu_; the join below
    // waits only for its function epilogue.
    it->second.join();
    session_threads_.erase(it);
  }
  finished_.clear();
}

void IqsServer::SessionLoop(int fd, uint64_t session_id) {
  exec::GovernanceRegistry::Global().AddSession(session_id,
                                                "fd:" + std::to_string(fd));
  {
    Connection conn(fd, config_.max_frame_bytes);
    Session session;
    session.id = session_id;
    session.deadline_ms = config_.default_deadline_ms;
    session.max_memory_kb = config_.max_query_memory_kb;

    // Long verbs run on one handler thread so the read loop stays free to
    // receive `cancel` frames mid-query (DESIGN.md §15). At most one
    // handler is ever live: every non-cancel frame joins the previous
    // handler first, so the Session's non-atomic fields (`set` options,
    // error budget) stay effectively single-threaded. Responses from both
    // threads are serialized by write_mu.
    std::thread handler;
    std::mutex write_mu;
    std::atomic<bool> handler_busy{false};
    std::atomic<bool> write_failed{false};

    auto write_frame = [&](const std::string& response) {
      std::lock_guard<std::mutex> lock(write_mu);
      if (!conn.WriteFrame(response, config_.write_timeout_ms).ok()) {
        write_failed.store(true, std::memory_order_release);
      }
    };
    auto join_handler = [&handler] {
      if (handler.joinable()) handler.join();
    };

    while (!shutting_down_.load(std::memory_order_acquire) &&
           !write_failed.load(std::memory_order_acquire)) {
      std::string payload;
      Status error;
      const Connection::ReadEvent event =
          conn.ReadFrame(&payload, &error, config_.idle_timeout_ms,
                         config_.read_timeout_ms, wake_pipe_[0]);
      if (event == Connection::ReadEvent::kFrame) {
        exec::GovernanceRegistry::Global().NoteRequest(session_id);
        if (IsCancelFrame(payload)) {
          // Inline on the read thread: the router's cancel path touches
          // only atomic counters and the global registry, so it is safe
          // concurrent with the handler serving a query.
          write_frame(router_.Handle(payload, session));
          continue;
        }
        join_handler();
        handler_busy.store(true, std::memory_order_release);
        handler = std::thread([&, payload] {
          write_frame(router_.Handle(payload, session));
          handler_busy.store(false, std::memory_order_release);
        });
        continue;
      }
      if (event == Connection::ReadEvent::kBadFrame) {
        // Recoverable: answer the violation, keep the session.
        write_frame(RequestRouter::FramingError(error));
        continue;
      }
      if (event == Connection::ReadEvent::kTimeout) {
        // Idle only counts between requests: while the handler is mid-
        // query the client is legitimately silent, waiting for us.
        if (handler_busy.load(std::memory_order_acquire)) continue;
        IQS_COUNTER_INC("net.sessions.reaped");
      }
      break;  // kClosed / kTimeout / kWoken all end the session
    }

    // A disconnecting client's in-flight query is cancelled — never
    // killed — and the handler joined once it unwinds at a checkpoint.
    exec::GovernanceRegistry::Global().CancelSession(session_id,
                                                     "client disconnected");
    join_handler();
  }  // Connection closes fd here, before the slot frees up.
  exec::GovernanceRegistry::Global().RemoveSession(session_id);

  std::lock_guard<std::mutex> lock(mu_);
  --active_sessions_;
  finished_.push_back(session_id);
  IQS_GAUGE_SET("net.sessions.active", active_sessions_);
  if (!shutting_down_.load(std::memory_order_acquire) && !pending_.empty() &&
      active_sessions_ < config_.max_sessions) {
    const int next = pending_.front();
    pending_.pop_front();
    IQS_GAUGE_SET("net.sessions.queued", pending_.size());
    SpawnSessionLocked(next);
  }
}

void IqsServer::Shutdown() {
  // Serialized + idempotent: the destructor calls this unconditionally
  // after an explicit Shutdown already ran.
  std::lock_guard<std::mutex> shutdown_guard(shutdown_mu_);
  shutting_down_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();

  // Queued-but-unserved connections get a clean typed close instead of a
  // silent RST.
  std::deque<int> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending.swap(pending_);
  }
  for (int fd : pending) {
    Connection doomed(fd, config_.max_frame_bytes);
    (void)doomed.WriteFrame(
        RequestRouter::FramingError(Status::Unavailable("server draining")),
        config_.write_timeout_ms);
  }

  // Sessions woke via the pipe; each finishes its in-flight request and
  // flushes the response before exiting its loop.
  for (;;) {
    std::unordered_map<uint64_t, std::thread> grab;
    {
      std::lock_guard<std::mutex> lock(mu_);
      grab.swap(session_threads_);
      finished_.clear();
    }
    if (grab.empty()) break;
    for (auto& entry : grab) entry.second.join();
  }

  exec::GovernanceRegistry::Global().StopWatchdog();
}

}  // namespace net
}  // namespace iqs
