#include "net/wire.h"

#include <algorithm>
#include <cstring>

namespace iqs {
namespace net {

std::string EncodeFrame(const std::string& payload) {
  const uint32_t n = static_cast<uint32_t>(payload.size());
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xFF));
  out.push_back(static_cast<char>((n >> 16) & 0xFF));
  out.push_back(static_cast<char>((n >> 8) & 0xFF));
  out.push_back(static_cast<char>(n & 0xFF));
  out += payload;
  return out;
}

void FrameDecoder::Append(const char* data, size_t n) {
  buffer_.append(data, n);
}

FrameDecoder::Event FrameDecoder::Next(std::string* payload, Status* error) {
  // Finish discarding an oversized payload before looking for a header.
  if (skip_remaining_ > 0) {
    const size_t drop =
        static_cast<size_t>(std::min<uint64_t>(skip_remaining_,
                                               buffer_.size()));
    buffer_.erase(0, drop);
    skip_remaining_ -= drop;
    if (skip_remaining_ > 0) return Event::kNeedMore;
  }
  if (buffer_.size() < kFrameHeaderBytes) return Event::kNeedMore;
  const unsigned char* h =
      reinterpret_cast<const unsigned char*>(buffer_.data());
  const uint64_t length = (static_cast<uint64_t>(h[0]) << 24) |
                          (static_cast<uint64_t>(h[1]) << 16) |
                          (static_cast<uint64_t>(h[2]) << 8) |
                          static_cast<uint64_t>(h[3]);
  if (length == 0) {
    buffer_.erase(0, kFrameHeaderBytes);
    *error = Status::InvalidArgument(
        "empty frame: length prefix must be at least 1");
    return Event::kBadFrame;
  }
  if (length > max_frame_bytes_) {
    buffer_.erase(0, kFrameHeaderBytes);
    skip_remaining_ = length;
    // Eagerly drop whatever portion already arrived so AtFrameBoundary
    // reflects the resynchronized stream.
    const size_t drop =
        static_cast<size_t>(std::min<uint64_t>(skip_remaining_,
                                               buffer_.size()));
    buffer_.erase(0, drop);
    skip_remaining_ -= drop;
    *error = Status::InvalidArgument(
        "oversized frame: " + std::to_string(length) + " bytes exceeds " +
        std::to_string(max_frame_bytes_) + "-byte limit");
    return Event::kBadFrame;
  }
  if (buffer_.size() < kFrameHeaderBytes + length) return Event::kNeedMore;
  payload->assign(buffer_, kFrameHeaderBytes, static_cast<size_t>(length));
  buffer_.erase(0, kFrameHeaderBytes + static_cast<size_t>(length));
  return Event::kFrame;
}

}  // namespace net
}  // namespace iqs
