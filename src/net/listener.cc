#include "net/listener.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace iqs {
namespace net {

Status Listener::Open(const std::string& host, uint16_t port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("listener host must be an IPv4 address, "
                                   "got '" + host + "'");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status s = Status::Unavailable(std::string("bind ") + host + ":" +
                                         std::to_string(port) + ": " +
                                         std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const Status s =
        Status::Unavailable(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status s = Status::Internal(std::string("getsockname: ") +
                                      std::strerror(errno));
    ::close(fd);
    return s;
  }
  fd_ = fd;
  port_ = ntohs(bound.sin_port);
  return Status::Ok();
}

Result<int> Listener::Accept(int wake_fd) {
  for (;;) {
    pollfd fds[2];
    fds[0] = {fd_, POLLIN, 0};
    fds[1] = {wake_fd, POLLIN, 0};
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("poll: ") + std::strerror(errno));
    }
    if (fds[1].revents != 0) {
      return Status::Unavailable("listener woken for shutdown");
    }
    if (fds[0].revents == 0) continue;
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Status::Unavailable(std::string("accept: ") +
                                 std::strerror(errno));
    }
    ::fcntl(client, F_SETFD, FD_CLOEXEC);
    const int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return client;
  }
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace net
}  // namespace iqs
