#ifndef IQS_NET_JSON_H_
#define IQS_NET_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace iqs {
namespace net {

// Minimal JSON value tree for the wire protocol (DESIGN.md §13): the
// request router parses inbound frames with JsonValue::Parse and builds
// responses with JsonWriter. The obs layer already *emits* JSON by string
// concatenation; this is the first subsystem that must *read* untrusted
// JSON, so parsing is strict (RFC 8259 syntax, depth-capped, whole-input)
// and every malformed byte sequence yields a typed ParseError — never a
// crash, which the wire-format fuzz suite holds it to.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Int(int64_t i);
  static JsonValue Double(double d);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  // Strict parse of exactly one JSON value spanning the whole input.
  // `max_depth` bounds array/object nesting so a hostile frame of ten
  // thousand '[' cannot overflow the stack.
  static Result<JsonValue> Parse(const std::string& text,
                                 size_t max_depth = 64);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  int64_t AsInt() const {
    return kind_ == Kind::kDouble ? static_cast<int64_t>(double_) : int_;
  }
  double AsDouble() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const { return string_; }

  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // Object member lookup (first match); nullptr when absent or not an
  // object.
  const JsonValue* Find(const std::string& key) const;

  // Mutation helpers for building values programmatically (tests, the
  // sample client). The router builds responses with JsonWriter instead.
  void Append(JsonValue v) { items_.push_back(std::move(v)); }
  void Set(std::string key, JsonValue v) {
    members_.emplace_back(std::move(key), std::move(v));
  }

  // Serializes back to compact JSON (keys in insertion order).
  std::string Dump() const;

 private:
  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Escapes `s` for inclusion in a JSON string literal (quotes not
// included): ", \, and control characters; everything else passes
// through byte-for-byte, so UTF-8 survives unmodified.
std::string JsonEscapeString(const std::string& s);

// Incremental compact-JSON object/array builder for the response path:
// pure string appends, no intermediate tree. Scope-correctness is the
// caller's job (the router's response shapes are all statically known).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray(const std::string& key);  // "key": [
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& key);         // "key":
  JsonWriter& String(const std::string& value);    // value escaped
  JsonWriter& Raw(const std::string& json);        // pre-serialized JSON
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  // Key/value conveniences.
  JsonWriter& Field(const std::string& key, const std::string& value) {
    return Key(key).String(value);
  }
  JsonWriter& Field(const std::string& key, int64_t value) {
    return Key(key).Int(value);
  }
  JsonWriter& Field(const std::string& key, uint64_t value) {
    return Key(key).UInt(value);
  }
  JsonWriter& Field(const std::string& key, bool value) {
    return Key(key).Bool(value);
  }
  JsonWriter& RawField(const std::string& key, const std::string& json) {
    return Key(key).Raw(json);
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Comma();
  std::string out_;
  bool need_comma_ = false;
};

}  // namespace net
}  // namespace iqs

#endif  // IQS_NET_JSON_H_
