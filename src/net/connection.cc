#include "net/connection.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "fault/failpoint.h"
#include "obs/metrics.h"

namespace iqs {
namespace net {

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

Connection::ReadEvent Connection::ReadFrame(std::string* payload,
                                            Status* error,
                                            int idle_timeout_ms,
                                            int read_timeout_ms,
                                            int wake_fd) {
  for (;;) {
    // Serve buffered frames before the socket: one TCP segment may carry
    // many frames.
    switch (decoder_.Next(payload, error)) {
      case FrameDecoder::Event::kFrame: {
        const Status faulted = fault::Hit("net.frame.read");
        if (!faulted.ok()) {
          IQS_COUNTER_INC("net.read.faulted");
          *error = faulted;
          return ReadEvent::kClosed;
        }
        return ReadEvent::kFrame;
      }
      case FrameDecoder::Event::kBadFrame:
        IQS_COUNTER_INC("net.frames.bad");
        return ReadEvent::kBadFrame;
      case FrameDecoder::Event::kNeedMore:
        break;
    }

    const int timeout_ms =
        decoder_.AtFrameBoundary() ? idle_timeout_ms : read_timeout_ms;
    pollfd fds[2];
    fds[0] = {fd_, POLLIN, 0};
    fds[1] = {wake_fd, POLLIN, 0};
    const int n = ::poll(fds, 2, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = Status::Unavailable(std::string("poll: ") +
                                   std::strerror(errno));
      return ReadEvent::kClosed;
    }
    if (n == 0) {
      *error = decoder_.AtFrameBoundary()
                   ? Status::Unavailable("idle timeout")
                   : Status::Unavailable("read timeout mid-frame");
      return ReadEvent::kTimeout;
    }
    if (fds[1].revents != 0) {
      *error = Status::Unavailable("server draining");
      return ReadEvent::kWoken;
    }
    if (fds[0].revents == 0) continue;

    char buf[64 * 1024];
    const ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
    if (got == 0) {
      *error = decoder_.AtFrameBoundary()
                   ? Status::Ok()
                   : Status::Unavailable("stream ended mid-frame");
      return ReadEvent::kClosed;
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      *error = Status::Unavailable(std::string("recv: ") +
                                   std::strerror(errno));
      return ReadEvent::kClosed;
    }
    decoder_.Append(buf, static_cast<size_t>(got));
    IQS_COUNTER_ADD("net.bytes.read", static_cast<uint64_t>(got));
  }
}

Status Connection::WriteFrame(const std::string& payload,
                              int write_timeout_ms) {
  {
    const Status faulted = fault::Hit("net.frame.write");
    if (!faulted.ok()) {
      // kSkipAndLog: the response is dropped, the connection survives.
      IQS_COUNTER_INC("net.write.skipped");
      return Status::Ok();
    }
  }
  const std::string frame = EncodeFrame(payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    pollfd pfd{fd_, POLLOUT, 0};
    const int n = ::poll(&pfd, 1, write_timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("poll: ") +
                                 std::strerror(errno));
    }
    if (n == 0) return Status::Unavailable("write timeout");
    const ssize_t wrote =
        ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("send: ") +
                                 std::strerror(errno));
    }
    sent += static_cast<size_t>(wrote);
  }
  IQS_COUNTER_ADD("net.bytes.written", frame.size());
  return Status::Ok();
}

}  // namespace net
}  // namespace iqs
