#ifndef IQS_INFERENCE_ENGINE_H_
#define IQS_INFERENCE_ENGINE_H_

#include <optional>
#include <string>
#include <vector>

#include "dictionary/data_dictionary.h"
#include "fault/degrade.h"
#include "inference/intensional_answer.h"

namespace iqs {

// Which type inference to run (paper §4): forward (modus ponens; derives
// a description containing the extensional answer), backward (derives
// descriptions contained in it), or both combined.
enum class InferenceMode {
  kForward,
  kBackward,
  kCombined,
};

const char* InferenceModeName(InferenceMode mode);

// What the inference engine needs to know about a query: its restriction
// conditions (qualified attribute names, interval form) and the object
// types it ranges over. Join conditions are not included — they define
// the view, not the restriction.
struct QueryDescription {
  std::vector<Clause> conditions;
  std::vector<std::string> object_types;

  std::string ToString() const;
};

// The inference processor (paper §5.1): derives intensional answers by
// traversing the type hierarchies using the rules in the data dictionary.
class InferenceEngine {
 public:
  // `dictionary` must outlive the engine.
  explicit InferenceEngine(const DataDictionary* dictionary)
      : dictionary_(dictionary) {}

  // Forward inference to fixpoint. Returns every fact holding for each
  // tuple of the answer: the seeded query conditions, rule consequents
  // whose LHS subsumes known facts (after active-domain clipping), the
  // supertype closure, and derivation expansions of type facts. A rule
  // whose firing faults (the "infer.match" failpoint) is skipped and
  // logged; when `degradations` is non-null one summary event per run is
  // appended for the skipped rules.
  Result<std::vector<Fact>> Forward(
      const QueryDescription& query, const RuleSet& rules,
      std::vector<fault::DegradationEvent>* degradations = nullptr) const;

  // Backward inference: for each fact in `targets`, finds rules whose RHS
  // implies the fact and emits their LHS as a contained-in description.
  // Statements are exact when the target was seeded from the single query
  // condition; approximate otherwise.
  Result<std::vector<IntensionalStatement>> Backward(
      const QueryDescription& query, const std::vector<Fact>& targets,
      const RuleSet& rules) const;

  // Runs the requested mode against the dictionary's induced rules (the
  // paper's configuration).
  Result<IntensionalAnswer> Infer(
      const QueryDescription& query, InferenceMode mode,
      std::vector<fault::DegradationEvent>* degradations = nullptr) const;

  // Same, against an explicit rule set (lets the baseline run with the
  // declared integrity constraints only).
  Result<IntensionalAnswer> InferWith(
      const QueryDescription& query, InferenceMode mode,
      const RuleSet& rules,
      std::vector<fault::DegradationEvent>* degradations = nullptr) const;

  // Checks the forward facts for mutual unsatisfiability: two range
  // facts over the same attribute whose intervals do not intersect (the
  // expansion of disjoint subtype derivations reduces type conflicts
  // like "x isa SSN and x isa SSBN" to this). A returned explanation
  // proves the answer set empty — no tuple can satisfy all facts.
  std::optional<std::string> DetectContradiction(
      const std::vector<Fact>& facts) const;

 private:
  // Facts directly readable off the query: each condition as a range
  // fact; type facts where a condition matches a subtype derivation.
  std::vector<Fact> SeedFacts(const QueryDescription& query) const;

  // Adds supertype-closure and derivation-expansion facts for any type
  // facts in `facts`; returns whether anything was added.
  bool ExpandTypeFacts(std::vector<Fact>* facts) const;

  const DataDictionary* dictionary_;
};

}  // namespace iqs

#endif  // IQS_INFERENCE_ENGINE_H_
