#include "inference/engine.h"

#include <chrono>

#include "common/string_util.h"
#include "exec/parallel.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rules/subsumption.h"

namespace iqs {

const char* InferenceModeName(InferenceMode mode) {
  switch (mode) {
    case InferenceMode::kForward:
      return "forward";
    case InferenceMode::kBackward:
      return "backward";
    case InferenceMode::kCombined:
      return "combined";
  }
  return "unknown";
}

std::string QueryDescription::ToString() const {
  std::string out = "over {" + Join(object_types, ", ") + "} where ";
  for (size_t i = 0; i < conditions.size(); ++i) {
    if (i > 0) out += " and ";
    out += conditions[i].ToConditionString();
  }
  if (conditions.empty()) out += "true";
  return out;
}

namespace {

// Role variable for a fact derived from a clause: the qualifier when it
// looks like a role variable ("y.Sonar"), else the generic "x".
std::string VariableFor(const Clause& clause) {
  std::string qualifier = clause.Qualifier();
  return (!qualifier.empty() && qualifier.size() <= 2) ? qualifier : "x";
}

// A type fact with the role identified by its hierarchy root.
Fact TypeFactFor(const TypeHierarchy& hierarchy, std::string variable,
                 const std::string& type_name, std::vector<int> rule_ids,
                 Fact::Origin origin) {
  Fact f = Fact::Type(std::move(variable), type_name, std::move(rule_ids),
                      origin);
  auto root = hierarchy.RootOf(type_name);
  if (root.ok()) f.root_entity = *root;
  return f;
}

}  // namespace

std::vector<Fact> InferenceEngine::SeedFacts(
    const QueryDescription& query) const {
  std::vector<Fact> facts;
  const TypeHierarchy& hierarchy = dictionary_->catalog().hierarchy();
  for (const Clause& condition : query.conditions) {
    AddFact(&facts, Fact::Range(condition));
    auto type_name = hierarchy.FindByDerivation(condition);
    if (type_name.ok()) {
      AddFact(&facts, TypeFactFor(hierarchy, VariableFor(condition),
                                  *type_name, {}, Fact::Origin::kSeed));
    }
  }
  return facts;
}

bool InferenceEngine::ExpandTypeFacts(std::vector<Fact>* facts) const {
  const TypeHierarchy& hierarchy = dictionary_->catalog().hierarchy();
  bool changed = false;
  // Iterate over indices: AddFact may grow the vector.
  for (size_t i = 0; i < facts->size(); ++i) {
    if ((*facts)[i].kind != Fact::Kind::kType) continue;
    const std::string variable = (*facts)[i].variable;
    const std::string type_name = (*facts)[i].type_name;
    const std::vector<int> provenance = (*facts)[i].rule_ids;
    auto supers = hierarchy.SupertypesOf(type_name);
    if (supers.ok()) {
      for (const std::string& super : *supers) {
        changed |= AddFact(facts,
                           TypeFactFor(hierarchy, variable, super, provenance,
                                       Fact::Origin::kHierarchy));
      }
    }
    auto node = hierarchy.Get(type_name);
    if (node.ok() && (*node)->derivation.has_value()) {
      changed |= AddFact(facts, Fact::Range(*(*node)->derivation, provenance,
                                            Fact::Origin::kHierarchy));
    }
  }
  return changed;
}

Result<std::vector<Fact>> InferenceEngine::Forward(
    const QueryDescription& query, const RuleSet& rules,
    std::vector<fault::DegradationEvent>* degradations) const {
  IQS_SPAN("infer.forward");
  std::vector<Fact> facts = SeedFacts(query);
  ExpandTypeFacts(&facts);

  const std::vector<AttributeDomain>& domains =
      dictionary_->active_domains();
  bool changed = true;
  int iterations = 0;
  uint64_t skipped_firings = 0;
  std::string skip_reason;
  while (changed) {
    if (++iterations > 64) {
      return Status::Internal("forward inference did not reach a fixpoint");
    }
    // One governance checkpoint per fixpoint pass; a cancelled inference
    // unwinds here and QueryProcessor degrades the answer to
    // extensional-only rather than failing the query.
    IQS_GOV_CHECKPOINT("infer.fire");
    changed = false;
    // Known range clauses: every range fact (query conditions included).
    std::vector<Clause> known;
    for (const Fact& f : facts) {
      if (f.kind == Fact::Kind::kRange) known.push_back(f.clause);
    }
    // Parallel match phase: subsumption tests read only the `known`
    // snapshot and the active domains, so each rule's verdict lands in
    // its own slot. The fire phase below stays serial in rule order —
    // fact insertion order (and thus the derivation) is deterministic and
    // identical to the serial loop, whose matching could not see facts
    // added within the same iteration either.
    const std::vector<Rule>& all_rules = rules.rules();
    std::vector<char> matched(all_rules.size(), 0);
    exec::ParallelFor(
        "exec.infer.match", all_rules.size(), 32,
        [&all_rules, &matched, &known, &domains](size_t i) {
          const Rule& rule = all_rules[i];
          matched[i] = !rule.lhs.empty() &&
                       LhsSubsumesConditions(rule, known, domains,
                                             AttributeMatch::kBaseName);
        });
    for (size_t i = 0; i < all_rules.size(); ++i) {
      if ((i & 63) == 0) IQS_GOV_CHECKPOINT("infer.match");
      if (!matched[i]) continue;
      const Rule& rule = all_rules[i];
      // Skip-and-log: a faulting rule firing is dropped, the rest of the
      // fixpoint continues. Checked in this serial loop (not the parallel
      // match phase) so the skip sequence is deterministic.
      if (Status fp = fault::Hit("infer.match"); !fp.ok()) {
        ++skipped_firings;
        skip_reason = fp.message();
        IQS_COUNTER_INC("infer.forward.skipped_firings");
        continue;
      }
      IQS_COUNTER_INC("infer.forward.firings");
      // Modus ponens: the consequent holds of every answer tuple.
      if (!StartsWith(rule.rhs.clause.attribute(), "isa(")) {
        changed |= AddFact(&facts, Fact::Range(rule.rhs.clause, {rule.id},
                                               Fact::Origin::kRule));
      }
      if (rule.rhs.HasIsaReading()) {
        changed |= AddFact(
            &facts,
            TypeFactFor(dictionary_->catalog().hierarchy(),
                        rule.rhs.isa_variable, rule.rhs.isa_type, {rule.id},
                        Fact::Origin::kRule));
      }
    }
    changed |= ExpandTypeFacts(&facts);
  }
  IQS_COUNTER_ADD("infer.forward.iterations", iterations);
  IQS_SPAN_ANNOTATE("facts", static_cast<int64_t>(facts.size()));
  IQS_SPAN_ANNOTATE("iterations", static_cast<int64_t>(iterations));
  if (skipped_firings > 0) {
    fault::DegradationEvent event{
        "rule-match", fault::DegradeAction::kSkipRule,
        "skipped " + std::to_string(skipped_firings) + " rule firing" +
            (skipped_firings == 1 ? "" : "s") + ": " + skip_reason};
    fault::RecordDegradation(event);
    if (degradations != nullptr) degradations->push_back(std::move(event));
  }
  return facts;
}

namespace {

// Does the rule's consequent guarantee `target`?
bool RhsImplies(const Rule& rule, const Fact& target,
                const TypeHierarchy& hierarchy) {
  if (target.kind == Fact::Kind::kType) {
    if (!rule.rhs.HasIsaReading()) return false;
    // Role letters are context-local; membership in the same hierarchy
    // (enforced by the subtype test) identifies the role.
    return hierarchy.IsAOrSubtypeOf(rule.rhs.isa_type, target.type_name);
  }
  if (!SameAttribute(rule.rhs.clause.attribute(), target.clause.attribute(),
                     AttributeMatch::kBaseName)) {
    return false;
  }
  return target.clause.interval().ContainsInterval(
      rule.rhs.clause.interval());
}

}  // namespace

Result<std::vector<IntensionalStatement>> InferenceEngine::Backward(
    const QueryDescription& query, const std::vector<Fact>& targets,
    const RuleSet& rules) const {
  IQS_SPAN("infer.backward");
  const TypeHierarchy& hierarchy = dictionary_->catalog().hierarchy();
  // Facts read directly off the query (used to decide exactness).
  std::vector<Fact> seeds = SeedFacts(query);
  auto is_seed = [&seeds](const Fact& f) {
    for (const Fact& s : seeds) {
      if (s.SameContent(f)) return true;
    }
    return false;
  };
  // A backward statement is exact when its target covers the whole query
  // restriction: the target is a seed fact and the query has a single
  // restriction condition.
  bool single_condition = query.conditions.size() == 1;

  std::vector<IntensionalStatement> out;
  for (const Fact& target : targets) {
    IQS_GOV_CHECKPOINT("infer.match");
    for (const Rule& rule : rules.rules()) {
      if (rule.lhs.empty()) continue;
      if (!RhsImplies(rule, target, hierarchy)) continue;
      IntensionalStatement statement;
      statement.direction = AnswerDirection::kContainedIn;
      for (const Clause& c : rule.lhs) {
        statement.facts.push_back(Fact::Range(c, {rule.id}));
      }
      statement.rule_ids = {rule.id};
      statement.target = target;
      statement.exact = single_condition && is_seed(target);
      out.push_back(std::move(statement));
      IQS_COUNTER_INC("infer.backward.firings");
    }
  }
  IQS_SPAN_ANNOTATE("statements", static_cast<int64_t>(out.size()));
  return out;
}

std::optional<std::string> InferenceEngine::DetectContradiction(
    const std::vector<Fact>& facts) const {
  for (size_t i = 0; i < facts.size(); ++i) {
    if (facts[i].kind != Fact::Kind::kRange) continue;
    for (size_t j = i + 1; j < facts.size(); ++j) {
      if (facts[j].kind != Fact::Kind::kRange) continue;
      const Clause& a = facts[i].clause;
      const Clause& b = facts[j].clause;
      if (!SameAttribute(a.attribute(), b.attribute(),
                         AttributeMatch::kBaseName)) {
        continue;
      }
      // Only comparable domains can conflict.
      bool comparable = true;
      for (const std::optional<Value>* bound :
           {&a.interval().lo(), &a.interval().hi()}) {
        if (!bound->has_value()) continue;
        for (const std::optional<Value>* other :
             {&b.interval().lo(), &b.interval().hi()}) {
          if (other->has_value() && !(*bound)->ComparableWith(**other)) {
            comparable = false;
          }
        }
      }
      if (!comparable) continue;
      if (!a.interval().Intersects(b.interval())) {
        return "facts '" + facts[i].ToString() + "' and '" +
               facts[j].ToString() +
               "' cannot hold together; the answer is provably empty";
      }
    }
  }
  return std::nullopt;
}

Result<IntensionalAnswer> InferenceEngine::Infer(
    const QueryDescription& query, InferenceMode mode,
    std::vector<fault::DegradationEvent>* degradations) const {
  // Hold a snapshot so a concurrent re-induction cannot swap the rule
  // base out from under the inference pass.
  std::shared_ptr<const RuleSet> rules = dictionary_->induced_rules_snapshot();
  return InferWith(query, mode, *rules, degradations);
}

Result<IntensionalAnswer> InferenceEngine::InferWith(
    const QueryDescription& query, InferenceMode mode, const RuleSet& rules,
    std::vector<fault::DegradationEvent>* degradations) const {
  IQS_SPAN("infer");
  IQS_FAILPOINT("infer.fire");
  IQS_SPAN_ANNOTATE("mode", std::string(InferenceModeName(mode)));
  IQS_COUNTER_INC("infer.count");
  auto start = std::chrono::steady_clock::now();
  IntensionalAnswer answer;
  std::vector<Fact> forward_facts;
  if (mode == InferenceMode::kForward || mode == InferenceMode::kCombined) {
    IQS_ASSIGN_OR_RETURN(forward_facts, Forward(query, rules, degradations));
    if (auto contradiction = DetectContradiction(forward_facts);
        contradiction.has_value()) {
      answer.set_empty_proof(std::move(*contradiction));
    }
    // Report only derived facts (with provenance) or seeded type facts —
    // echoing the query's own range conditions back is not informative.
    IntensionalStatement statement;
    statement.direction = AnswerDirection::kContains;
    for (const Fact& f : forward_facts) {
      if (f.rule_ids.empty() && f.kind == Fact::Kind::kRange) continue;
      statement.facts.push_back(f);
      for (int id : f.rule_ids) {
        bool seen = false;
        for (int existing : statement.rule_ids) {
          if (existing == id) {
            seen = true;
            break;
          }
        }
        if (!seen) statement.rule_ids.push_back(id);
      }
    }
    if (!statement.facts.empty()) answer.Add(std::move(statement));
  }
  if (mode == InferenceMode::kBackward || mode == InferenceMode::kCombined) {
    std::vector<Fact> targets;
    if (mode == InferenceMode::kBackward) {
      targets = SeedFacts(query);
    } else {
      // Hierarchy-closure facts (e.g. "x isa SUBMARINE") hold of every
      // answer but are too weak to back-chain from: any rule about any
      // submarine would spuriously "characterize a subset".
      for (const Fact& f : forward_facts) {
        if (f.origin != Fact::Origin::kHierarchy) targets.push_back(f);
      }
    }
    IQS_ASSIGN_OR_RETURN(std::vector<IntensionalStatement> statements,
                         Backward(query, targets, rules));
    // The same rule often matches several targets (a type fact and its
    // derivation range fact); keep one statement per rule, preferring an
    // exact target, then a type-fact target (more informative than the
    // equivalent range fact).
    std::vector<IntensionalStatement> deduped;
    auto better_target = [](const IntensionalStatement& a,
                            const IntensionalStatement& b) {
      if (a.exact != b.exact) return a.exact;
      if (a.target.kind != b.target.kind) {
        return a.target.kind == Fact::Kind::kType;
      }
      return false;
    };
    for (IntensionalStatement& s : statements) {
      bool replaced = false;
      for (IntensionalStatement& existing : deduped) {
        if (existing.rule_ids == s.rule_ids) {
          if (better_target(s, existing)) existing = std::move(s);
          replaced = true;
          break;
        }
      }
      if (replaced) {
        IQS_COUNTER_INC("infer.backward.subsumption_eliminated");
      } else {
        deduped.push_back(std::move(s));
      }
    }
    for (IntensionalStatement& s : deduped) {
      answer.Add(std::move(s));
    }
  }
  if (answer.empty_proof().has_value()) {
    IQS_COUNTER_INC("infer.contradictions");
  }
  IQS_HISTOGRAM_OBSERVE(
      "infer.micros",
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return answer;
}

}  // namespace iqs
