#ifndef IQS_INFERENCE_INTENSIONAL_ANSWER_H_
#define IQS_INFERENCE_INTENSIONAL_ANSWER_H_

#include <optional>
#include <string>
#include <vector>

#include "inference/fact.h"

namespace iqs {

// Containment direction of an intensional statement relative to the
// extensional answer (paper §4): forward inference characterizes a set
// *containing* the extensional answer; backward inference characterizes a
// set *contained in* it.
enum class AnswerDirection {
  kContains,     // forward: description ⊇ extensional answer
  kContainedIn,  // backward: description ⊆ extensional answer
};

const char* AnswerDirectionName(AnswerDirection direction);

// One derived characterization: a conjunction of facts plus provenance.
struct IntensionalStatement {
  AnswerDirection direction = AnswerDirection::kContains;
  std::vector<Fact> facts;
  std::vector<int> rule_ids;

  // For backward (kContainedIn) statements: the fact the description was
  // derived from, and whether the subset claim is exact with respect to
  // the whole query (true when the target is equivalent to the full query
  // condition) or only relative to the target fact (the approximation the
  // paper's Example 3 makes when backward-chaining from forward-derived
  // facts).
  Fact target;
  bool exact = true;

  // "answers ⊆ { x isa SSBN }  (by R9)".
  std::string ToString() const;
};

// The intensional answer to a query: forward statement(s), backward
// statement(s), or both when inference modes are combined.
class IntensionalAnswer {
 public:
  IntensionalAnswer() = default;

  void Add(IntensionalStatement statement) {
    statements_.push_back(std::move(statement));
  }

  bool empty() const { return statements_.empty(); }
  size_t size() const { return statements_.size(); }
  const std::vector<IntensionalStatement>& statements() const {
    return statements_;
  }

  // Statements in the given direction.
  std::vector<const IntensionalStatement*> InDirection(
      AnswerDirection direction) const;

  // All type facts asserted by forward statements (what the answers *are*).
  std::vector<std::string> ForwardTypes() const;

  // Set when the forward facts are mutually unsatisfiable: the answer is
  // provably empty and the string explains why.
  const std::optional<std::string>& empty_proof() const {
    return empty_proof_;
  }
  void set_empty_proof(std::string explanation) {
    empty_proof_ = std::move(explanation);
  }

  std::string ToString() const;

 private:
  std::vector<IntensionalStatement> statements_;
  std::optional<std::string> empty_proof_;
};

}  // namespace iqs

#endif  // IQS_INFERENCE_INTENSIONAL_ANSWER_H_
