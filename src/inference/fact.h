#ifndef IQS_INFERENCE_FACT_H_
#define IQS_INFERENCE_FACT_H_

#include <string>
#include <vector>

#include "rules/clause.h"

namespace iqs {

// A fact derived (or given) about every tuple of a query's answer set:
// either a type membership ("x isa SSBN") or an attribute restriction
// ("7250 <= Displacement <= 30000"). Facts carry the ids of the rules
// that produced them (empty for facts read directly off the query).
struct Fact {
  enum class Kind { kType, kRange };
  // Where the fact came from: read off the query itself, concluded by a
  // rule application, or added by hierarchy closure (supertypes and
  // derivation expansion). Backward inference only targets seed and rule
  // facts — hierarchy-closure facts like "x isa SUBMARINE" are true of
  // every answer but far too weak to characterize one.
  enum class Origin { kSeed, kRule, kHierarchy };

  Kind kind = Kind::kRange;
  Origin origin = Origin::kSeed;

  // kType fields. `variable` is the display name from the originating
  // context ("x", "y"); role letters are context-local, so semantic
  // matching uses `root_entity` — the root of the hierarchy the type
  // belongs to (BQS -> SONAR) — which identifies the role globally.
  std::string variable = "x";
  std::string type_name;
  std::string root_entity;

  // kRange field.
  Clause clause;

  // Provenance: ids of the rules applied to derive this fact.
  std::vector<int> rule_ids;

  static Fact Type(std::string variable, std::string type_name,
                   std::vector<int> rule_ids = {},
                   Origin origin = Origin::kSeed);
  static Fact Range(Clause clause, std::vector<int> rule_ids = {},
                    Origin origin = Origin::kSeed);

  // Equality ignores provenance (used for fixpoint detection).
  bool SameContent(const Fact& other) const;

  // "x isa SSBN [R9]" / "Displacement >= 7250".
  std::string ToString() const;
};

// Inserts `fact` unless a content-equal fact is present; returns whether
// it was inserted.
bool AddFact(std::vector<Fact>* facts, Fact fact);

}  // namespace iqs

#endif  // IQS_INFERENCE_FACT_H_
