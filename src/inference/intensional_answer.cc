#include "inference/intensional_answer.h"

namespace iqs {

const char* AnswerDirectionName(AnswerDirection direction) {
  switch (direction) {
    case AnswerDirection::kContains:
      return "contains";
    case AnswerDirection::kContainedIn:
      return "contained-in";
  }
  return "unknown";
}

std::string IntensionalStatement::ToString() const {
  std::string out =
      direction == AnswerDirection::kContains ? "answers ⊆ { " : "answers ⊇ { ";
  for (size_t i = 0; i < facts.size(); ++i) {
    if (i > 0) out += " and ";
    Fact f = facts[i];
    f.rule_ids.clear();  // provenance shown once, at statement level
    out += f.ToString();
  }
  out += " }";
  if (!rule_ids.empty()) {
    out += "  (by ";
    for (size_t i = 0; i < rule_ids.size(); ++i) {
      if (i > 0) out += ", ";
      out += "R" + std::to_string(rule_ids[i]);
    }
    out += ")";
  }
  return out;
}

std::vector<const IntensionalStatement*> IntensionalAnswer::InDirection(
    AnswerDirection direction) const {
  std::vector<const IntensionalStatement*> out;
  for (const IntensionalStatement& s : statements_) {
    if (s.direction == direction) out.push_back(&s);
  }
  return out;
}

std::vector<std::string> IntensionalAnswer::ForwardTypes() const {
  std::vector<std::string> out;
  for (const IntensionalStatement& s : statements_) {
    if (s.direction != AnswerDirection::kContains) continue;
    for (const Fact& f : s.facts) {
      if (f.kind != Fact::Kind::kType) continue;
      bool seen = false;
      for (const std::string& existing : out) {
        if (existing == f.type_name) {
          seen = true;
          break;
        }
      }
      if (!seen) out.push_back(f.type_name);
    }
  }
  return out;
}

std::string IntensionalAnswer::ToString() const {
  std::string out;
  for (const IntensionalStatement& s : statements_) {
    out += s.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace iqs
