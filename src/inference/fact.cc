#include "inference/fact.h"

#include "common/string_util.h"

namespace iqs {

Fact Fact::Type(std::string variable, std::string type_name,
                std::vector<int> rule_ids, Origin origin) {
  Fact f;
  f.kind = Kind::kType;
  f.variable = std::move(variable);
  f.type_name = std::move(type_name);
  f.rule_ids = std::move(rule_ids);
  f.origin = origin;
  return f;
}

Fact Fact::Range(Clause clause, std::vector<int> rule_ids, Origin origin) {
  Fact f;
  f.kind = Kind::kRange;
  f.clause = std::move(clause);
  f.rule_ids = std::move(rule_ids);
  f.origin = origin;
  return f;
}

bool Fact::SameContent(const Fact& other) const {
  if (kind != other.kind) return false;
  if (kind == Kind::kType) {
    // Same type; roles compare by root entity when known (variable
    // letters are context-local), by variable otherwise.
    if (!EqualsIgnoreCase(type_name, other.type_name)) return false;
    if (!root_entity.empty() && !other.root_entity.empty()) {
      return EqualsIgnoreCase(root_entity, other.root_entity);
    }
    return EqualsIgnoreCase(variable, other.variable);
  }
  return EqualsIgnoreCase(clause.attribute(), other.clause.attribute()) &&
         clause.interval() == other.clause.interval();
}

std::string Fact::ToString() const {
  std::string out = kind == Kind::kType ? variable + " isa " + type_name
                                        : clause.ToConditionString();
  if (!rule_ids.empty()) {
    out += "  [";
    for (size_t i = 0; i < rule_ids.size(); ++i) {
      if (i > 0) out += ",";
      out += "R" + std::to_string(rule_ids[i]);
    }
    out += "]";
  }
  return out;
}

bool AddFact(std::vector<Fact>* facts, Fact fact) {
  for (const Fact& existing : *facts) {
    if (existing.SameContent(fact)) return false;
  }
  facts->push_back(std::move(fact));
  return true;
}

}  // namespace iqs
